"""Figure 06: IPC loss of the MixBUFF technique w.r.t. the unbounded baseline.

Regenerates the series of the paper's Figure 06: average IPC loss of
MixBUFF technique, SPECFP relative to a conventional issue queue as large as the reorder
buffer.
"""

from repro.experiments import render_series
from repro.experiments.figures import figure6


def test_figure6(benchmark, runner):
    data = benchmark.pedantic(figure6, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_series("Figure 06. % IPC loss w.r.t. unbounded baseline (MixBUFF technique, SPECFP)", data))
    # Every configuration loses some performance but remains functional.
    for name, loss in data.items():
        assert -5.0 < loss < 60.0, name
