"""Figure 11: energy breakdown for the MB_distr scheme.

Suite-aggregated issue-logic energy fractions per component, for the
integer and FP suites separately, matching the stacked bars of the
paper's Figure 11.
"""

from repro.experiments import render_breakdown
from repro.experiments.figures import figure11


def test_figure11(benchmark, runner):
    data = benchmark.pedantic(figure11, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_breakdown("Figure 11. Energy breakdown MB_distr", data))
    for suite, components in data.items():
        assert abs(sum(components.values()) - 1.0) < 1e-9, suite
