"""Figure 02: IPC loss of the IssueFIFO technique w.r.t. the unbounded baseline.

Regenerates the series of the paper's Figure 02: average IPC loss of
IssueFIFO technique, SPECINT (integer queues swept) relative to a conventional issue queue as large as the reorder
buffer.
"""

from repro.experiments import render_series
from repro.experiments.figures import figure2


def test_figure2(benchmark, runner):
    data = benchmark.pedantic(figure2, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_series("Figure 02. % IPC loss w.r.t. unbounded baseline (IssueFIFO technique, SPECINT (integer queues swept))", data))
    # Every configuration loses some performance but remains functional.
    for name, loss in data.items():
        assert -5.0 < loss < 60.0, name
