"""Figure 10: energy breakdown for the IF_distr scheme.

Suite-aggregated issue-logic energy fractions per component, for the
integer and FP suites separately, matching the stacked bars of the
paper's Figure 10.
"""

from repro.experiments import render_breakdown
from repro.experiments.figures import figure10


def test_figure10(benchmark, runner):
    data = benchmark.pedantic(figure10, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_breakdown("Figure 10. Energy breakdown IF_distr", data))
    for suite, components in data.items():
        assert abs(sum(components.values()) - 1.0) < 1e-9, suite
