"""One-figure kernel smoke benchmark for CI.

Runs a single figure's (benchmark, scheme) matrix cold — no disk cache —
under every simulation kernel (``naive``, ``skip``, and the
``vectorized``/``specialized`` backends) and records wall time plus the
simulated-vs-skipped cycle telemetry as a ``BENCH_kernel_smoke.json``
artifact. This is the recorded evidence that (a) every kernel agrees
bit-for-bit with ``naive`` on the whole matrix and (b) how much wall
clock each execution strategy saves.

Usage::

    PYTHONPATH=src python benchmarks/kernel_smoke.py [--figure 2]
        [--scale 2000] [--output BENCH_kernel_smoke.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.common.config import VALID_KERNELS
from repro.core import engine
from repro.experiments import figures as fig_mod
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.workloads.prewarm import clear_prewarm_cache

#: naive first: it is the bit-identity reference for everything after it.
SMOKE_KERNELS = tuple(VALID_KERNELS)


def run_smoke(figure: int, scale_instructions: int) -> dict:
    scale = RunScale(
        num_instructions=scale_instructions,
        warmup_instructions=scale_instructions // 2,
        seed=11,
    )
    pairs = fig_mod.required_runs([figure])
    report: dict = {
        "figure": figure,
        "scale": scale_instructions,
        "pairs": len(pairs),
        "python": platform.python_version(),
        "kernels": {},
    }
    payloads = {}
    for kernel in SMOKE_KERNELS:
        engine.GLOBAL_TELEMETRY.reset()
        clear_prewarm_cache()
        runner = ExperimentRunner(scale, store=False, kernel=kernel)
        started = time.perf_counter()
        stats_list = runner.run_many(pairs)
        wall = time.perf_counter() - started
        telemetry = engine.GLOBAL_TELEMETRY
        payloads[kernel] = [stats.to_dict() for stats in stats_list]
        report["kernels"][kernel] = {
            "wall_time_s": round(wall, 3),
            "cycles_executed": telemetry.executed_cycles,
            "cycles_skipped": telemetry.skipped_cycles,
            "skip_spans": telemetry.skip_spans,
            "bit_identical_to_naive": payloads[kernel] == payloads["naive"],
        }
    naive = report["kernels"]["naive"]
    skip = report["kernels"]["skip"]
    report["bit_identical"] = all(
        entry["bit_identical_to_naive"] for entry in report["kernels"].values()
    )
    report["speedup_skip_vs_naive"] = round(
        naive["wall_time_s"] / max(skip["wall_time_s"], 1e-9), 3
    )
    for kernel in SMOKE_KERNELS:
        if kernel in ("naive", "skip"):
            continue
        report[f"speedup_{kernel}_vs_skip"] = round(
            skip["wall_time_s"]
            / max(report["kernels"][kernel]["wall_time_s"], 1e-9),
            3,
        )
    total = skip["cycles_executed"] + skip["cycles_skipped"]
    report["skipped_cycle_fraction"] = round(
        skip["cycles_skipped"] / max(total, 1), 4
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", type=int, default=2,
                        help="figure whose matrix to run (default: 2, the "
                             "SPECINT IssueFIFO sweep incl. memory-bound mcf)")
    parser.add_argument("--scale", type=int, default=2000,
                        help="dynamic instructions per run (half is warm-up)")
    parser.add_argument("--output", type=str, default="BENCH_kernel_smoke.json")
    args = parser.parse_args(argv)
    report = run_smoke(args.figure, args.scale)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    if not report["bit_identical"]:
        divergent = sorted(
            name
            for name, entry in report["kernels"].items()
            if not entry["bit_identical_to_naive"]
        )
        print(f"FATAL: kernels disagree with naive: {', '.join(divergent)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
