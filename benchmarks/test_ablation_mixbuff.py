"""Ablation: which of MB_distr's ingredients buys what.

DESIGN.md calls out three design choices in the MB_distr configuration;
this bench ablates each against the full scheme on a slice of the FP
suite:

* distributing the functional units (vs a pooled FU cluster),
* capping chains at 8 per queue (vs unbounded chains),
* queue geometry (8x16 vs 8x8 buffers).
"""

from repro.common.config import IssueSchemeConfig
from repro.experiments import IQ_64_64, render_series

FP_SLICE = ["ammp", "galgel", "swim", "mesa"]


def _mb(**overrides):
    base = dict(
        kind="mixbuff",
        int_queues=8,
        int_queue_entries=8,
        fp_queues=8,
        fp_queue_entries=16,
        distributed_fus=True,
        max_chains_per_queue=8,
    )
    base.update(overrides)
    return IssueSchemeConfig(**base)


VARIANTS = {
    "MB_distr (full)": _mb(),
    "pooled FUs": _mb(distributed_fus=False),
    "unbounded chains": _mb(max_chains_per_queue=None),
    "8x8 buffers": _mb(fp_queue_entries=8),
    "4 FP queues": _mb(fp_queues=4),
}


def _ablate(runner):
    losses = {}
    for name, scheme in VARIANTS.items():
        losses[name] = runner.average_loss_pct(FP_SLICE, scheme, IQ_64_64)
    return losses


def test_mixbuff_ablation(benchmark, runner):
    losses = benchmark.pedantic(_ablate, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_series("Ablation. MB_distr IPC loss vs IQ_64_64 (FP slice)", losses))
    # Distribution costs performance (that is the paper's complexity
    # trade): the pooled variant must not be slower than the full scheme.
    assert losses["pooled FUs"] <= losses["MB_distr (full)"] + 1.0
    # Fewer queues must not help.
    assert losses["4 FP queues"] >= losses["MB_distr (full)"] - 1.0
