"""Figure 5: the MixBUFF selection worked example.

Rebuilds the paper's example queue state and shows that the selection
logic picks instruction i+1 — the oldest instruction among those whose
chain's compressed latency code gives them the highest priority.
"""

from repro.issue.selection import SelectableEntry, latency_code, select_entry


def _example():
    cycle = 100
    # Chains: 0 finished (01), 1 finishes next cycle (00),
    # 2 finishes next cycle (00), 3 takes 2+ cycles (11).
    chain_completion = {0: cycle, 1: cycle + 1, 2: cycle + 1, 3: cycle + 4}
    entries = [
        SelectableEntry(chain=0, age=0b0101, payload="i"),
        SelectableEntry(chain=1, age=0b0110, payload="i+1"),
        SelectableEntry(chain=2, age=0b1001, payload="i+4"),
        SelectableEntry(chain=3, age=0b1010, payload="i+5"),
        SelectableEntry(chain=0, age=0b0111, payload="i+2"),
        SelectableEntry(chain=2, age=0b1000, payload="i+3"),
    ]
    return entries, chain_completion, cycle


def test_figure5_selection_example(benchmark):
    entries, chain_completion, cycle = _example()
    pick = benchmark.pedantic(
        select_entry, args=(entries, chain_completion, cycle), rounds=1, iterations=1
    )

    print("\nFigure 5. Example of selection")
    print("  entry  age    chain  code")
    for entry in entries:
        code = latency_code(chain_completion[entry.chain], cycle)
        print(f"  {entry.payload:<6} {entry.age:04b}   {entry.chain}      {code:02b}")
    print(f"  selected -> {pick.payload}")

    assert pick.payload == "i+1"
