"""Figure 09: energy breakdown for the IQ_64_64 scheme.

Suite-aggregated issue-logic energy fractions per component, for the
integer and FP suites separately, matching the stacked bars of the
paper's Figure 09.
"""

from repro.experiments import render_breakdown
from repro.experiments.figures import figure9


def test_figure9(benchmark, runner):
    data = benchmark.pedantic(figure9, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_breakdown("Figure 09. Energy breakdown IQ_64_64", data))
    for suite, components in data.items():
        assert abs(sum(components.values()) - 1.0) < 1e-9, suite
