"""Figure 04: IPC loss of the LatFIFO technique w.r.t. the unbounded baseline.

Regenerates the series of the paper's Figure 04: average IPC loss of
LatFIFO technique, SPECFP relative to a conventional issue queue as large as the reorder
buffer.
"""

from repro.experiments import render_series
from repro.experiments.figures import figure4


def test_figure4(benchmark, runner):
    data = benchmark.pedantic(figure4, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_series("Figure 04. % IPC loss w.r.t. unbounded baseline (LatFIFO technique, SPECFP)", data))
    # Every configuration loses some performance but remains functional.
    for name, loss in data.items():
        assert -5.0 < loss < 60.0, name
