"""Figure 8: IPC for the FP benchmarks.

The paper's headline performance result: MB_distr outperforms IF_distr
on every FP benchmark and stays much closer to the IQ_64_64 baseline.
"""

from repro.experiments import render_table
from repro.experiments.figures import figure8


def test_figure8(benchmark, runner):
    data = benchmark.pedantic(figure8, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_table("Figure 8. IPC SPECFP", data))
    hm = {name: series["HARMEAN"] for name, series in data.items()}
    if_loss = 100 * (hm["IQ_64_64"] - hm["IF_distr"]) / hm["IQ_64_64"]
    mb_loss = 100 * (hm["IQ_64_64"] - hm["MB_distr"]) / hm["IQ_64_64"]
    print(f"\n  HARMEAN loss: IF_distr {if_loss:.1f}%  MB_distr {mb_loss:.1f}%")
    assert mb_loss < if_loss  # MixBUFF wins (paper: 7.6% vs 26.0%)
