"""Figure 03: IPC loss of the IssueFIFO technique w.r.t. the unbounded baseline.

Regenerates the series of the paper's Figure 03: average IPC loss of
IssueFIFO technique, SPECFP (FP queues swept) relative to a conventional issue queue as large as the reorder
buffer.
"""

from repro.experiments import render_series
from repro.experiments.figures import figure3


def test_figure3(benchmark, runner):
    data = benchmark.pedantic(figure3, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_series("Figure 03. % IPC loss w.r.t. unbounded baseline (IssueFIFO technique, SPECFP (FP queues swept))", data))
    # Every configuration loses some performance but remains functional.
    for name, loss in data.items():
        assert -5.0 < loss < 60.0, name
