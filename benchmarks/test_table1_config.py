"""Table 1: the processor configuration.

Prints the configuration table and asserts every value against the
paper. This is the anchor for all other benchmarks.
"""

from repro.common.config import default_config


def test_table1_processor_configuration(benchmark):
    cfg = benchmark.pedantic(default_config, rounds=1, iterations=1)

    rows = [
        ("Fetch/decode/commit width", f"{cfg.fetch_width}"),
        ("Issue width", f"{cfg.int_issue_width} INT + {cfg.fp_issue_width} FP"),
        ("Branch predictor", f"gshare {cfg.branch.gshare_entries} + bimodal "
                             f"{cfg.branch.bimodal_entries} + selector {cfg.branch.selector_entries}"),
        ("BTB", f"{cfg.branch.btb_entries} entries, {cfg.branch.btb_associativity}-way"),
        ("L1 Icache", f"{cfg.icache.size_bytes // 1024}K {cfg.icache.associativity}-way "
                      f"{cfg.icache.line_bytes}B/line {cfg.icache.hit_latency} cycle"),
        ("L1 Dcache", f"{cfg.dcache.size_bytes // 1024}K {cfg.dcache.associativity}-way "
                      f"{cfg.dcache.line_bytes}B/line {cfg.dcache.hit_latency} cycle "
                      f"{cfg.dcache.ports} ports"),
        ("L2", f"{cfg.l2cache.size_bytes // 1024}K {cfg.l2cache.associativity}-way "
               f"{cfg.l2cache.line_bytes}B/line {cfg.l2cache.hit_latency} cycle"),
        ("Memory", f"{cfg.memory.first_chunk_latency} cycles first chunk, "
                   f"{cfg.memory.inter_chunk_latency} inter-chunk"),
        ("Fetch queue", f"{cfg.fetch_queue_entries} entries"),
        ("Reorder buffer", f"{cfg.rob_entries} entries"),
        ("Registers", f"{cfg.int_phys_regs} INT + {cfg.fp_phys_regs} FP"),
        ("INT FUs", f"{cfg.fus.int_alu_count} ALU ({cfg.fus.int_alu_latency}c), "
                    f"{cfg.fus.int_muldiv_count} mul/div ({cfg.fus.int_mul_latency}c mul, "
                    f"{cfg.fus.int_div_latency}c div)"),
        ("FP FUs", f"{cfg.fus.fp_alu_count} ALU ({cfg.fus.fp_alu_latency}c), "
                   f"{cfg.fus.fp_muldiv_count} mul/div ({cfg.fus.fp_mul_latency}c mul, "
                   f"{cfg.fus.fp_div_latency}c div)"),
        ("Technology", f"{cfg.technology_um} um"),
    ]
    print("\nTable 1. Processor configuration")
    for name, value in rows:
        print(f"  {name:<28} {value}")

    assert cfg.fetch_width == 8
    assert cfg.rob_entries == 256
    assert cfg.fus.int_div_latency == 20
    assert cfg.memory.first_chunk_latency == 100
