"""Shared fixtures for the figure-regeneration benchmarks.

All benchmarks share one :class:`ExperimentRunner`, so baseline runs are
simulated once and reused across figures (the same way the paper's
figures share the same simulation campaign). ``REPRO_BENCH_SCALE``
(environment variable, dynamic instructions per run) raises the scale
for higher-fidelity numbers; the default keeps the full harness in the
minutes range.
"""

import os

import pytest

from repro.experiments import ExperimentRunner, RunScale

_DEFAULT_INSTRUCTIONS = 4000


def _scale() -> RunScale:
    n = int(os.environ.get("REPRO_BENCH_SCALE", _DEFAULT_INSTRUCTIONS))
    return RunScale(num_instructions=n, warmup_instructions=n // 2, seed=11)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(_scale())
