"""Shared fixtures for the figure-regeneration benchmarks.

All benchmarks share one :class:`ExperimentRunner`, so baseline runs are
simulated once and reused across figures (the same way the paper's
figures share the same simulation campaign). The runner is additionally
backed by the on-disk result store, so a *second* invocation of the
whole harness replays every figure from cache without simulating at all.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — dynamic instructions per run (default 4000);
  raising it gives higher-fidelity numbers and a different cache
  universe (scale is part of the cache key).
* ``REPRO_BENCH_KERNEL`` — simulation kernel: ``skip`` (default),
  ``naive``, or the ``vectorized``/``specialized`` backends; results
  are bit-identical, only wall time changes (and the kernel is *not*
  part of the cache key).
* ``REPRO_CACHE_DIR`` — where results persist (default
  ``~/.cache/repro-abella04``). Delete the directory for a cold run.

Each benchmark's pytest-benchmark record carries ``extra_info`` with its
wall time, the memory-hit/disk-hit/simulation deltas it caused, and the
simulation-kernel telemetry (cycles actually executed vs. skipped by the
event wheel), so BENCH_*.json files capture both the cache speedup
trajectory and how much simulated time the cycle-skipping kernel jumped
over.
"""

import os
import time

import pytest

from repro.core import engine
from repro.experiments import ExperimentRunner, ResultStore, RunScale, default_cache_dir

_DEFAULT_INSTRUCTIONS = 4000


def _scale() -> RunScale:
    n = int(os.environ.get("REPRO_BENCH_SCALE", _DEFAULT_INSTRUCTIONS))
    return RunScale(num_instructions=n, warmup_instructions=n // 2, seed=11)


def _kernel() -> str:
    return os.environ.get("REPRO_BENCH_KERNEL", "skip")


@pytest.fixture(scope="session")
def cache_dir():
    """Directory backing the session's result store (persists across runs)."""
    return default_cache_dir()


@pytest.fixture(scope="session")
def runner(request, cache_dir) -> ExperimentRunner:
    shared = ExperimentRunner(_scale(), store=ResultStore(cache_dir), kernel=_kernel())
    request.config._repro_runner = shared
    return shared


@pytest.fixture(autouse=True)
def _cache_telemetry(request, runner):
    """Attach per-test wall time and cache-layer deltas to the benchmark.

    The deltas land in pytest-benchmark's ``extra_info`` (and thus in any
    ``--benchmark-json`` output), so successive BENCH_*.json files show
    the harness going from all-simulations to all-disk-hits.
    """
    # Resolve the benchmark fixture eagerly: during teardown it is
    # already finalized and can no longer be requested.
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    before = runner.cache_stats()
    kernel_before = engine.GLOBAL_TELEMETRY.as_dict()
    started = time.perf_counter()
    yield
    elapsed = time.perf_counter() - started
    delta = {
        f"cache_{name}": after - before[name]
        for name, after in runner.cache_stats().items()
    }
    kernel_delta = {
        f"kernel_{name}": after - kernel_before[name]
        for name, after in engine.GLOBAL_TELEMETRY.as_dict().items()
    }
    if benchmark is not None:
        benchmark.extra_info["wall_time_s"] = round(elapsed, 3)
        benchmark.extra_info["kernel"] = _kernel()
        benchmark.extra_info.update(delta)
        benchmark.extra_info.update(kernel_delta)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """One-line cache report for the whole benchmark session."""
    runner = getattr(config, "_repro_runner", None)
    if runner is None:
        return
    stats = runner.cache_stats()
    terminalreporter.write_line(
        f"repro cache: {stats['simulations']} simulated, "
        f"{stats['disk_hits']} disk hits, {stats['memory_hits']} memory hits"
    )
    telemetry = engine.GLOBAL_TELEMETRY
    if telemetry.total_cycles:
        skipped_pct = 100.0 * telemetry.skipped_cycles / telemetry.total_cycles
        terminalreporter.write_line(
            f"repro kernel [{_kernel()}]: {telemetry.executed_cycles} cycles "
            f"executed, {telemetry.skipped_cycles} skipped ({skipped_pct:.1f}%) "
            f"in {telemetry.skip_spans} spans"
        )
