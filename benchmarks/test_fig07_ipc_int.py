"""Figure 7: IPC for the integer benchmarks.

IQ_64_64 (bounded conventional baseline) vs IF_distr vs MB_distr with
distributed functional units, plus the harmonic mean, exactly the bars
of the paper's Figure 7.
"""

from repro.experiments import render_table
from repro.experiments.figures import figure7


def test_figure7(benchmark, runner):
    data = benchmark.pedantic(figure7, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_table("Figure 7. IPC SPECINT", data))
    hm = {name: series["HARMEAN"] for name, series in data.items()}
    # Both low-complexity schemes lose some IPC against the baseline;
    # on the integer side they behave identically (shared integer FIFOs).
    assert hm["IF_distr"] <= hm["IQ_64_64"]
    assert abs(hm["IF_distr"] - hm["MB_distr"]) / hm["IF_distr"] < 0.05
