"""Figure 12: Normalized power dissipation.

Suite-averaged normalized power dissipation, normalized to the IQ_64_64 baseline (whole-
chip metrics assume the issue queue is 23% of baseline chip power, as
the paper does).
"""

from repro.experiments import render_table
from repro.experiments.figures import figure12


def test_figure12(benchmark, runner):
    data = benchmark.pedantic(figure12, args=(runner,), rounds=1, iterations=1)
    print()
    print(render_table("Figure 12. Normalized power dissipation (baseline = 1.0)", data))
    for suite, schemes in data.items():
        assert abs(schemes["IQ_64_64"] - 1.0) < 1e-9, suite
