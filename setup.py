"""Setup shim so the package installs in environments without `wheel`.

`pip install -e . --no-build-isolation` falls back to this legacy path
(`setup.py develop`) when the PEP 660 editable-wheel build is unavailable.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
