"""Unit tests for op classes, latencies and instruction validation."""

import pytest

from repro.common.config import FunctionalUnitConfig
from repro.common.errors import TraceError
from repro.isa.instructions import Instruction, validate_instruction
from repro.isa.opcodes import FuType, OpClass, fu_type_for, is_pipelined, latency_for

from tests.util import alu, branch, f, load, r, store


class TestOpClass:
    def test_fp_side_membership(self):
        assert OpClass.FP_ALU.is_fp
        assert OpClass.FP_MUL.is_fp
        assert not OpClass.FP_LOAD.is_fp  # loads dispatch to the integer side
        assert not OpClass.INT_ALU.is_fp
        assert not OpClass.BRANCH.is_fp

    def test_memory_classification(self):
        assert OpClass.LOAD.is_memory and OpClass.LOAD.is_load
        assert OpClass.FP_STORE.is_memory and OpClass.FP_STORE.is_store
        assert not OpClass.INT_MUL.is_memory

    def test_fp_load_writes_fp_register(self):
        assert OpClass.FP_LOAD.writes_fp_register
        assert not OpClass.LOAD.writes_fp_register


class TestFuMapping:
    def test_compute_ops(self):
        assert fu_type_for(OpClass.INT_ALU) is FuType.INT_ALU
        assert fu_type_for(OpClass.INT_DIV) is FuType.INT_MULDIV
        assert fu_type_for(OpClass.FP_MUL) is FuType.FP_MULDIV

    def test_memory_and_branch_use_int_alu(self):
        for op in (OpClass.LOAD, OpClass.STORE, OpClass.FP_LOAD, OpClass.BRANCH):
            assert fu_type_for(op) is FuType.INT_ALU


class TestLatencies:
    def test_table1_values(self):
        fus = FunctionalUnitConfig()
        assert latency_for(OpClass.INT_ALU, fus) == 1
        assert latency_for(OpClass.INT_MUL, fus) == 3
        assert latency_for(OpClass.INT_DIV, fus) == 20
        assert latency_for(OpClass.FP_ALU, fus) == 2
        assert latency_for(OpClass.FP_MUL, fus) == 4
        assert latency_for(OpClass.FP_DIV, fus) == 12

    def test_memory_ops_use_address_latency(self):
        fus = FunctionalUnitConfig()
        assert latency_for(OpClass.LOAD, fus) == fus.address_latency
        assert latency_for(OpClass.FP_STORE, fus) == fus.address_latency

    def test_divides_are_unpipelined(self):
        assert not is_pipelined(OpClass.INT_DIV)
        assert not is_pipelined(OpClass.FP_DIV)
        assert is_pipelined(OpClass.INT_MUL)
        assert is_pipelined(OpClass.FP_ALU)


class TestValidation:
    def test_valid_alu(self):
        validate_instruction(alu(0, r(1), [r(2)]), 32, 32)

    def test_rejects_register_out_of_range(self):
        with pytest.raises(TraceError):
            validate_instruction(alu(0, r(40), [r(1)]), 32, 32)

    def test_rejects_three_sources(self):
        inst = Instruction(seq=0, pc=0, op=OpClass.INT_ALU,
                           srcs=(r(1), r(2), r(3)), dest=r(4))
        with pytest.raises(TraceError):
            validate_instruction(inst, 32, 32)

    def test_rejects_memory_op_without_address(self):
        inst = Instruction(seq=0, pc=0, op=OpClass.LOAD, srcs=(), dest=r(1))
        with pytest.raises(TraceError):
            validate_instruction(inst, 32, 32)

    def test_rejects_alu_with_address(self):
        inst = Instruction(seq=0, pc=0, op=OpClass.INT_ALU, srcs=(), dest=r(1),
                           mem_addr=0x100)
        with pytest.raises(TraceError):
            validate_instruction(inst, 32, 32)

    def test_rejects_branch_without_outcome(self):
        inst = Instruction(seq=0, pc=0, op=OpClass.BRANCH, srcs=())
        with pytest.raises(TraceError):
            validate_instruction(inst, 32, 32)

    def test_rejects_taken_branch_without_target(self):
        inst = Instruction(seq=0, pc=0, op=OpClass.BRANCH, srcs=(), taken=True)
        with pytest.raises(TraceError):
            validate_instruction(inst, 32, 32)

    def test_rejects_branch_with_destination(self):
        inst = Instruction(seq=0, pc=0, op=OpClass.BRANCH, srcs=(), taken=False,
                           dest=r(1))
        with pytest.raises(TraceError):
            validate_instruction(inst, 32, 32)

    def test_rejects_fp_op_writing_int_register(self):
        inst = Instruction(seq=0, pc=0, op=OpClass.FP_ALU, srcs=(f(1),), dest=r(2))
        with pytest.raises(TraceError):
            validate_instruction(inst, 32, 32)

    def test_rejects_store_with_destination(self):
        inst = Instruction(seq=0, pc=0, op=OpClass.STORE, srcs=(r(1),), dest=r(2),
                           mem_addr=0x40)
        with pytest.raises(TraceError):
            validate_instruction(inst, 32, 32)

    def test_helpers_produce_valid_instructions(self):
        for inst in (
            alu(0, r(1), [r(2), r(3)]),
            load(1, f(0), 0x80, fp=True),
            store(2, r(5), 0x40, [r(0)]),
            branch(3, True),
            branch(4, False),
        ):
            validate_instruction(inst, 32, 32)

    def test_register_ref_str(self):
        assert str(r(3)) == "r3"
        assert str(f(7)) == "f7"
