# repro-fixture-module: repro.core.bad_telemetry
"""Known-bad fixture for the telemetry-hygiene rule: a version-tagged
module importing repro.obs — the telemetry back-edge into the hashed
closure that would let tracing perturb cached results."""

from repro import obs


def count_something():
    obs.counter("repro_bad_total").inc()


def lazy_edge():
    import repro.obs.metrics as metrics

    return metrics
