# repro-fixture-module: repro.serve.bad_fixture
"""Known-bad fixture for the serve-async-hygiene rule: blocking store
and runner calls executed directly inside coroutines."""


class BadHandler:
    def __init__(self, store, runner) -> None:
        self.store = store
        self.runner = runner

    async def handle(self, key: str, pairs: list) -> object:
        stats = self.store.load(key)
        if stats is None:
            stats = self.runner.run_many(pairs)[0]
        return stats
