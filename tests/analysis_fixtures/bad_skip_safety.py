# repro-fixture-module: repro.issue.bad_fixture
"""Known-bad fixture for the skip-safety rule.

``BadSide.step`` mutates per-cycle state with no
``next_activity_cycle()``-family contract anywhere in its MRO, and
``try_place`` accrues a counter that never appears in
``idle_counters()``/``apply_idle_counters()``.
"""


class BadSide:
    def __init__(self) -> None:
        self.dispatch_stalls = 0
        self.busy_cycles = 0

    def step(self, cycle: int) -> None:
        # Per-cycle mutation, no next_* contract: invisible to the skip
        # kernel's quiescence proof.
        self.busy_cycles += 1

    def try_place(self, inst) -> bool:
        # Counter accrued on the dispatch path but never registered for
        # interval accounting.
        self.dispatch_stalls += 1
        return False

    def idle_counters(self) -> dict:
        return {}

    def apply_idle_counters(self, counters: dict, span: int) -> None:
        return None
