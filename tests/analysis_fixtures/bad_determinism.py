# repro-fixture-module: repro.energy.bad_fixture
"""Known-bad fixture for the determinism rule: wall-clock reads,
module-level randomness, filesystem-order iteration, and float
accumulation over a set literal."""

import os
import random
import time


def jitter() -> float:
    return time.perf_counter() + random.random()


def trace_files(root: str) -> list:
    return [name for name in os.listdir(root)]


def total_energy() -> float:
    acc = 0.0
    for component in {1.0, 2.5, 3.25}:
        acc += component
    return acc
