# repro-fixture-module: repro.core.bad_fixture
"""Known-bad fixture for the version-tag-coverage rule: a module hashed
into SIMULATOR_VERSION_TAG importing behaviour from packages outside
the digest source list."""

from repro.explore.pareto import ParetoFrontier


def lazy_edge():
    import repro.serve.jobs as jobs

    return jobs, ParetoFrontier
