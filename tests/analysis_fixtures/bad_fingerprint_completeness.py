# repro-fixture-module: repro.common.bad_fixture
"""Known-bad fixture for the fingerprint-completeness rule: a typo'd
``_FINGERPRINT_EXCLUDE`` entry (the silent ``dict.pop`` hazard), an
unstable ``set`` field annotation, and a fingerprinted class that is
not a dataclass."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BadConfig:
    size: int = 64
    flags: set = field(default_factory=set)

    _FINGERPRINT_EXCLUDE = ("siez",)  # typo: field is 'size'


class AlsoBadConfig:
    _FINGERPRINT_EXCLUDE = ("kernel",)

    def __init__(self, kernel: str) -> None:
        self.kernel = kernel
