# repro-fixture-module: repro.sampling.bad_fixture
"""Known-bad fixture for the checkpoint-cycle-free rule: a warm-state
dataclass carrying a cycle-typed field and a ``state_snapshot`` payload
smuggling cycle numbers."""

from dataclasses import dataclass


@dataclass
class BadWarmState:
    position: int
    last_cycle: int


class BadPredictor:
    def __init__(self) -> None:
        self.table = [0] * 16
        self.ready_cycle = 0

    def state_snapshot(self) -> dict:
        return {"table": list(self.table), "cycle": self.ready_cycle}
