"""Tests for the experiment runner, configs and figure generators."""

import pytest

from repro.common.config import scheme_name
from repro.experiments import (
    BASELINE_UNBOUNDED,
    IF_DISTR,
    IQ_64_64,
    MB_DISTR,
    ExperimentRunner,
    RunScale,
    fig2_configs,
    fig3_configs,
    fig4_configs,
    fig6_configs,
    render_breakdown,
    render_series,
    render_table,
)
from repro.experiments import figures as fig_mod
from repro.workloads.prewarm import prewarm  # noqa: F401  (re-export sanity)

SMALL = RunScale(num_instructions=1200, warmup_instructions=600, seed=7)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(SMALL)


class TestConfigs:
    def test_paper_config_names(self):
        assert scheme_name(IQ_64_64) == "IQ_64_64"
        assert scheme_name(IF_DISTR) == "IssueFIFO_8x8_8x16_distr"
        assert scheme_name(MB_DISTR) == "MixBUFF_8x8_8x16_distr"
        assert scheme_name(BASELINE_UNBOUNDED) == "IQ_unbounded"

    def test_sweeps_have_six_configs_each(self):
        for configs in (fig2_configs(), fig3_configs(), fig4_configs(), fig6_configs()):
            assert len(configs) == 6

    def test_fig2_varies_integer_side(self):
        for name, cfg in fig2_configs().items():
            assert cfg.fp_queues == 16 and cfg.fp_queue_entries == 16
            assert cfg.int_queues in (8, 10, 12)

    def test_fig3_varies_fp_side(self):
        for name, cfg in fig3_configs().items():
            assert cfg.int_queues == 16 and cfg.int_queue_entries == 16
            assert cfg.fp_queues in (8, 10, 12)

    def test_mb_distr_chain_cap(self):
        assert MB_DISTR.max_chains_per_queue == 8
        assert MB_DISTR.distributed_fus


class TestRunner:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            RunScale(num_instructions=100, warmup_instructions=200).validate()

    def test_run_caching(self, runner):
        first = runner.run("gzip", IQ_64_64)
        second = runner.run("gzip", IQ_64_64)
        assert first is second

    def test_trace_caching(self, runner):
        assert runner.trace_for("gzip") is runner.trace_for("gzip")

    def test_ipc_positive(self, runner):
        assert runner.ipc("gzip", IQ_64_64) > 0

    def test_loss_of_baseline_against_itself_is_zero(self, runner):
        loss = runner.ipc_loss_pct("gzip", BASELINE_UNBOUNDED, BASELINE_UNBOUNDED)
        assert loss == pytest.approx(0.0)

    def test_average_loss(self, runner):
        loss = runner.average_loss_pct(["gzip"], IF_DISTR, BASELINE_UNBOUNDED)
        assert loss == runner.ipc_loss_pct("gzip", IF_DISTR, BASELINE_UNBOUNDED)


class TestCacheLayers:
    """Memory → disk → execution layering of the reworked runner."""

    def test_hermetic_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert ExperimentRunner(SMALL).store is None

    def test_env_var_enables_disk_layer(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = ExperimentRunner(SMALL)
        assert runner.store is not None and runner.store.root == tmp_path

    def test_telemetry_counts_each_layer(self, tmp_path):
        from repro.experiments import ResultStore

        store = ResultStore(tmp_path)
        first = ExperimentRunner(SMALL, store=store)
        first.run("gzip", IQ_64_64)  # simulated
        first.run("gzip", IQ_64_64)  # memory hit
        assert first.cache_stats() == {
            "memory_hits": 1, "disk_hits": 0, "simulations": 1,
        }
        second = ExperimentRunner(SMALL, store=store)
        second.run("gzip", IQ_64_64)  # disk hit, promoted to memory
        second.run("gzip", IQ_64_64)  # memory hit
        assert second.cache_stats() == {
            "memory_hits": 1, "disk_hits": 1, "simulations": 0,
        }

    def test_run_many_preserves_order_and_dedups(self):
        runner = ExperimentRunner(SMALL, store=False)
        pairs = [
            ("gzip", IQ_64_64),
            ("gzip", IF_DISTR),
            ("gzip", IQ_64_64),  # duplicate: one simulation, two results
        ]
        results = runner.run_many(pairs)
        assert len(results) == 3
        assert results[0] is results[2]
        assert runner.cache_stats()["simulations"] == 2
        assert results[0] == runner.run("gzip", IQ_64_64)

    def test_prefetch_warms_the_memory_layer(self):
        runner = ExperimentRunner(SMALL, store=False)
        runner.prefetch([("gzip", IQ_64_64)])
        assert runner.cache_stats()["simulations"] == 1
        runner.run("gzip", IQ_64_64)
        assert runner.cache_stats()["simulations"] == 1  # no new work

    def test_scale_is_part_of_the_disk_key(self, tmp_path):
        from repro.experiments import ResultStore

        store = ResultStore(tmp_path)
        small = ExperimentRunner(SMALL, store=store)
        small.run("gzip", IQ_64_64)
        other = ExperimentRunner(
            RunScale(num_instructions=1400, warmup_instructions=600, seed=7),
            store=store,
        )
        other.run("gzip", IQ_64_64)
        assert other.cache_stats()["simulations"] == 1  # no false sharing


class TestFigureGenerators:
    """Figure functions on a reduced benchmark set (monkeypatched suites)
    so the full test suite stays fast; the benchmarks/ harness runs the
    real ones."""

    @pytest.fixture()
    def small_suites(self, monkeypatch):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip", "crafty"])
        monkeypatch.setattr(fig_mod, "FP_BENCHMARKS", ["mesa", "swim"])

    def test_figure2_returns_all_configs(self, runner, small_suites):
        data = fig_mod.figure2(runner)
        assert set(data) == set(fig2_configs())

    def test_figure7_has_harmean(self, runner, small_suites):
        data = fig_mod.figure7(runner)
        assert set(data) == {"IQ_64_64", "IF_distr", "MB_distr"}
        for series in data.values():
            assert "HARMEAN" in series

    def test_figure9_breakdown_fractions(self, runner, small_suites):
        data = fig_mod.figure9(runner)
        for suite in ("SPECINT", "SPECFP"):
            total = sum(data[suite].values())
            assert total == pytest.approx(1.0)
            assert "wakeup" in data[suite]

    def test_figure11_has_mixbuff_components(self, runner, small_suites):
        data = fig_mod.figure11(runner)
        assert "chains" in data["SPECFP"]
        assert "select" in data["SPECFP"]

    def test_figure12_baseline_normalized_to_one(self, runner, small_suites):
        data = fig_mod.figure12(runner)
        for suite in data.values():
            assert suite["IQ_64_64"] == pytest.approx(1.0)
            # Both distributed schemes dissipate less IQ power.
            assert suite["IF_distr"] < 1.0
            assert suite["MB_distr"] < 1.0

    def test_figure15_produces_all_schemes(self, runner, small_suites):
        data = fig_mod.figure15(runner)
        assert set(data["SPECFP"]) == {"IQ_64_64", "IF_distr", "MB_distr"}


class TestReport:
    def test_render_series(self):
        text = render_series("Figure 2", {"a": 1.0, "bb": 2.5})
        assert "Figure 2" in text and "bb" in text and "2.50%" in text

    def test_render_table(self):
        text = render_table("IPC", {"scheme": {"gzip": 1.234}})
        assert "gzip" in text and "1.234" in text

    def test_render_breakdown(self):
        text = render_breakdown("Fig 9", {"SPECINT": {"wakeup": 0.6, "buff": 0.4}})
        assert "wakeup" in text and "60.0%" in text
