"""Differential net for every non-reference simulation kernel.

Each kernel's contract is *bit-identical statistics* with the naive
per-cycle loop on every input — the skipping kernel accounts skipped
spans in closed form, the ``vectorized`` backend re-hosts hot state as
numpy arrays, and the ``specialized`` backend runs a per-configuration
generated kernel; none may change a single reported number. These tests
drive all of them over a randomized matrix of (benchmark, scale, seed)
x all four issue schemes (stress profiles included) and require
field-for-field equality of ``SimulationStats`` (events included), plus
sanity checks on kernel telemetry, drain-span and sampled-slice
behaviour, and the cache-key neutrality of the kernel knob.
"""

import random

import pytest

from repro.common.config import (
    KERNEL_NAIVE,
    KERNEL_SKIP,
    KERNEL_SPECIALIZED,
    KERNEL_VECTORIZED,
    VALID_KERNELS,
    IssueSchemeConfig,
    default_config,
)
from repro.common.errors import ConfigurationError
from repro.core.processor import Processor
from repro.experiments import IF_DISTR, IQ_64_64, MB_DISTR
from repro.experiments.runner import (
    RunScale,
    simulate_pair,
    simulate_sampled_pair,
)
from repro.sampling import SamplingPlan
from repro.workloads.generator import generate_trace
from repro.workloads.prewarm import prewarm
from repro.workloads.suites import STRESS_BENCHMARKS, get_profile

#: Every kernel that must be differenced against the naive reference.
NON_NAIVE_KERNELS = (KERNEL_SKIP, KERNEL_VECTORIZED, KERNEL_SPECIALIZED)

LATFIFO_8x8_8x16 = IssueSchemeConfig(
    kind="latfifo", int_queues=8, int_queue_entries=8,
    fp_queues=8, fp_queue_entries=16,
)

ALL_SCHEMES = {
    "conventional": IQ_64_64,
    "issuefifo": IF_DISTR,
    "latfifo": LATFIFO_8x8_8x16,
    "mixbuff": MB_DISTR,
}

# A deterministic but randomized run matrix: mixed suites, scales with
# and without warm-up, memory-bound (mcf/art) and compute-bound points.
_RNG = random.Random(0xA6E11A)
RUN_MATRIX = [
    (benchmark, _RNG.choice((800, 1200, 2000)), _RNG.randrange(1, 1000))
    for benchmark in ("mcf", "gzip", "art", "mesa", "swim")
]


def _run(benchmark: str, num_instructions: int, seed: int,
         scheme: IssueSchemeConfig, kernel: str):
    profile = get_profile(benchmark)
    trace = generate_trace(profile, num_instructions, seed=seed)
    processor = Processor(default_config(scheme).with_kernel(kernel), trace)
    prewarm(processor.hierarchy, profile, seed)
    stats = processor.run(warmup_instructions=num_instructions // 3)
    return stats, processor


#: Naive reference results, memoized per matrix point: three kernels
#: difference against the same reference, so running it three times
#: would triple the slowest third of the suite for no extra coverage.
_NAIVE_MEMO = {}


def _naive_dict(benchmark, num_instructions, seed, scheme_name):
    key = (benchmark, num_instructions, seed, scheme_name)
    if key not in _NAIVE_MEMO:
        stats, __ = _run(benchmark, num_instructions, seed,
                         ALL_SCHEMES[scheme_name], KERNEL_NAIVE)
        _NAIVE_MEMO[key] = stats.to_dict()
    return _NAIVE_MEMO[key]


class TestKernelEquivalence:
    @pytest.mark.parametrize("kernel", NON_NAIVE_KERNELS)
    @pytest.mark.parametrize("scheme_name", sorted(ALL_SCHEMES))
    @pytest.mark.parametrize("bench,length,seed", RUN_MATRIX)
    def test_bit_identical_stats(self, kernel, scheme_name, bench, length,
                                 seed):
        scheme = ALL_SCHEMES[scheme_name]
        candidate, __ = _run(bench, length, seed, scheme, kernel)
        assert _naive_dict(bench, length, seed, scheme_name) == (
            candidate.to_dict()
        )

    def test_no_warmup_also_identical(self):
        profile = get_profile("mcf")
        trace = generate_trace(profile, 900, seed=3)
        results = {}
        for kernel in (KERNEL_NAIVE, KERNEL_SKIP):
            processor = Processor(default_config(IQ_64_64).with_kernel(kernel), trace)
            prewarm(processor.hierarchy, profile, 3)
            results[kernel] = processor.run().to_dict()
        assert results[KERNEL_NAIVE] == results[KERNEL_SKIP]


# The exploration stress scenarios exercise behaviours (serial pointer
# chasing, hostile branches, maximal chain churn, phase mixing) outside
# the SPEC stand-ins' envelope; the skip kernel must stay bit-identical
# there too (ROADMAP "keeping new components skip-safe").
STRESS_MATRIX = [
    (benchmark, _RNG.choice((800, 1200)), _RNG.randrange(1, 1000))
    for benchmark in STRESS_BENCHMARKS
]


class TestStressProfileKernelEquivalence:
    @pytest.mark.parametrize("kernel", NON_NAIVE_KERNELS)
    @pytest.mark.parametrize("scheme_name", sorted(ALL_SCHEMES))
    @pytest.mark.parametrize("bench,length,seed", STRESS_MATRIX)
    def test_bit_identical_stats(self, kernel, scheme_name, bench, length,
                                 seed):
        scheme = ALL_SCHEMES[scheme_name]
        candidate, __ = _run(bench, length, seed, scheme, kernel)
        assert _naive_dict(bench, length, seed, scheme_name) == (
            candidate.to_dict()
        )

    def test_skip_kernel_skips_on_pointer_chasing(self):
        # ptrchase is the repo's best case for cycle skipping: long
        # memory-bound drains with a quiescent machine.
        __, processor = _run("ptrchase", 1200, 11, IQ_64_64, KERNEL_SKIP)
        telemetry = processor.kernel_telemetry
        assert telemetry.skipped_cycles > 0
        assert telemetry.total_cycles == (
            telemetry.executed_cycles + telemetry.skipped_cycles
        )


class TestReadyBoundShortCircuit:
    """The conventional scheme's ready-bound scan skip is bit-identical.

    The optimization elides the full-queue selection scan on cycles where
    the cached ready bound proves nothing can issue; disabling it must
    not change a single statistic under either kernel.
    """

    @pytest.mark.parametrize("kernel", (KERNEL_NAIVE, KERNEL_SKIP))
    @pytest.mark.parametrize("bench,length,seed", RUN_MATRIX)
    def test_shortcircuit_matches_plain_scan(self, monkeypatch, kernel,
                                             bench, length, seed):
        from repro.issue.conventional import ConventionalIssueQueue

        optimized, __ = _run(bench, length, seed, IQ_64_64, kernel)
        monkeypatch.setattr(ConventionalIssueQueue, "_scan_shortcircuit", False)
        plain, __ = _run(bench, length, seed, IQ_64_64, kernel)
        assert optimized.to_dict() == plain.to_dict()

    def test_unbounded_baseline_also_identical(self, monkeypatch):
        from repro.experiments.configs import BASELINE_UNBOUNDED
        from repro.issue.conventional import ConventionalIssueQueue

        optimized, __ = _run("swim", 1200, 7, BASELINE_UNBOUNDED, KERNEL_SKIP)
        monkeypatch.setattr(ConventionalIssueQueue, "_scan_shortcircuit", False)
        plain, __ = _run("swim", 1200, 7, BASELINE_UNBOUNDED, KERNEL_SKIP)
        assert optimized.to_dict() == plain.to_dict()


class TestBroadcastDrainSpans:
    """Closed-form accounting of pure-broadcast drain spans.

    The skipping kernel defers result broadcasts off the event wheel
    while no waiting instruction can wake (the scheme's
    ``next_wakeup_cycle`` contract) and replays their wakeup accounting
    in closed form. The differential matrices above already pin
    bit-identity; these tests pin that the optimization actually
    engages and that its telemetry is consistent.
    """

    def test_drain_engages_across_the_matrix(self):
        # The optimization fires on drains where every in-flight
        # completion has already left the queues; require it somewhere
        # in the matrix so a regression to "never drains" is caught.
        drained = 0
        for bench, length, seed in RUN_MATRIX:
            for scheme in ALL_SCHEMES.values():
                __, processor = _run(bench, length, seed, scheme, KERNEL_SKIP)
                telemetry = processor.kernel_telemetry
                drained += telemetry.drained_broadcasts
                # A drained broadcast only ever rides a skipped span.
                if telemetry.drained_broadcasts:
                    assert telemetry.skip_spans > 0
        assert drained > 0

    def test_naive_kernel_never_drains(self):
        __, processor = _run("mcf", 2000, 11, IQ_64_64, KERNEL_NAIVE)
        assert processor.kernel_telemetry.drained_broadcasts == 0

    @pytest.mark.parametrize("kernel", (KERNEL_VECTORIZED, KERNEL_SPECIALIZED))
    @pytest.mark.parametrize("scheme_name", sorted(ALL_SCHEMES))
    def test_backend_drain_spans_match_skip(self, kernel, scheme_name):
        # The backends host the same event-driven driver, so on the
        # repo's best skipping case their span decisions — executed,
        # skipped, span count AND closed-form drained broadcasts — must
        # be cycle-for-cycle the ones the skip kernel makes.
        scheme = ALL_SCHEMES[scheme_name]
        __, skip_proc = _run("ptrchase", 1200, 11, scheme, KERNEL_SKIP)
        __, backend_proc = _run("ptrchase", 1200, 11, scheme, kernel)
        assert skip_proc.kernel_telemetry.as_dict() == (
            backend_proc.kernel_telemetry.as_dict()
        )
        assert backend_proc.kernel_telemetry.skipped_cycles > 0

    def test_wakeup_bound_never_precedes_first_broadcast(self):
        # next_wakeup_cycle returns a *scheduled* readiness transition,
        # and every scheduled transition rides a pending broadcast —
        # so deferral can never move an event earlier than the wheel
        # had it (the soundness invariant of the drain).
        from repro.workloads.generator import generate_trace
        from repro.workloads.prewarm import prewarm as _prewarm

        profile = get_profile("mesa")
        trace = generate_trace(profile, 1200, seed=5)
        processor = Processor(default_config(IQ_64_64), trace)
        _prewarm(processor.hierarchy, profile, 5)

        original = Processor.next_event_cycle

        def checked(self, cycle, defer_inert_broadcasts=False):
            if defer_inert_broadcasts and self._broadcasts:
                wake = self.scheme.next_wakeup_cycle(cycle, self.scoreboard)
                if wake is not None:
                    assert wake >= min(self._broadcasts)
            return original(self, cycle, defer_inert_broadcasts)

        Processor.next_event_cycle = checked
        try:
            processor.run(warmup_instructions=400)
        finally:
            Processor.next_event_cycle = original

    def test_base_scheme_contract_disables_deferral_soundly(self, monkeypatch):
        # A scheme that has not audited its selection logic inherits the
        # base next_wakeup_cycle of "wake immediately": broadcasts stay
        # on the wheel (no drains) and results remain bit-identical.
        import repro.issue.base as base_mod
        import repro.issue.conventional as conv
        from repro.issue.base import IssueScheme

        results = {}
        for patched in (False, True):
            if patched:
                monkeypatch.setattr(
                    conv.ConventionalIssueQueue,
                    "next_wakeup_cycle",
                    IssueScheme.next_wakeup_cycle,
                )
                monkeypatch.setattr(
                    base_mod.SideIdleCountersMixin,
                    "next_wakeup_cycle",
                    IssueScheme.next_wakeup_cycle,
                )
            for name, scheme in ALL_SCHEMES.items():
                stats, proc = _run("mcf", 1200, 3, scheme, KERNEL_SKIP)
                results.setdefault(name, []).append(stats.to_dict())
                if patched:
                    assert proc.kernel_telemetry.drained_broadcasts == 0
        for name, (optimized, plain) in results.items():
            assert optimized == plain, name


class TestKernelTelemetry:
    def test_skip_kernel_actually_skips_on_memory_bound_run(self):
        __, processor = _run("mcf", 2000, 11, IQ_64_64, KERNEL_SKIP)
        telemetry = processor.kernel_telemetry
        assert telemetry.skipped_cycles > 0
        assert telemetry.skip_spans > 0
        assert telemetry.total_cycles == (
            telemetry.executed_cycles + telemetry.skipped_cycles
        )

    def test_naive_kernel_never_skips(self):
        stats, processor = _run("mcf", 2000, 11, IQ_64_64, KERNEL_NAIVE)
        telemetry = processor.kernel_telemetry
        assert telemetry.skipped_cycles == 0
        assert telemetry.skip_spans == 0

    def test_total_cycles_match_between_kernels(self):
        naive_stats, naive_proc = _run("art", 1200, 5, MB_DISTR, KERNEL_NAIVE)
        skip_stats, skip_proc = _run("art", 1200, 5, MB_DISTR, KERNEL_SKIP)
        assert (
            naive_proc.kernel_telemetry.total_cycles
            == skip_proc.kernel_telemetry.total_cycles
        )
        assert naive_stats.cycles == skip_stats.cycles


class TestSampledSliceKernelEquivalence:
    """Sampled execution drives its detailed slices through the kernel
    knob too; every backend must produce the identical estimate."""

    PLAN = SamplingPlan(num_slices=3, slice_instructions=150,
                        warmup_instructions=100)
    SCALE = RunScale(num_instructions=2000, warmup_instructions=1000, seed=9)

    @pytest.mark.parametrize("kernel", NON_NAIVE_KERNELS)
    def test_sampled_estimates_bit_identical(self, kernel):
        reference, __ = simulate_sampled_pair(
            "art", IF_DISTR, self.SCALE, self.PLAN, kernel=KERNEL_NAIVE
        )
        candidate, __ = simulate_sampled_pair(
            "art", IF_DISTR, self.SCALE, self.PLAN, kernel=kernel
        )
        assert reference.stats.to_dict() == candidate.stats.to_dict()
        # The estimate record is identical too, except detailed_cycles —
        # that field is wall-work telemetry (cycles actually executed in
        # the detailed windows), which event-driven kernels legitimately
        # shrink; it feeds no statistic.
        ref_record = reference.to_dict()
        cand_record = candidate.to_dict()
        executed = cand_record.pop("detailed_cycles")
        assert executed <= ref_record.pop("detailed_cycles")
        assert ref_record == cand_record


class TestKernelKnob:
    @pytest.mark.parametrize("kernel", NON_NAIVE_KERNELS)
    def test_kernel_field_excluded_from_cache_key(self, kernel):
        base = default_config(IQ_64_64)
        assert base.with_kernel(KERNEL_NAIVE).cache_key() == (
            base.with_kernel(kernel).cache_key()
        )

    @pytest.mark.parametrize("kernel", sorted(VALID_KERNELS))
    def test_every_registered_kernel_validates(self, kernel):
        default_config(IQ_64_64).with_kernel(kernel).validate()

    def test_other_fields_still_change_the_key(self):
        base = default_config(IQ_64_64)
        assert base.cache_key() != default_config(IF_DISTR).cache_key()

    def test_invalid_kernel_rejected(self):
        config = default_config(IQ_64_64).with_kernel("warp")
        with pytest.raises(ConfigurationError):
            config.validate()

    @pytest.mark.parametrize("kernel", NON_NAIVE_KERNELS)
    def test_simulate_pair_kernel_override_is_bit_identical(self, kernel):
        scale = RunScale(num_instructions=1200, warmup_instructions=600, seed=9)
        naive, __ = simulate_pair("gzip", IF_DISTR, scale, kernel=KERNEL_NAIVE)
        other, __ = simulate_pair("gzip", IF_DISTR, scale, kernel=kernel)
        assert naive.to_dict() == other.to_dict()
