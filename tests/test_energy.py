"""Unit and property tests for the energy models and metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import IssueSchemeConfig, default_config
from repro.common.errors import ConfigurationError
from repro.common.stats import SimulationStats, StatCounters
from repro.energy.breakdown import (
    COMPONENT_OF_EVENT,
    breakdown_fractions,
    energy_breakdown,
)
from repro.energy.cacti import (
    Technology,
    cam_broadcast_energy,
    cam_compare_energy,
    mux_drive_energy,
    ram_access_energy,
    select_energy,
)
from repro.energy.metrics import (
    IQ_POWER_SHARE,
    calibrate_rest_of_chip,
    compute_metrics,
)
from repro.energy.model import EnergyModel


class TestCactiModel:
    def test_more_entries_cost_more(self):
        assert ram_access_energy(64, 32) > ram_access_energy(8, 32)

    def test_wider_entries_cost_more(self):
        assert ram_access_energy(64, 128) > ram_access_energy(64, 32)

    def test_ports_cost_more(self):
        assert ram_access_energy(64, 32, ports=4) > ram_access_energy(64, 32, ports=1)

    def test_cam_broadcast_scales_with_entries(self):
        assert cam_broadcast_energy(64, 8) > cam_broadcast_energy(8, 8)

    def test_technology_scaling(self):
        small = Technology(feature_um=0.07)
        assert ram_access_energy(64, 32, tech=small) < ram_access_energy(64, 32)

    def test_select_scales_with_entries(self):
        assert select_energy(64) > select_energy(8)

    def test_mux_scales_with_inputs(self):
        assert mux_drive_energy(8, 64) > mux_drive_energy(1, 64)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            ram_access_energy(0, 32)
        with pytest.raises(ConfigurationError):
            cam_compare_energy(0)
        with pytest.raises(ConfigurationError):
            mux_drive_energy(0, 64)

    @given(
        entries=st.integers(1, 512),
        width=st.integers(1, 256),
        ports=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_energy_always_positive(self, entries, width, ports):
        assert ram_access_energy(entries, width, ports) > 0

    @given(entries=st.integers(1, 256), extra=st.integers(1, 256))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_entries(self, entries, extra):
        assert ram_access_energy(entries + extra, 64) > ram_access_energy(entries, 64)


IQ64 = IssueSchemeConfig(kind="conventional")
IFD = IssueSchemeConfig(kind="issuefifo", int_queues=8, int_queue_entries=8,
                        fp_queues=8, fp_queue_entries=16, distributed_fus=True)
MBD = IssueSchemeConfig(kind="mixbuff", int_queues=8, int_queue_entries=8,
                        fp_queues=8, fp_queue_entries=16, distributed_fus=True,
                        max_chains_per_queue=8)


class TestEnergyModel:
    def test_conventional_has_wakeup_weights(self):
        model = EnergyModel(default_config(IQ64))
        assert "iq_wakeup_comparisons" in model.weights
        assert "iq_wakeup_broadcasts" in model.weights
        assert "fifo_write" not in model.weights

    def test_fifo_scheme_has_no_cam_weights(self):
        model = EnergyModel(default_config(IFD))
        assert "iq_wakeup_comparisons" not in model.weights
        assert "fifo_write" in model.weights
        assert "regs_ready_read" in model.weights

    def test_mixbuff_has_chain_weights(self):
        model = EnergyModel(default_config(MBD))
        assert "chains_read" in model.weights
        assert "mb_buff_write" in model.weights
        assert "mb_reg_write" in model.weights

    def test_distributed_mux_cheaper_than_centralized(self):
        central = EnergyModel(default_config(IQ64))
        distributed = EnergyModel(default_config(IFD))
        assert distributed.weights["mux_int_alu"] < central.weights["mux_int_alu"]

    def test_energy_sums_events(self):
        model = EnergyModel(default_config(IQ64))
        events = {"iq_buff_write": 10, "unknown_event": 1000}
        expected = 10 * model.weights["iq_buff_write"]
        assert model.energy_pj(events) == pytest.approx(expected)

    def test_energy_by_event_skips_zero_and_unknown(self):
        model = EnergyModel(default_config(IQ64))
        by_event = model.energy_by_event({"iq_buff_write": 0, "mystery": 5})
        assert by_event == {}


class TestBreakdown:
    def test_fractions_sum_to_one(self):
        model = EnergyModel(default_config(IQ64))
        events = {"iq_buff_write": 100, "iq_wakeup_comparisons": 500,
                  "iq_select_cycles": 50, "mux_int_alu": 80}
        fractions = breakdown_fractions(energy_breakdown(model, events))
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_component_names_match_paper_legends(self):
        assert COMPONENT_OF_EVENT["iq_wakeup_comparisons"] == "wakeup"
        assert COMPONENT_OF_EVENT["qrename_read"] == "Qrename"
        assert COMPONENT_OF_EVENT["chains_read"] == "chains"
        assert COMPONENT_OF_EVENT["mux_fp_mul"] == "MuxFPMUL"

    def test_empty_breakdown(self):
        assert breakdown_fractions({}) == {}


def make_stats(cycles, instructions, events=None):
    counters = StatCounters()
    for name, value in (events or {}).items():
        counters.add(name, value)
    return SimulationStats(
        cycles=cycles, committed_instructions=instructions, events=counters
    )


class TestMetrics:
    def test_rest_of_chip_calibration_hits_23_percent(self):
        baseline_iq = 1000.0
        rest = calibrate_rest_of_chip(baseline_iq, 100, 200)
        chip = baseline_iq + rest.energy_pj(100, 200)
        assert baseline_iq / chip == pytest.approx(IQ_POWER_SHARE)

    def test_rejects_degenerate_baseline(self):
        with pytest.raises(ValueError):
            calibrate_rest_of_chip(1000.0, 0, 100)

    def test_normalization_against_self_is_one(self):
        model = EnergyModel(default_config(IQ64))
        stats = make_stats(100, 200, {"iq_buff_write": 50})
        rest = calibrate_rest_of_chip(model.energy_pj(stats.events.as_dict()), 100, 200)
        metrics = compute_metrics(model, stats, rest)
        normalized = metrics.normalized_to(metrics)
        assert all(v == pytest.approx(1.0) for v in normalized.values())

    def test_slower_run_has_worse_ed2_scaling(self):
        model = EnergyModel(default_config(IQ64))
        fast = make_stats(100, 200, {"iq_buff_write": 50})
        slow = make_stats(200, 200, {"iq_buff_write": 50})
        rest = calibrate_rest_of_chip(model.energy_pj(fast.events.as_dict()), 100, 200)
        m_fast = compute_metrics(model, fast, rest)
        m_slow = compute_metrics(model, slow, rest)
        norm = m_slow.normalized_to(m_fast)
        # Delay doubled: ED grows superlinearly, ED2 even more.
        assert norm["energy_delay2"] > norm["energy_delay"] > 1.0

    def test_power_is_energy_per_cycle(self):
        model = EnergyModel(default_config(IQ64))
        stats = make_stats(100, 200, {"iq_buff_write": 50})
        rest = calibrate_rest_of_chip(1000.0, 100, 200)
        metrics = compute_metrics(model, stats, rest)
        assert metrics.iq_power == pytest.approx(metrics.iq_energy_pj / 100)
