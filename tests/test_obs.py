"""Tests for ``repro.obs``: the deterministic-safe observability layer.

Covers the metrics registry (counters, gauges, fixed-bucket histograms,
Prometheus rendering, snapshot/delta/merge), the span tracer (Chrome
``trace_event`` JSON + NDJSON sidecars), worker-merge across the
multiprocessing pool, the serve-side endpoints, and the headline
guarantee: tracing never changes an artifact byte.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.usefixtures("fresh_registry")


@pytest.fixture
def fresh_registry():
    """Swap in an empty registry and keep tracing off for each test."""
    previous = obs.get_registry()
    obs.set_registry(MetricsRegistry())
    obs.disable()
    try:
        yield
    finally:
        obs.disable()
        obs.set_registry(previous)


class TestMetricsRegistry:
    def test_counter_labels_and_negative_rejection(self):
        counter = obs.counter("repro_test_total", store="results")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        # Same (name, labels) -> same series; different labels -> new one.
        assert obs.counter("repro_test_total", store="results").value == 5
        assert obs.counter("repro_test_total", store="kernels").value == 0
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_not_accumulates(self):
        gauge = obs.gauge("repro_test_pending")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_buckets_and_conflict(self):
        hist = obs.histogram("repro_test_seconds", buckets=(1, 10))
        for value in (0.5, 5, 50):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert hist.count == 3
        assert hist.sum == pytest.approx(55.5)
        with pytest.raises(ValueError):
            obs.histogram("repro_test_seconds", buckets=(2, 20))

    def test_snapshot_delta_merge_round_trip(self):
        registry = obs.get_registry()
        obs.counter("repro_a_total").inc(2)
        obs.histogram("repro_h", buckets=(10,)).observe(3)
        before = registry.snapshot()
        obs.counter("repro_a_total").inc(5)
        obs.counter("repro_b_total", k="x").inc(1)
        obs.gauge("repro_g").set(9)  # gauges never ride in deltas
        obs.histogram("repro_h", buckets=(10,)).observe(99)
        delta = registry.delta_since(before)
        assert "gauges" not in delta
        assert all("repro_g" not in key for key in delta["counters"])

        other = MetricsRegistry()
        other.counter("repro_a_total").inc(100)
        other.merge_delta(delta)
        assert other.counter("repro_a_total").value == 105
        assert other.counter("repro_b_total", k="x").value == 1
        merged = other.histogram("repro_h", buckets=(10,))
        assert merged.counts == [0, 1]
        assert merged.sum == pytest.approx(99)

    def test_delta_drops_untouched_series(self):
        obs.counter("repro_quiet_total").inc(3)
        before = obs.get_registry().snapshot()
        obs.counter("repro_loud_total").inc()
        delta = obs.get_registry().delta_since(before)
        assert all(
            "repro_quiet_total" not in key for key in delta["counters"]
        )
        assert any("repro_loud_total" in key for key in delta["counters"])

    def test_prometheus_rendering(self):
        obs.counter("repro_c_total", store="results").inc(2)
        obs.gauge("repro_g").set(4)
        obs.histogram("repro_h_seconds", buckets=(1, 10), span="x").observe(5)
        text = obs.get_registry().render_prometheus()
        assert '# TYPE repro_c_total counter' in text
        assert 'repro_c_total{store="results"} 2' in text
        assert '# TYPE repro_g gauge' in text
        assert 'repro_h_seconds_bucket{span="x",le="+Inf"} 1' in text
        assert 'repro_h_seconds_bucket{span="x",le="1"} 0' in text
        assert 'repro_h_seconds_count{span="x"} 1' in text
        assert text.endswith("\n")

    def test_kernel_delta_and_totals(self):
        delta = {
            "executed_cycles": 10,
            "skipped_cycles": 90,
            "skip_spans": 4,
            "drained_broadcasts": 0,
        }
        obs.record_kernel_delta("skip", delta)
        obs.record_kernel_delta("naive", {**delta, "skipped_cycles": 0})
        totals = obs.kernel_totals()
        assert totals["executed_cycles"] == 20
        assert totals["skipped_cycles"] == 90
        assert totals["skip_spans"] == 8
        assert obs.counter(
            "repro_kernel_skipped_cycles_total", kernel="skip"
        ).value == 90


def _kernel_series(registry):
    """The deterministic-content series: kernel counters + run histograms
    (span-duration histograms, whose sums are wall-time, excluded)."""
    snap = registry.snapshot()
    series = {
        key: value
        for key, value in snap["counters"].items()
        if "repro_kernel_" in key
    }
    series.update(
        {
            key: state
            for key, state in snap["histograms"].items()
            if "repro_run_" in key
        }
    )
    return series


class TestWorkerMerge:
    PAIRS = None  # filled lazily to keep import cost out of collection

    def _run_matrix(self, workers):
        from repro.experiments import IF_DISTR, IQ_64_64
        from repro.experiments.parallel import simulate_matrix
        from repro.experiments.runner import RunScale

        scale = RunScale(num_instructions=1200, warmup_instructions=600, seed=7)
        pairs = [("gzip", IQ_64_64), ("gzip", IF_DISTR)]
        registry = MetricsRegistry()
        obs.set_registry(registry)
        results = simulate_matrix(pairs, scale, workers=workers)
        return results, registry

    def test_pool_merge_is_lossless_and_deterministic(self):
        serial_results, serial_registry = self._run_matrix(workers=1)
        pool_results, pool_registry = self._run_matrix(workers=2)
        assert [stats.to_dict() for stats in serial_results] == [
            stats.to_dict() for stats in pool_results
        ]
        serial_series = _kernel_series(serial_registry)
        assert serial_series  # the run did feed kernel metrics
        assert serial_series == _kernel_series(pool_registry)


class TestTracer:
    def test_span_files_are_valid_trace_event_json(self, tmp_path):
        trace_dir = tmp_path / "trace"
        obs.configure(trace_dir)
        assert obs.trace_enabled()
        with obs.span("unit.test", benchmark="gzip") as extra:
            extra["source"] = "memory"
        obs.instant("unit.marker", note=1)
        obs.flush()

        pid = os.getpid()
        trace_file = trace_dir / f"trace-{pid}.json"
        document = json.loads(trace_file.read_text())
        assert "traceEvents" in document
        events = document["traceEvents"]
        spans = [e for e in events if e["name"] == "unit.test"]
        assert len(spans) == 1
        span = spans[0]
        assert span["ph"] == "X"
        assert span["pid"] == pid
        assert span["dur"] >= 0
        assert span["args"] == {"benchmark": "gzip", "source": "memory"}

        ndjson = trace_dir / f"events-{pid}.ndjson"
        lines = [json.loads(line) for line in ndjson.read_text().splitlines()]
        assert any(line["name"] == "unit.marker" for line in lines)

        prom = trace_dir / f"metrics-{pid}.prom"
        assert "repro_span_seconds" in prom.read_text()

    def test_env_var_activates_and_disable_clears(self, tmp_path):
        os.environ[obs.ENV_VAR] = str(tmp_path / "envtrace")
        try:
            assert obs.trace_enabled()
            with obs.span("env.span"):
                pass
            obs.flush()
            assert (tmp_path / "envtrace").is_dir()
        finally:
            obs.disable()
        assert obs.ENV_VAR not in os.environ
        assert not obs.trace_enabled()

    def test_span_histogram_fed_even_when_disabled(self):
        with obs.span("quiet.span"):
            pass
        hist = obs.histogram(
            "repro_span_seconds", buckets=obs.SECONDS_BUCKETS, span="quiet.span"
        )
        assert hist.count == 1


class TestCampaignByteIdentity:
    def test_traced_campaign_artifact_is_byte_identical(self, tmp_path):
        from repro.experiments.campaign import main

        def run_campaign(tag, extra_args):
            out = tmp_path / f"campaign-{tag}.json"
            main(
                [
                    "--scale", "1000", "--figures", "2",
                    "--cache-dir", str(tmp_path / f"cache-{tag}"),
                    "--output", "json", "--output-path", str(out),
                ]
                + extra_args
            )
            return out.read_bytes()

        plain = run_campaign("plain", [])
        traced = run_campaign(
            "traced", ["--trace-out", str(tmp_path / "trace-out")]
        )
        assert plain == traced
        trace_files = list((tmp_path / "trace-out").glob("trace-*.json"))
        assert trace_files, "tracing produced no trace file"
        events = json.loads(trace_files[0].read_text())["traceEvents"]
        names = {event["name"] for event in events}
        assert "campaign.figure" in names
        assert "runner.resolve" in names


class TestServeEndpoints:
    def test_metrics_status_and_stats_surfaces(self, tmp_path):
        from repro.experiments.store import ResultStore
        from repro.serve import ServeApp

        async def request(port, method, path, payload=None):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            body = json.dumps(payload).encode() if payload is not None else b""
            writer.write(
                (
                    f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, __, rest = raw.partition(b"\r\n\r\n")
            return int(head.split(b" ")[1]), head, rest

        async def body():
            app = ServeApp(ResultStore(tmp_path, shards=2), batch_interval=0.02)
            port = await app.start("127.0.0.1", 0)
            try:
                spec = {
                    "type": "simulation", "benchmark": "gzip",
                    "scheme": "IQ_64_64", "scale": 1200, "seed": 7,
                }
                status, __, posted = await request(
                    port, "POST", "/v1/jobs", spec
                )
                assert status == 202
                job_id = json.loads(posted)["job"]
                while True:
                    status, __, raw = await request(
                        port, "GET", f"/v1/jobs/{job_id}"
                    )
                    if json.loads(raw)["state"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.05)

                status, head, metrics_blob = await request(
                    port, "GET", "/metrics"
                )
                assert status == 200
                assert b"text/plain" in head
                text = metrics_blob.decode("utf-8")
                assert "repro_serve_units_total 1" in text
                assert "repro_serve_jobs_total" in text
                assert "repro_serve_pending 0" in text

                status, head, page = await request(port, "GET", "/")
                assert status == 200
                assert b"text/html" in head
                html = page.decode("utf-8")
                assert "repro.serve" in html
                assert job_id in html
                assert "Store shard census" in html

                status, __, raw = await request(port, "GET", "/v1/stats")
                stats = json.loads(raw)
                sched = stats["scheduler"]
                assert sched["queue_depth"] == 0
                assert sched["in_flight_batches"] == 0
                assert sched["waiters"] == sched["misses"] + sched["coalesced"]
                store_stats = stats["store"]
                assert store_stats["shard_counts_at_start"] == [0, 0]
                assert sum(store_stats["shard_growth"]) == 1

                status, __, __body = await request(port, "GET", "/nope")
                assert status == 404
            finally:
                await app.shutdown()

        asyncio.run(body())
