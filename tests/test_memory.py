"""Unit and property tests for the cache hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import CacheConfig, default_config
from repro.common.stats import StatCounters
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy


def small_cache(sets=4, ways=2, line=32):
    return Cache(CacheConfig("test", sets * ways * line, ways, line, 1))


class TestCacheBasics:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert not cache.lookup(0x100, 10).hit
        assert cache.lookup(0x100, 10).hit

    def test_same_line_hits(self):
        cache = small_cache(line=32)
        cache.lookup(0x100, 10)
        assert cache.lookup(0x11F, 10).hit  # same 32-byte line
        assert not cache.lookup(0x120, 10).hit  # next line

    def test_miss_latency_includes_fill(self):
        cache = small_cache()
        assert cache.lookup(0x100, 10).latency == 11  # hit latency 1 + fill 10
        assert cache.lookup(0x100, 10).latency == 1

    def test_lru_eviction(self):
        cache = small_cache(sets=1, ways=2)
        a, b, c = 0x000, 0x020, 0x040  # all map to the single set
        cache.lookup(a, 0)
        cache.lookup(b, 0)
        cache.lookup(a, 0)  # a is now most recent
        cache.lookup(c, 0)  # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_probe_is_non_destructive(self):
        cache = small_cache()
        cache.probe(0x100)
        assert cache.accesses == 0
        assert not cache.probe(0x100)

    def test_flush_invalidates_but_keeps_stats(self):
        cache = small_cache()
        cache.lookup(0x100, 0)
        cache.flush()
        assert not cache.probe(0x100)
        assert cache.accesses == 1

    def test_miss_rate(self):
        cache = small_cache()
        cache.lookup(0x100, 0)
        cache.lookup(0x100, 0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_reset_statistics(self):
        cache = small_cache()
        cache.lookup(0x100, 0)
        cache.reset_statistics()
        assert cache.accesses == 0
        assert cache.probe(0x100)  # contents preserved


class TestCacheProperties:
    @given(st.lists(st.integers(0, 1 << 16), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = small_cache(sets=4, ways=2)
        for addr in addresses:
            cache.lookup(addr, 0)
        summary = cache.contents_summary()
        assert summary["lines_valid"] <= summary["lines_total"]

    @given(st.lists(st.integers(0, 1 << 16), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = small_cache()
        for addr in addresses:
            cache.lookup(addr, 0)
        assert cache.hits + cache.misses == cache.accesses

    @given(st.integers(0, 1 << 20))
    @settings(max_examples=50, deadline=None)
    def test_immediate_rereference_always_hits(self, addr):
        cache = small_cache()
        cache.lookup(addr, 0)
        assert cache.lookup(addr, 0).hit


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = MemoryHierarchy(default_config())
        h.data_access_latency(0x1000)  # fill
        assert h.data_access_latency(0x1000) == 2  # Table 1 L1D hit

    def test_cold_miss_goes_to_memory(self):
        h = MemoryHierarchy(default_config())
        latency = h.data_access_latency(0x5000)
        # L1 (2) + L2 (10) + memory (100 for 64-byte line).
        assert latency == 2 + 10 + 100

    def test_l2_hit_after_l1_eviction(self):
        cfg = default_config()
        h = MemoryHierarchy(cfg)
        h.data_access_latency(0x1000)
        # Evict 0x1000 from L1 by filling its set (4 ways + 1).
        l1_way_stride = cfg.dcache.num_sets * cfg.dcache.line_bytes
        for i in range(1, 5):
            h.data_access_latency(0x1000 + i * l1_way_stride)
        latency = h.data_access_latency(0x1000)
        assert latency == 2 + 10  # L1 miss, L2 hit

    def test_instruction_fetch_latency_hit(self):
        h = MemoryHierarchy(default_config())
        h.instruction_fetch_latency(0x400000)
        assert h.instruction_fetch_latency(0x400000) == 1

    def test_collect_events_exports_and_resets(self):
        h = MemoryHierarchy(default_config())
        h.data_access_latency(0x1000)
        events = StatCounters()
        h.collect_events(events)
        assert events.get("dcache_accesses") == 1
        assert events.get("dcache_misses") == 1
        assert h.dcache.accesses == 0  # reset after export
