"""Unit tests for the Palacharla placement heuristics and FIFO issue."""

import pytest

from repro.common.config import default_config
from repro.common.stats import StatCounters
from repro.core.functional_units import PooledFuPool
from repro.core.lsq import LoadStoreQueue
from repro.core.scoreboard import Scoreboard
from repro.core.uop import InFlight
from repro.issue.base import IssueContext
from repro.issue.fifo_side import FifoSide

from tests.util import alu, r


def make_uop(inst, age=None):
    return InFlight(inst, [], None, None, 0, age if age is not None else inst.seq, 0)


@pytest.fixture
def side():
    return FifoSide(False, 4, 2, StatCounters())


def place(side, uop):
    assert side.try_place(uop, cycle=0)
    return uop


class TestPlacement:
    def test_independent_instructions_take_empty_queues(self, side):
        a = place(side, make_uop(alu(0, r(1))))
        b = place(side, make_uop(alu(1, r(2))))
        assert a.queue_index == 0
        assert b.queue_index == 1

    def test_dependent_follows_producer(self, side):
        producer = place(side, make_uop(alu(0, r(1))))
        consumer = place(side, make_uop(alu(1, r(2), [r(1)])))
        assert consumer.queue_index == producer.queue_index

    def test_second_operand_used_when_first_unknown(self, side):
        producer = place(side, make_uop(alu(0, r(2))))
        consumer = place(side, make_uop(alu(1, r(3), [r(9), r(2)])))
        assert consumer.queue_index == producer.queue_index

    def test_full_producer_queue_single_operand_stalls(self, side):
        place(side, make_uop(alu(0, r(1))))
        place(side, make_uop(alu(1, r(1), [r(1)])))  # queue 0 now full (2 entries)
        assert not side.try_place(make_uop(alu(2, r(3), [r(1)])), 0)
        assert side.stalls_rule1_full == 1

    def test_no_empty_fifo_stalls(self, side):
        for i in range(4):
            place(side, make_uop(alu(i, r(i + 1))))
        # A fifth independent chain has nowhere to go.
        assert not side.try_place(make_uop(alu(4, r(9))), 0)
        assert side.stalls_no_empty == 1

    def test_consumer_can_follow_issued_producer_marker(self, side):
        # The table entry survives the producer's issue (hardware table
        # is only overwritten by new dispatches).
        producer = place(side, make_uop(alu(0, r(1))))
        side.queues[producer.queue_index].popleft()  # pretend it issued
        consumer = place(side, make_uop(alu(1, r(2), [r(1)])))
        assert consumer.queue_index == producer.queue_index


class TestIssue:
    def make_ctx(self, cycle=0):
        cfg = default_config()
        self.scoreboard = Scoreboard(160, 160, 32, 32)
        completions = []
        ctx = IssueContext(
            cycle,
            cfg,
            self.scoreboard,
            PooledFuPool(cfg.fus),
            LoadStoreQueue(),
            lambda uop, cyc: completions.append(uop),
        )
        return ctx

    def test_only_heads_issue(self, side):
        a = place(side, make_uop(alu(0, r(1))))
        b = place(side, make_uop(alu(1, r(2), [r(1)])))  # behind a
        ctx = self.make_ctx()
        issued = side.issue_heads(ctx, distributed=False)
        assert issued == [a]
        assert side.queues[a.queue_index][0] is b

    def test_unready_head_blocks_queue(self, side):
        uop = make_uop(alu(0, r(1), [r(2)]))
        uop.src_phys = [(False, 40)]  # pending physical register
        self_ctx = self.make_ctx()
        self_ctx.scoreboard.mark_pending((False, 40))
        place(side, uop)
        assert side.issue_heads(self_ctx, distributed=False) == []

    def test_heads_issue_oldest_first(self, side):
        young = make_uop(alu(5, r(2)), age=5)
        old = make_uop(alu(1, r(1)), age=1)
        place(side, young)
        place(side, old)
        ctx = self.make_ctx()
        issued = side.issue_heads(ctx, distributed=False)
        assert issued[0] is old

    def test_issue_consumes_budget(self, side):
        for i in range(4):
            place(side, make_uop(alu(i, r(i + 1))))
        ctx = self.make_ctx()
        ctx.int_budget = 2
        assert len(side.issue_heads(ctx, distributed=False)) == 2

    def test_regs_ready_reads_counted_per_head(self):
        events = StatCounters()
        side = FifoSide(False, 4, 2, events)
        uop = make_uop(alu(0, r(1), [r(2)]))
        uop.src_phys = [(False, 2)]
        side.try_place(uop, 0)
        ctx = self.make_ctx()
        side.issue_heads(ctx, distributed=False)
        assert events.get("regs_ready_read") == 1
