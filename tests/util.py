"""Shared helpers for building hand-crafted traces in tests."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.instructions import Instruction, RegisterRef
from repro.isa.opcodes import OpClass
from repro.workloads.trace import Trace

__all__ = ["r", "f", "alu", "fpalu", "load", "store", "branch", "make_trace"]


def r(index: int) -> RegisterRef:
    """Integer architectural register."""
    return RegisterRef(False, index)


def f(index: int) -> RegisterRef:
    """FP architectural register."""
    return RegisterRef(True, index)


def alu(seq: int, dest: Optional[RegisterRef], srcs: Sequence[RegisterRef] = (),
        pc: Optional[int] = None, op: OpClass = OpClass.INT_ALU) -> Instruction:
    return Instruction(seq=seq, pc=pc if pc is not None else 0x1000 + 4 * seq,
                       op=op, srcs=tuple(srcs), dest=dest)


def fpalu(seq: int, dest: RegisterRef, srcs: Sequence[RegisterRef] = (),
          op: OpClass = OpClass.FP_ALU) -> Instruction:
    return alu(seq, dest, srcs, op=op)


def load(seq: int, dest: RegisterRef, addr: int, srcs: Sequence[RegisterRef] = (),
         fp: bool = False) -> Instruction:
    op = OpClass.FP_LOAD if fp else OpClass.LOAD
    return Instruction(seq=seq, pc=0x1000 + 4 * seq, op=op,
                       srcs=tuple(srcs), dest=dest, mem_addr=addr)


def store(seq: int, data: RegisterRef, addr: int,
          addr_srcs: Sequence[RegisterRef] = ()) -> Instruction:
    op = OpClass.FP_STORE if data.is_fp else OpClass.STORE
    return Instruction(seq=seq, pc=0x1000 + 4 * seq, op=op,
                       srcs=(data,) + tuple(addr_srcs), dest=None, mem_addr=addr)


def branch(seq: int, taken: bool, target: int = 0x2000,
           srcs: Sequence[RegisterRef] = ()) -> Instruction:
    return Instruction(seq=seq, pc=0x1000 + 4 * seq, op=OpClass.BRANCH,
                       srcs=tuple(srcs), dest=None, taken=taken,
                       target=target if taken else None)


def make_trace(instructions: List[Instruction], name: str = "test") -> Trace:
    trace = Trace(name=name, instructions=instructions)
    trace.validate()
    return trace
