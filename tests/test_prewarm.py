"""Tests for the cache pre-warming pass."""

from repro.common.config import default_config
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.generator import build_static_program
from repro.workloads.prewarm import prewarm
from repro.workloads.suites import get_profile


class TestPrewarm:
    def test_statistics_are_reset(self):
        hierarchy = MemoryHierarchy(default_config())
        prewarm(hierarchy, get_profile("gzip"), seed=3)
        assert hierarchy.dcache.accesses == 0
        assert hierarchy.icache.accesses == 0
        assert hierarchy.l2.accesses == 0

    def test_instruction_lines_warm(self):
        hierarchy = MemoryHierarchy(default_config())
        profile = get_profile("gzip")
        prewarm(hierarchy, profile, seed=3)
        program = build_static_program(profile, 3)
        for slot in range(len(program.bodies[0])):
            assert hierarchy.icache.probe(program.body_pc(0, slot))

    def test_stream_lines_resident_in_l1(self):
        hierarchy = MemoryHierarchy(default_config())
        profile = get_profile("gzip")
        prewarm(hierarchy, profile, seed=3)
        program = build_static_program(profile, 3)
        hits = 0
        total = 0
        for static in program.bodies[0]:
            if static.op.is_memory and not static.addr_random:
                total += 1
                if hierarchy.dcache.probe(program.data_base + static.addr_offset):
                    hits += 1
        assert total > 0
        assert hits / total > 0.8  # streams re-touched last stay resident

    def test_random_region_warm_in_l2(self):
        hierarchy = MemoryHierarchy(default_config())
        profile = get_profile("vortex")  # 64 KB random region
        prewarm(hierarchy, profile, seed=3)
        # Sample the random region: most lines should be in L2 (region
        # fits) even if L1 evicted them.
        resident = sum(
            1
            for offset in range(0, 64 * 1024, 1024)
            if hierarchy.l2.probe(0x1000_0000 + offset)
            or hierarchy.dcache.probe(0x1000_0000 + offset)
        )
        assert resident >= 48  # out of 64 samples

    def test_deterministic(self):
        results = []
        for __ in range(2):
            hierarchy = MemoryHierarchy(default_config())
            prewarm(hierarchy, get_profile("swim"), seed=9)
            results.append(hierarchy.dcache.contents_summary())
        assert results[0] == results[1]
