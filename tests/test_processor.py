"""Integration tests: the full pipeline on hand-crafted and synthetic traces."""

import pytest

from repro.common.config import IssueSchemeConfig, default_config
from repro.common.errors import SimulationError
from repro.core.processor import Processor
from repro.workloads.generator import generate_trace
from repro.workloads.prewarm import prewarm
from repro.workloads.suites import get_profile

from tests.util import alu, branch, f, fpalu, load, make_trace, r, store

ALL_SCHEMES = [
    IssueSchemeConfig(kind="conventional", unbounded=True),
    IssueSchemeConfig(kind="conventional"),
    IssueSchemeConfig(kind="issuefifo", int_queues=8, int_queue_entries=8,
                      fp_queues=8, fp_queue_entries=16),
    IssueSchemeConfig(kind="latfifo", int_queues=8, int_queue_entries=8,
                      fp_queues=8, fp_queue_entries=16),
    IssueSchemeConfig(kind="mixbuff", int_queues=8, int_queue_entries=8,
                      fp_queues=8, fp_queue_entries=16, max_chains_per_queue=8),
    IssueSchemeConfig(kind="issuefifo", int_queues=8, int_queue_entries=8,
                      fp_queues=8, fp_queue_entries=16, distributed_fus=True),
    IssueSchemeConfig(kind="mixbuff", int_queues=8, int_queue_entries=8,
                      fp_queues=8, fp_queue_entries=16, distributed_fus=True,
                      max_chains_per_queue=8),
]


def run_trace(trace, scheme=None, **kwargs):
    cfg = default_config(scheme or IssueSchemeConfig(kind="conventional", unbounded=True))
    processor = Processor(cfg, trace)
    return processor.run(**kwargs), processor


class TestGoldenTiming:
    def test_single_instruction(self):
        stats, __ = run_trace(make_trace([alu(0, r(1))]))
        assert stats.committed_instructions == 1
        assert stats.ipc > 0

    def test_dependent_chain_is_serial(self):
        # 20 dependent single-cycle ALU ops: at least 20 issue cycles.
        insts = [alu(0, r(1))] + [alu(i, r(1), [r(1)]) for i in range(1, 20)]
        stats, __ = run_trace(make_trace(insts))
        assert stats.cycles >= 20

    def test_independent_ops_run_in_parallel(self):
        serial = [alu(0, r(1))] + [alu(i, r(1), [r(1)]) for i in range(1, 16)]
        parallel = [alu(i, r(1 + i % 8)) for i in range(16)]
        serial_stats, __ = run_trace(make_trace(serial))
        parallel_stats, __ = run_trace(make_trace(parallel))
        assert parallel_stats.cycles < serial_stats.cycles

    def test_fp_latency_longer_than_int(self):
        int_chain = [alu(0, r(1))] + [alu(i, r(1), [r(1)]) for i in range(1, 12)]
        fp_chain = [fpalu(0, f(1))] + [fpalu(i, f(1), [f(1)]) for i in range(1, 12)]
        int_stats, __ = run_trace(make_trace(int_chain))
        fp_stats, __ = run_trace(make_trace(fp_chain))
        # FP ALU latency is 2 vs 1: the dependent chain takes longer
        # (cold-start fetch overhead is shared by both runs).
        assert fp_stats.cycles >= int_stats.cycles + 6

    def test_store_load_forwarding_faster_than_miss(self):
        # A load that forwards from an in-flight store to a new address
        # avoids the cold-miss latency.
        forwarded = [
            alu(0, r(1)),
            store(1, r(1), 0x100, [r(2)]),
            load(2, r(3), 0x100),
        ]
        cold = [
            alu(0, r(1)),
            store(1, r(1), 0x100, [r(2)]),
            load(2, r(3), 0x4000),
        ]
        f_stats, f_proc = run_trace(make_trace(forwarded))
        c_stats, __ = run_trace(make_trace(cold))
        assert f_proc.lsq.forwarded_loads == 1
        assert f_stats.cycles < c_stats.cycles

    def test_load_waits_for_older_store_address(self):
        # The load's memory access may not start before all older store
        # addresses are known.
        insts = [
            alu(0, r(1)),
            store(1, r(1), 0x200, [r(2)]),
            load(2, r(3), 0x300),
        ]
        stats, proc = run_trace(make_trace(insts))
        assert stats.committed_instructions == 3

    def test_mispredicted_branch_costs_cycles(self):
        taken = make_trace(
            [alu(0, r(1))] + [branch(1, True)] + [alu(i, r(2)) for i in range(2, 10)]
        )
        fallthrough = make_trace(
            [alu(0, r(1))] + [branch(1, False)] + [alu(i, r(2)) for i in range(2, 10)]
        )
        # A cold predictor predicts not-taken: the taken branch blocks fetch.
        taken_stats, __ = run_trace(taken)
        fall_stats, __ = run_trace(fallthrough)
        assert taken_stats.cycles > fall_stats.cycles


class TestAllSchemes:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: f"{s.kind}{'-distr' if s.distributed_fus else ''}{'-unb' if s.unbounded else ''}")
    def test_synthetic_trace_commits_fully(self, scheme):
        trace = generate_trace(get_profile("mesa"), 800, seed=9)
        cfg = default_config(scheme)
        processor = Processor(cfg, trace)
        stats = processor.run()
        assert stats.committed_instructions == 800
        assert 0 < stats.ipc <= cfg.fetch_width

    @pytest.mark.parametrize("scheme", ALL_SCHEMES[:5], ids=lambda s: s.kind + ("u" if s.unbounded else ""))
    def test_determinism(self, scheme):
        results = []
        for __ in range(2):
            trace = generate_trace(get_profile("gzip"), 600, seed=4)
            stats, __p = run_trace(trace, scheme)
            results.append((stats.cycles, stats.committed_instructions,
                            sorted(stats.events.as_dict().items())))
        assert results[0] == results[1]


class TestWarmup:
    def test_warmup_excluded_from_stats(self):
        trace = generate_trace(get_profile("gzip"), 1000, seed=4)
        full, __ = run_trace(trace)
        trace2 = generate_trace(get_profile("gzip"), 1000, seed=4)
        warm, __ = run_trace(trace2, warmup_instructions=500)
        assert warm.committed_instructions <= 500 + 8  # commit-width slack
        assert warm.cycles < full.cycles

    def test_warmup_must_be_shorter_than_trace(self):
        trace = generate_trace(get_profile("gzip"), 100, seed=4)
        with pytest.raises(SimulationError):
            run_trace(trace, warmup_instructions=100)

    def test_warm_run_has_higher_ipc_than_cold(self):
        trace = generate_trace(get_profile("swim"), 2000, seed=4)
        cold, __ = run_trace(trace)
        trace2 = generate_trace(get_profile("swim"), 2000, seed=4)
        cfg = default_config(IssueSchemeConfig(kind="conventional", unbounded=True))
        proc = Processor(cfg, trace2)
        prewarm(proc.hierarchy, get_profile("swim"), 4)
        warm = proc.run(warmup_instructions=1000)
        assert warm.ipc > cold.ipc


class TestEventAccounting:
    def test_cycle_and_commit_events_exported(self):
        trace = generate_trace(get_profile("gzip"), 400, seed=4)
        stats, __ = run_trace(trace)
        assert stats.events.get("cycles") == stats.cycles
        assert stats.events.get("committed") == 400

    def test_conventional_counts_wakeup_and_buff(self):
        trace = generate_trace(get_profile("gzip"), 400, seed=4)
        stats, __ = run_trace(trace)
        events = stats.events.as_dict()
        assert events.get("iq_buff_write", 0) == 400
        assert events.get("iq_wakeup_broadcasts", 0) > 0

    def test_fifo_scheme_counts_fifo_events(self):
        trace = generate_trace(get_profile("gzip"), 400, seed=4)
        stats, __ = run_trace(trace, ALL_SCHEMES[2])
        events = stats.events.as_dict()
        assert events.get("fifo_write", 0) > 0
        assert events.get("regs_ready_read", 0) > 0
        assert events.get("qrename_read", 0) > 0

    def test_mixbuff_counts_chain_events(self):
        trace = generate_trace(get_profile("mesa"), 600, seed=4)
        stats, __ = run_trace(trace, ALL_SCHEMES[4])
        events = stats.events.as_dict()
        assert events.get("mb_buff_write", 0) > 0
        assert events.get("chains_read", 0) > 0
        assert events.get("mb_reg_write", 0) > 0

    def test_mux_events_match_issued_instructions(self):
        trace = generate_trace(get_profile("gzip"), 400, seed=4)
        stats, __ = run_trace(trace)
        events = stats.events.as_dict()
        mux_total = sum(events.get(k, 0) for k in
                        ("mux_int_alu", "mux_int_mul", "mux_fp_alu", "mux_fp_mul"))
        assert mux_total == events.get("instructions_issued")
