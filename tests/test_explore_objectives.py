"""Tests for objective scoring: degenerate baselines and suite aggregation."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.common.stats import SimulationStats
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.explore.objectives import OBJECTIVES, ObjectiveScorer, SuiteAggregator
from repro.explore.space import default_space


BASE_ASSIGNMENT = {
    "kind": "issuefifo",
    "int_queues": 8,
    "int_entries": 8,
    "fp_queues": 8,
    "fp_entries": 16,
    "distributed_fus": False,
    "max_chains": None,
    "issue_width": 8,
    "rob_entries": 256,
}


def axis_point(benchmark="gzip"):
    space = default_space([benchmark])
    return space.build_point(dict(BASE_ASSIGNMENT, benchmark=benchmark))


def suite_point(benchmarks):
    space = default_space(benchmarks, aggregate=True)
    return space.build_point(dict(BASE_ASSIGNMENT))


class DeadRunner:
    """Runner stub whose every run commits zero instructions."""

    def run(self, benchmark, config):
        return SimulationStats(cycles=250, committed_instructions=0)

    def prefetch(self, pairs):
        pass


class TestDegenerateBaseline:
    def test_zero_ipc_baseline_raises_configuration_error(self):
        scorer = ObjectiveScorer(DeadRunner())
        with pytest.raises(ConfigurationError, match="IPC 0"):
            scorer.score(axis_point())

    def test_aggregator_guards_every_benchmark(self):
        aggregator = SuiteAggregator(DeadRunner(), ("gzip", "mcf"))
        with pytest.raises(ConfigurationError, match="gzip"):
            aggregator.score(suite_point(["gzip", "mcf"]))

    def test_aggregator_rejects_empty_suite(self):
        with pytest.raises(ConfigurationError):
            SuiteAggregator(DeadRunner(), ())


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        RunScale(num_instructions=1000, warmup_instructions=500, seed=11),
        store=False,
    )


class TestSuiteAggregation:
    BENCHMARKS = ("gzip", "streampump")

    def test_aggregate_is_geometric_mean_of_sub_scores(self, runner):
        aggregator = SuiteAggregator(runner, self.BENCHMARKS)
        score = aggregator.score(suite_point(self.BENCHMARKS))
        assert tuple(score.per_benchmark) == self.BENCHMARKS
        for name in ("energy", "energy_delay", "energy_delay2"):
            expected = math.prod(
                score.per_benchmark[b][name] for b in self.BENCHMARKS
            ) ** (1.0 / len(self.BENCHMARKS))
            assert score.objectives[name] == pytest.approx(expected)
        ratio = math.prod(
            score.per_benchmark[b]["ipc"] / score.per_benchmark[b]["baseline_ipc"]
            for b in self.BENCHMARKS
        ) ** (1.0 / len(self.BENCHMARKS))
        assert score.objectives["ipc_loss_pct"] == pytest.approx(100.0 * (1.0 - ratio))

    def test_sub_scores_match_axis_scorer(self, runner):
        aggregator = SuiteAggregator(runner, self.BENCHMARKS)
        aggregated = aggregator.score(suite_point(self.BENCHMARKS))
        axis = ObjectiveScorer(runner)
        for benchmark in self.BENCHMARKS:
            single = axis.score(axis_point(benchmark))
            sub = aggregated.per_benchmark[benchmark]
            assert sub["ipc"] == single.ipc
            assert sub["baseline_ipc"] == single.baseline_ipc
            for name in OBJECTIVES:
                assert sub[name] == single.objectives[name]

    def test_required_pairs_cover_the_point_x_suite_matrix(self, runner):
        aggregator = SuiteAggregator(runner, self.BENCHMARKS)
        point = suite_point(self.BENCHMARKS)
        pairs = aggregator.required_pairs([point])
        # baseline + point config, each on every benchmark, no duplicates.
        assert len(pairs) == 2 * len(self.BENCHMARKS)
        assert len(set(pairs)) == len(pairs)
        assert {benchmark for benchmark, _ in pairs} == set(self.BENCHMARKS)

    def test_as_row_embeds_per_benchmark_columns(self, runner):
        aggregator = SuiteAggregator(runner, self.BENCHMARKS)
        row = aggregator.score(suite_point(self.BENCHMARKS)).as_row()
        for benchmark in self.BENCHMARKS:
            assert f"{benchmark}.ipc" in row
            for name in OBJECTIVES:
                assert row[f"{benchmark}.{name}"] is not None

    def test_axis_rows_stay_flat(self, runner):
        score = ObjectiveScorer(runner).score(axis_point())
        assert score.per_benchmark is None
        # No per-benchmark columns leak into axis-mode rows (artifact
        # schema for the existing mode is frozen).
        assert not any("." in key for key in score.as_row())
