"""Statistical regression net for the sampled execution mode.

For every figure-suite benchmark and the four exploration stress
profiles, one full detailed run is compared against one sampled run
under the Section 4 baseline scheme. The contract, per benchmark:

* the sampled IPC estimate is within the plan's configured relative-
  error bound of the full-run value,
* the full-run IPC and energy-per-instruction fall inside the reported
  confidence intervals, and
* the sampled run *executed* strictly fewer detailed cycles than the
  full run (reported via ``KernelTelemetry``).

Everything here is deterministic — trace generation, slice placement
and the simulators are all seeded — so these assertions are exact
regression pins, not flaky statistics: a change that degrades the
estimator or the functional warming trips them immediately.

The run scale is larger than the unit tests' (sampling needs room to
amortize its per-slice pipeline warm-up), which makes this the most
expensive test module in tier 1; results are computed once per session.
"""

import pytest

from repro.common.config import default_config
from repro.core import engine
from repro.energy.model import EnergyModel
from repro.experiments.configs import IQ_64_64
from repro.experiments.runner import RunScale, simulate_pair, simulate_sampled_pair
from repro.sampling import SamplingPlan
from repro.workloads.suites import FP_BENCHMARKS, INT_BENCHMARKS, STRESS_BENCHMARKS

#: The regression scale: a 10k-instruction measured region gives the
#: plan enough strata for the heterogeneous synthetic traces.
SCALE = RunScale(num_instructions=12000, warmup_instructions=2000, seed=11)

#: Tuned against the suite: ~70% slice coverage of the measured region,
#: 300-instruction detailed warm-up per slice (the pipeline-fill scale),
#: 99% confidence, 10% error bound.
PLAN = SamplingPlan(
    num_slices=10,
    slice_instructions=700,
    warmup_instructions=300,
    confidence=0.99,
    target_relative_error=0.10,
)

ALL_BENCHMARKS = INT_BENCHMARKS + FP_BENCHMARKS + STRESS_BENCHMARKS

_CONFIG = default_config(IQ_64_64)
_MODEL = EnergyModel(_CONFIG)
_CACHE = {}


def _measure(bench):
    """(full ipc, full epi, full executed cycles, SampledStats) — memoized."""
    if bench not in _CACHE:
        engine.GLOBAL_TELEMETRY.reset()
        full_stats, trace = simulate_pair(bench, IQ_64_64, SCALE)
        full_cycles = engine.GLOBAL_TELEMETRY.executed_cycles
        sampled, __ = simulate_sampled_pair(
            bench, IQ_64_64, SCALE, PLAN, trace=trace
        )
        full_epi = (
            _MODEL.energy_pj(full_stats.events.as_dict())
            / full_stats.committed_instructions
        )
        _CACHE[bench] = (full_stats.ipc, full_epi, full_cycles, sampled)
    return _CACHE[bench]


@pytest.mark.parametrize("bench", ALL_BENCHMARKS)
class TestSampledAccuracy:
    def test_ipc_within_plan_error_bound(self, bench):
        full_ipc, __, __, sampled = _measure(bench)
        error = abs(sampled.estimates["ipc"].mean - full_ipc) / full_ipc
        assert error <= PLAN.target_relative_error, (
            f"{bench}: sampled IPC {sampled.estimates['ipc'].mean:.4f} "
            f"vs full {full_ipc:.4f} — {100 * error:.1f}% exceeds the "
            f"{100 * PLAN.target_relative_error:.0f}% bound"
        )
        assert sampled.within_bound(full_ipc)

    def test_full_ipc_inside_reported_interval(self, bench):
        full_ipc, __, __, sampled = _measure(bench)
        estimate = sampled.estimates["ipc"]
        assert estimate.contains(full_ipc), (
            f"{bench}: full IPC {full_ipc:.4f} outside "
            f"[{estimate.ci_low:.4f}, {estimate.ci_high:.4f}]"
        )

    def test_full_energy_inside_reported_interval(self, bench):
        __, full_epi, __, sampled = _measure(bench)
        estimate = sampled.estimates["energy_per_inst"]
        assert estimate.contains(full_epi), (
            f"{bench}: full energy/inst {full_epi:.3f} pJ outside "
            f"[{estimate.ci_low:.3f}, {estimate.ci_high:.3f}]"
        )

    def test_fewer_detailed_cycles_than_full(self, bench):
        __, __, full_cycles, sampled = _measure(bench)
        assert 0 < sampled.detailed_cycles < full_cycles, (
            f"{bench}: sampled mode executed {sampled.detailed_cycles} "
            f"cycles vs {full_cycles} full — no detailed-cycle savings"
        )
