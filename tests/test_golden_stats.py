"""Golden-stats determinism net for the simulator and campaign engine.

One small run of each issue scheme is pinned to exact cycle, stall and
energy-event counts (plus a SHA-256 over the *entire* stats payload).
Five execution paths must reproduce them bit-identically:

* the serial in-process path (``ExperimentRunner.run``),
* the multiprocessing path (``simulate_matrix`` with 2 workers),
* a disk-cache hit (save to a fresh ``ResultStore``, reload, compare),
* the naive per-cycle kernel and the event-driven cycle-skipping kernel
  (``TestKernelPaths`` pins both explicitly; the goldens themselves were
  pinned before the skipping kernel existed, so they are the external
  anchor proving the skipper changed nothing).

Any change that alters simulated behaviour — timing, energy accounting,
trace generation, RNG — trips these tests. That is the point: future
performance work must prove it changed *nothing* observable, or update
the goldens (and bump ``SIMULATOR_VERSION_TAG``) deliberately.
"""

import hashlib
import json
from dataclasses import dataclass
from typing import Dict

import pytest

from repro.common.config import IssueSchemeConfig
from repro.common.stats import SimulationStats
from repro.experiments import IF_DISTR, IQ_64_64, MB_DISTR
from repro.experiments.parallel import simulate_matrix
from repro.experiments.runner import ExperimentRunner, RunScale, simulate_pair
from repro.experiments.store import ResultStore

BENCHMARK = "mesa"
SCALE = RunScale(num_instructions=2000, warmup_instructions=1000, seed=13)

LATFIFO_8x8_8x16 = IssueSchemeConfig(
    kind="latfifo", int_queues=8, int_queue_entries=8,
    fp_queues=8, fp_queue_entries=16,
)

SCHEMES: Dict[str, IssueSchemeConfig] = {
    "baseline": IQ_64_64,
    "issuefifo": IF_DISTR,
    "latfifo": LATFIFO_8x8_8x16,
    "mixbuff": MB_DISTR,
}


@dataclass(frozen=True)
class GoldenRun:
    cycles: int
    committed_instructions: int
    dispatch_stall_cycles: int
    branch_mispredictions: int
    energy_events: Dict[str, int]
    sha256: str


# Pinned from the run that produced this revision. Regenerate with:
#   PYTHONPATH=src python -m tests.test_golden_stats
GOLDEN: Dict[str, GoldenRun] = {
    "baseline": GoldenRun(
        cycles=181, committed_instructions=994,
        dispatch_stall_cycles=0, branch_mispredictions=7,
        energy_events={"iq_buff_read": 889, "mux_fp_mul": 189,
                       "iq_wakeup_comparisons": 10804},
        sha256="a1379748ecbc981348ff18783b05478450194dcca213fbb490556546d9cf2b4b",
    ),
    "issuefifo": GoldenRun(
        cycles=244, committed_instructions=995,
        dispatch_stall_cycles=100, branch_mispredictions=7,
        energy_events={"fifo_read": 913, "mux_fp_mul": 196},
        sha256="208ef961d733127e9a7d862269b0f6ba22678e8ed67909487f6cdb1b1d5c5a46",
    ),
    "latfifo": GoldenRun(
        cycles=186, committed_instructions=995,
        dispatch_stall_cycles=22, branch_mispredictions=7,
        energy_events={"fifo_read": 864, "mux_fp_mul": 190},
        sha256="9ada57462e43b03dd53c69c354bc8a7a674106e034e9f67d5bedd9c6e6ab2e38",
    ),
    "mixbuff": GoldenRun(
        cycles=230, committed_instructions=994,
        dispatch_stall_cycles=74, branch_mispredictions=7,
        energy_events={"fifo_read": 444, "chains_read": 1474, "mux_fp_mul": 188},
        sha256="9af8ca647643aa49d9182e70ad448e74747ae77ab2eadb96c407a6f4ac727980",
    ),
}


def stats_digest(stats: SimulationStats) -> str:
    """Canonical SHA-256 over every field and every event counter."""
    payload = json.dumps(stats.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def check_golden(name: str, stats: SimulationStats) -> None:
    golden = GOLDEN[name]
    assert stats.cycles == golden.cycles, name
    assert stats.committed_instructions == golden.committed_instructions, name
    assert stats.dispatch_stall_cycles == golden.dispatch_stall_cycles, name
    assert stats.branch_mispredictions == golden.branch_mispredictions, name
    events = stats.events.as_dict()
    for event, count in golden.energy_events.items():
        assert events.get(event) == count, f"{name}: {event}"
    assert stats_digest(stats) == golden.sha256, name


@pytest.fixture(scope="module")
def serial_stats() -> Dict[str, SimulationStats]:
    runner = ExperimentRunner(SCALE, store=False)
    return {name: runner.run(BENCHMARK, scheme) for name, scheme in SCHEMES.items()}


class TestSerialPath:
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_matches_golden(self, serial_stats, name):
        check_golden(name, serial_stats[name])

    def test_schemes_actually_differ(self, serial_stats):
        # Sanity: the pinned runs are not degenerate copies of each other.
        assert len({stats_digest(s) for s in serial_stats.values()}) == len(SCHEMES)


class TestKernelPaths:
    """Every simulation kernel must land exactly on the pinned goldens."""

    @pytest.mark.parametrize(
        "kernel", ("naive", "skip", "vectorized", "specialized")
    )
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_kernel_matches_golden(self, name, kernel):
        stats, __ = simulate_pair(BENCHMARK, SCHEMES[name], SCALE, kernel=kernel)
        check_golden(name, stats)


class TestParallelPath:
    def test_two_workers_bit_identical_to_serial(self, serial_stats):
        pairs = [(BENCHMARK, scheme) for scheme in SCHEMES.values()]
        parallel = simulate_matrix(pairs, SCALE, workers=2)
        for name, stats in zip(SCHEMES, parallel):
            assert stats == serial_stats[name], name
            check_golden(name, stats)

    def test_run_many_with_pool_matches_golden(self):
        runner = ExperimentRunner(SCALE, store=False, workers=2)
        pairs = [(BENCHMARK, scheme) for scheme in SCHEMES.values()]
        results = runner.run_many(pairs)
        for name, stats in zip(SCHEMES, results):
            check_golden(name, stats)
        assert runner.cache_stats()["simulations"] == len(SCHEMES)


class TestDiskCachePath:
    def test_cache_hit_bit_identical(self, serial_stats, tmp_path):
        store = ResultStore(tmp_path)
        writer = ExperimentRunner(SCALE, store=store)
        for scheme in SCHEMES.values():
            writer.run(BENCHMARK, scheme)
        # A fresh runner sharing only the directory must replay every
        # result from disk, byte-for-byte, without simulating.
        reader = ExperimentRunner(SCALE, store=store)
        for name, scheme in SCHEMES.items():
            stats = reader.run(BENCHMARK, scheme)
            assert stats == serial_stats[name], name
            check_golden(name, stats)
        telemetry = reader.cache_stats()
        assert telemetry["simulations"] == 0
        assert telemetry["disk_hits"] == len(SCHEMES)


def _regenerate() -> None:  # pragma: no cover
    """Print a fresh GOLDEN table (for deliberate golden updates)."""
    runner = ExperimentRunner(SCALE, store=False)
    for name, scheme in SCHEMES.items():
        stats = runner.run(BENCHMARK, scheme)
        events = stats.events.as_dict()
        pinned = {e: events[e] for e in GOLDEN[name].energy_events if e in events}
        print(f'    "{name}": GoldenRun(')
        print(f"        cycles={stats.cycles}, "
              f"committed_instructions={stats.committed_instructions},")
        print(f"        dispatch_stall_cycles={stats.dispatch_stall_cycles}, "
              f"branch_mispredictions={stats.branch_mispredictions},")
        print(f"        energy_events={pinned},")
        print(f'        sha256="{stats_digest(stats)}",')
        print("    ),")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
