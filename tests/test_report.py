"""Tests for the plain-text figure renderers."""

from repro.experiments.report import render_breakdown, render_series, render_table


class TestRenderSeries:
    def test_one_line_per_entry_with_unit(self):
        text = render_series("T", {"a": 1.0, "bb": -2.5})
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3
        assert lines[1].endswith("%")
        assert "-2.50%" in lines[2]

    def test_labels_aligned_to_widest(self):
        text = render_series("T", {"x": 1.0, "longer": 2.0})
        lines = text.splitlines()[1:]
        # Labels pad to the widest name and values are fixed-width, so
        # every line ends at the same column.
        assert len({len(line) for line in lines}) == 1
        assert lines[0].startswith("  x     ")

    def test_empty_series_renders_title_only(self):
        assert render_series("Just the title", {}) == "Just the title"

    def test_custom_unit(self):
        text = render_series("T", {"a": 3.0}, unit=" pts")
        assert text.splitlines()[1].endswith(" pts")


class TestRenderTable:
    def test_header_row_and_cells(self):
        table = {"c1": {"r1": 1.5, "r2": 2.0}, "c2": {"r1": 3.0, "r2": 4.0}}
        lines = render_table("T", table).splitlines()
        assert lines[0] == "T"
        assert "c1" in lines[1] and "c2" in lines[1]
        assert lines[2].lstrip().startswith("r1")
        assert "1.500" in lines[2] and "3.000" in lines[2]

    def test_sparse_cells_render_blank(self):
        # r2 exists only in c1: the c2 cell must be blank, not crash.
        table = {"c1": {"r1": 1.0, "r2": 2.0}, "c2": {"r1": 3.0}}
        lines = render_table("T", table).splitlines()
        r2_line = next(line for line in lines if "r2" in line)
        assert "2.000" in r2_line
        assert "3.000" not in r2_line
        assert r2_line.rstrip().endswith("2.000")

    def test_row_union_preserves_first_seen_order(self):
        table = {"c1": {"r1": 1.0}, "c2": {"r2": 2.0, "r1": 3.0}}
        lines = render_table("T", table).splitlines()
        assert lines[2].lstrip().startswith("r1")
        assert lines[3].lstrip().startswith("r2")

    def test_empty_table_renders_title_and_empty_header(self):
        lines = render_table("T", {}).splitlines()
        assert lines[0] == "T"
        assert len(lines) == 2  # header line only, no rows

    def test_custom_value_format(self):
        table = {"c": {"r": 0.123456}}
        text = render_table("T", table, value_format="{:7.1f}")
        assert "0.1" in text
        assert "0.123" not in text


class TestRenderBreakdown:
    def test_components_sorted_by_descending_fraction(self):
        breakdown = {"SPECINT": {"small": 0.1, "big": 0.7, "mid": 0.2}}
        lines = render_breakdown("T", breakdown).splitlines()
        components = [line.split()[0] for line in lines[2:]]
        assert components == ["big", "mid", "small"]

    def test_fractions_render_as_percent(self):
        text = render_breakdown("T", {"S": {"x": 0.255}})
        assert " 25.5%" in text

    def test_multiple_suites_each_get_a_section(self):
        text = render_breakdown(
            "T", {"SPECINT": {"x": 1.0}, "SPECFP": {"y": 1.0}}
        )
        assert "SPECINT:" in text and "SPECFP:" in text

    def test_empty_breakdown_renders_title_only(self):
        assert render_breakdown("T", {}) == "T"

    def test_empty_suite_renders_header_only(self):
        lines = render_breakdown("T", {"S": {}}).splitlines()
        assert lines == ["T", "  S:"]
