"""Unit tests for rename, scoreboard, ROB, LSQ and functional units."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import FunctionalUnitConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.core.functional_units import DistributedFuPool, PooledFuPool
from repro.core.lsq import LoadStoreQueue
from repro.core.rename import RenameMap
from repro.core.rob import ReorderBuffer
from repro.core.scoreboard import Scoreboard
from repro.core.uop import InFlight
from repro.isa.opcodes import FuType, OpClass

from tests.util import alu, f, load, r, store


def make_uop(inst, seq_age=None, src_phys=(), dest_phys=None):
    return InFlight(
        inst,
        src_phys=list(src_phys),
        dest_phys=dest_phys,
        prev_phys=None,
        rob_index=0,
        age=seq_age if seq_age is not None else inst.seq,
        dispatch_cycle=0,
    )


class TestRenameMap:
    def make(self):
        return RenameMap(32, 32, 160, 160)

    def test_initial_identity_mapping(self):
        rm = self.make()
        assert rm.lookup(r(5)) == 5
        assert rm.lookup(f(5)) == 5

    def test_rename_allocates_new_physical(self):
        rm = self.make()
        result = rm.rename([r(1)], r(2))
        assert result["src_phys"] == [(False, 1)]
        assert result["dest_phys"] == (False, 32)  # first free
        assert result["prev_phys"] == (False, 2)

    def test_free_count_decreases_then_recovers(self):
        rm = self.make()
        assert rm.free_registers(False) == 128
        result = rm.rename([], r(1))
        assert rm.free_registers(False) == 127
        rm.release(result["prev_phys"])
        assert rm.free_registers(False) == 128

    def test_exhaustion(self):
        rm = self.make()
        for __ in range(128):
            assert rm.can_rename(r(1))
            rm.rename([], r(1))
        assert not rm.can_rename(r(1))
        with pytest.raises(SimulationError):
            rm.rename([], r(1))

    def test_classes_are_independent(self):
        rm = self.make()
        rm.rename([], r(1))
        assert rm.free_registers(True) == 128

    def test_double_free_rejected(self):
        rm = self.make()
        result = rm.rename([], r(1))
        rm.release(result["prev_phys"])
        with pytest.raises(SimulationError):
            rm.release(result["prev_phys"])

    def test_consumer_sees_latest_mapping(self):
        rm = self.make()
        first = rm.rename([], r(1))
        renamed = rm.rename([r(1)], r(2))
        assert renamed["src_phys"] == [first["dest_phys"]]

    @given(st.lists(st.integers(0, 31), max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_registers_conserved(self, dests):
        rm = self.make()
        freed = 0
        allocated = 0
        for dest in dests:
            if not rm.can_rename(r(dest)):
                break
            result = rm.rename([], r(dest))
            allocated += 1
            rm.release(result["prev_phys"])
            freed += 1
        assert rm.free_registers(False) == 128 - allocated + freed


class TestScoreboard:
    def test_initial_architectural_state_ready(self):
        sb = Scoreboard(160, 160, 32, 32)
        assert sb.is_ready((False, 0), 0)
        assert sb.is_ready((True, 31), 0)
        assert not sb.is_ready((False, 32), 0)

    def test_set_ready_cycle(self):
        sb = Scoreboard(160, 160, 32, 32)
        sb.set_ready((False, 40), 17)
        assert not sb.is_ready((False, 40), 16)
        assert sb.is_ready((False, 40), 17)

    def test_mark_pending_clears_readiness(self):
        sb = Scoreboard(160, 160, 32, 32)
        sb.mark_pending((False, 3))
        assert not sb.is_ready((False, 3), 1000)
        assert not sb.is_scheduled((False, 3))

    def test_all_ready_and_operands_ready_cycle(self):
        sb = Scoreboard(160, 160, 32, 32)
        sb.set_ready((False, 40), 5)
        sb.set_ready((True, 50), 9)
        operands = [(False, 40), (True, 50)]
        assert sb.operands_ready_cycle(operands) == 9
        assert not sb.all_ready(operands, 8)
        assert sb.all_ready(operands, 9)


class TestReorderBuffer:
    def test_commit_in_order_only(self):
        rob = ReorderBuffer(8)
        a = make_uop(alu(0, r(1)), rob.allocate_age())
        b = make_uop(alu(1, r(2)), rob.allocate_age())
        rob.push(a)
        rob.push(b)
        b.complete_cycle = 1  # younger done first
        assert rob.commit_ready(5, 4) == []
        a.complete_cycle = 3
        assert rob.commit_ready(5, 4) == [a, b]

    def test_commit_width_respected(self):
        rob = ReorderBuffer(8)
        uops = []
        for i in range(4):
            uop = make_uop(alu(i, r(1)), rob.allocate_age())
            uop.complete_cycle = 0
            rob.push(uop)
            uops.append(uop)
        assert rob.commit_ready(1, 2) == uops[:2]
        assert rob.commit_ready(1, 2) == uops[2:]

    def test_future_completion_not_committed(self):
        rob = ReorderBuffer(4)
        uop = make_uop(alu(0, r(1)), rob.allocate_age())
        uop.complete_cycle = 10
        rob.push(uop)
        assert rob.commit_ready(9, 8) == []
        assert rob.commit_ready(10, 8) == [uop]

    def test_overflow_rejected(self):
        rob = ReorderBuffer(1)
        rob.push(make_uop(alu(0, r(1)), rob.allocate_age()))
        assert rob.full
        with pytest.raises(SimulationError):
            rob.push(make_uop(alu(1, r(2)), rob.allocate_age()))

    def test_out_of_age_order_rejected(self):
        rob = ReorderBuffer(4)
        second = make_uop(alu(1, r(1)), 5)
        first = make_uop(alu(0, r(1)), 3)
        rob.push(second)
        with pytest.raises(SimulationError):
            rob.push(first)

    def test_rollback_age_reissues_same_age(self):
        rob = ReorderBuffer(4)
        age = rob.allocate_age()
        rob.rollback_age()
        assert rob.allocate_age() == age

    def test_repeated_placement_failure_keeps_ages_dense(self):
        # Dispatch allocates an age, the issue scheme refuses placement,
        # dispatch rolls back and retries next cycle — many times in a
        # row. The instruction must get the same age on every retry, and
        # the ROB must still accept the eventual push.
        rob = ReorderBuffer(4)
        rob.push(make_uop(alu(0, r(1)), rob.allocate_age()))
        ages = set()
        for _ in range(5):  # five consecutive failed placements
            ages.add(rob.allocate_age())
            rob.rollback_age()
        assert ages == {1}
        rob.push(make_uop(alu(1, r(2)), rob.allocate_age()))
        assert [uop.age for uop in rob] == [0, 1]

    def test_rollback_without_allocation_rejected(self):
        rob = ReorderBuffer(4)
        with pytest.raises(SimulationError):
            rob.rollback_age()

    def test_rollback_of_pushed_age_rejected(self):
        rob = ReorderBuffer(4)
        rob.push(make_uop(alu(0, r(1)), rob.allocate_age()))
        with pytest.raises(SimulationError):
            rob.rollback_age()


class TestLoadStoreQueue:
    def test_load_waits_for_older_store_issue(self):
        lsq = LoadStoreQueue()
        st_uop = make_uop(store(0, r(1), 0x100))
        lsq.add_store(st_uop)
        assert not lsq.can_issue_load(1)
        lsq.store_issued(st_uop, addr_known_cycle=5)
        assert lsq.can_issue_load(1)

    def test_younger_store_does_not_gate(self):
        lsq = LoadStoreQueue()
        st_uop = make_uop(store(5, r(1), 0x100))
        lsq.add_store(st_uop)
        assert lsq.can_issue_load(3)

    def test_conflict_delays_access(self):
        lsq = LoadStoreQueue()
        st_uop = make_uop(store(0, r(1), 0x100))
        lsq.add_store(st_uop)
        lsq.store_issued(st_uop, addr_known_cycle=20)
        ld = make_uop(load(1, r(2), 0x900))
        start, fwd = lsq.load_access_constraints(ld, addr_ready_cycle=5)
        assert start == 20  # waits for the store address
        assert fwd is None  # different address: no forwarding

    def test_forwarding_from_matching_store(self):
        lsq = LoadStoreQueue()
        st_uop = make_uop(store(0, r(1), 0x100))
        lsq.add_store(st_uop)
        lsq.store_issued(st_uop, addr_known_cycle=3)
        ld = make_uop(load(1, r(2), 0x100))
        __, fwd = lsq.load_access_constraints(ld, addr_ready_cycle=5)
        assert fwd is st_uop
        assert lsq.forwarded_loads == 1

    def test_youngest_matching_store_wins(self):
        lsq = LoadStoreQueue()
        older = make_uop(store(0, r(1), 0x100))
        newer = make_uop(store(1, r(3), 0x100))
        for s in (older, newer):
            lsq.add_store(s)
            lsq.store_issued(s, addr_known_cycle=1)
        ld = make_uop(load(2, r(2), 0x100))
        __, fwd = lsq.load_access_constraints(ld, addr_ready_cycle=5)
        assert fwd is newer

    def test_retire_unknown_store_rejected(self):
        lsq = LoadStoreQueue()
        with pytest.raises(SimulationError):
            lsq.retire_store(make_uop(store(0, r(1), 0x100)))

    def test_blocked_on_unscheduled_store_data(self):
        lsq = LoadStoreQueue()
        sb = Scoreboard(160, 160, 32, 32)
        st_uop = make_uop(store(0, r(1), 0x100), src_phys=[(False, 40), (False, 0)])
        sb.mark_pending((False, 40))  # data producer not issued
        lsq.add_store(st_uop)
        lsq.store_issued(st_uop, addr_known_cycle=2)
        ld = make_uop(load(1, r(2), 0x100))
        assert lsq.load_blocked_on_store_data(ld, sb)
        sb.set_ready((False, 40), 9)
        assert not lsq.load_blocked_on_store_data(ld, sb)


class TestFunctionalUnits:
    def test_pooled_capacity_per_cycle(self):
        pool = PooledFuPool(FunctionalUnitConfig())
        granted = sum(
            pool.try_allocate(FuType.INT_ALU, OpClass.INT_ALU, 1, cycle=5, queue_index=None)
            for __ in range(10)
        )
        assert granted == 8  # Table 1: 8 integer ALUs

    def test_pipelined_unit_accepts_next_cycle(self):
        pool = PooledFuPool(FunctionalUnitConfig(int_alu_count=1))
        assert pool.try_allocate(FuType.INT_ALU, OpClass.INT_ALU, 1, 1, None)
        assert not pool.try_allocate(FuType.INT_ALU, OpClass.INT_ALU, 1, 1, None)
        assert pool.try_allocate(FuType.INT_ALU, OpClass.INT_ALU, 1, 2, None)

    def test_divide_blocks_unit_for_full_latency(self):
        pool = PooledFuPool(FunctionalUnitConfig(int_muldiv_count=1))
        assert pool.try_allocate(FuType.INT_MULDIV, OpClass.INT_DIV, 20, 1, None)
        assert not pool.try_allocate(FuType.INT_MULDIV, OpClass.INT_MUL, 3, 10, None)
        assert pool.try_allocate(FuType.INT_MULDIV, OpClass.INT_MUL, 3, 21, None)

    def test_multiply_is_pipelined(self):
        pool = PooledFuPool(FunctionalUnitConfig(int_muldiv_count=1))
        assert pool.try_allocate(FuType.INT_MULDIV, OpClass.INT_MUL, 3, 1, None)
        assert pool.try_allocate(FuType.INT_MULDIV, OpClass.INT_MUL, 3, 2, None)

    def test_distributed_binding_per_queue(self):
        pool = DistributedFuPool(8, 8, FunctionalUnitConfig())
        assert pool.try_allocate(FuType.INT_ALU, OpClass.INT_ALU, 1, 1, queue_index=0)
        # Queue 0's ALU is busy this cycle; queue 1 has its own.
        assert not pool.try_allocate(FuType.INT_ALU, OpClass.INT_ALU, 1, 1, queue_index=0)
        assert pool.try_allocate(FuType.INT_ALU, OpClass.INT_ALU, 1, 1, queue_index=1)

    def test_distributed_muldiv_shared_per_pair(self):
        pool = DistributedFuPool(8, 8, FunctionalUnitConfig())
        assert pool.try_allocate(FuType.INT_MULDIV, OpClass.INT_MUL, 3, 1, queue_index=0)
        # Queues 0 and 1 share one mul/div unit.
        assert not pool.try_allocate(FuType.INT_MULDIV, OpClass.INT_MUL, 3, 1, queue_index=1)
        assert pool.try_allocate(FuType.INT_MULDIV, OpClass.INT_MUL, 3, 1, queue_index=2)

    def test_distributed_fp_units_per_pair(self):
        pool = DistributedFuPool(8, 8, FunctionalUnitConfig())
        assert len(pool.units_of(FuType.FP_ALU)) == 4
        assert len(pool.units_of(FuType.FP_MULDIV)) == 4
        assert len(pool.units_of(FuType.INT_ALU)) == 8

    def test_distributed_requires_queue_index(self):
        pool = DistributedFuPool(8, 8, FunctionalUnitConfig())
        with pytest.raises(ConfigurationError):
            pool.try_allocate(FuType.INT_ALU, OpClass.INT_ALU, 1, 1, None)

    def test_can_allocate_probe_is_non_destructive(self):
        pool = PooledFuPool(FunctionalUnitConfig(int_alu_count=1))
        assert pool.can_allocate(FuType.INT_ALU, 1)
        assert pool.can_allocate(FuType.INT_ALU, 1)
        pool.try_allocate(FuType.INT_ALU, OpClass.INT_ALU, 1, 1, None)
        assert not pool.can_allocate(FuType.INT_ALU, 1)


class TestInFlight:
    def test_store_issue_srcs_exclude_data(self):
        uop = make_uop(store(0, r(1), 0x100, [r(2)]),
                       src_phys=[(False, 1), (False, 2)])
        assert uop.issue_srcs == [(False, 2)]

    def test_load_issue_srcs_include_all(self):
        uop = make_uop(load(0, r(1), 0x100, [r(2)]), src_phys=[(False, 2)])
        assert uop.issue_srcs == [(False, 2)]

    def test_state_flags(self):
        uop = make_uop(alu(0, r(1)))
        assert not uop.issued and not uop.completed
        uop.issue_cycle = 4
        uop.complete_cycle = 5
        assert uop.issued and uop.completed
