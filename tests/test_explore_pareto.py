"""Tests for Pareto dominance, frontier extraction and refinement."""

from repro.explore.pareto import dominates, pair_fronts, pareto_front, refine
from repro.explore.objectives import PointScore
from repro.explore.space import default_space


def fake_score(space, objectives, benchmark="gzip", **assignment):
    base = {
        "kind": "issuefifo",
        "int_queues": 8,
        "int_entries": 8,
        "fp_queues": 8,
        "fp_entries": 16,
        "distributed_fus": False,
        "max_chains": None,
        "issue_width": 8,
        "rob_entries": 256,
        "benchmark": benchmark,
    }
    base.update(assignment)
    point = space.build_point(base)
    return PointScore(point=point, ipc=1.0, baseline_ipc=1.0, objectives=objectives)


KEYS = ("a", "b")


class TestDominance:
    def test_strictly_better_on_one_axis_dominates(self):
        assert dominates({"a": 1, "b": 2}, {"a": 1, "b": 3}, KEYS)

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates({"a": 1, "b": 2}, {"a": 1, "b": 2}, KEYS)

    def test_tradeoff_points_do_not_dominate(self):
        assert not dominates({"a": 0, "b": 3}, {"a": 1, "b": 2}, KEYS)
        assert not dominates({"a": 1, "b": 2}, {"a": 0, "b": 3}, KEYS)


class TestFrontier:
    def test_front_keeps_tradeoffs_drops_dominated(self):
        space = default_space(["gzip"])
        good_a = fake_score(space, {"a": 0.0, "b": 3.0}, int_queues=4)
        good_b = fake_score(space, {"a": 3.0, "b": 0.0}, int_queues=8)
        dominated = fake_score(space, {"a": 4.0, "b": 4.0}, int_queues=12)
        front = pareto_front([good_a, dominated, good_b], KEYS)
        assert front == [good_a, good_b]

    def test_duplicate_vectors_are_all_kept(self):
        space = default_space(["gzip"])
        twin_a = fake_score(space, {"a": 1.0, "b": 1.0}, int_queues=4)
        twin_b = fake_score(space, {"a": 1.0, "b": 1.0}, int_queues=8)
        assert pareto_front([twin_a, twin_b], KEYS) == [twin_a, twin_b]

    def test_empty_input_gives_empty_front(self):
        assert pareto_front([], KEYS) == []

    def test_pair_fronts_cover_every_pair_nonempty(self):
        space = default_space(["gzip"])
        keys = ("a", "b", "c")
        scores = [
            fake_score(space, {"a": 0.0, "b": 2.0, "c": 1.0}, int_queues=4),
            fake_score(space, {"a": 2.0, "b": 0.0, "c": 2.0}, int_queues=8),
        ]
        fronts = pair_fronts(scores, keys)
        assert set(fronts) == {"a|b", "a|c", "b|c"}
        assert all(front for front in fronts.values())


class TestRefine:
    def test_refinement_only_submits_fresh_points(self):
        space = default_space(["gzip"])
        seen = set()

        def evaluate(points):
            for point in points:
                assert point.point_id not in seen, "re-submitted a known point"
                seen.add(point.point_id)
            return [
                PointScore(
                    point=point,
                    ipc=1.0,
                    baseline_ipc=1.0,
                    objectives={k: 1.0 for k in KEYS},
                )
                for point in points
            ]

        initial = [fake_score(space, {"a": 0.0, "b": 0.0})]
        seen.add(initial[0].point.point_id)
        scores, log = refine(space, evaluate, initial, rounds=2,
                             per_point=3, seed=5, keys=KEYS)
        assert len(log) == 2
        assert log[0]["evaluated"] > 0
        assert len(scores) == log[-1]["total_points"]

    def test_zero_rounds_is_identity(self):
        space = default_space(["gzip"])
        initial = [fake_score(space, {"a": 0.0, "b": 0.0})]
        scores, log = refine(space, lambda pts: [], initial, rounds=0,
                             per_point=3, seed=5, keys=KEYS)
        assert scores == initial
        assert log == []

    def test_refinement_is_deterministic_in_seed(self):
        space = default_space(["gzip"])

        def evaluate(points):
            return [
                PointScore(point=p, ipc=1.0, baseline_ipc=1.0,
                           objectives={k: 2.0 for k in KEYS})
                for p in points
            ]

        initial = [fake_score(space, {"a": 0.0, "b": 0.0})]
        first, _ = refine(space, evaluate, initial, 1, 3, seed=9, keys=KEYS)
        second, _ = refine(space, evaluate, initial, 1, 3, seed=9, keys=KEYS)
        assert [s.point.point_id for s in first] == [
            s.point.point_id for s in second
        ]
