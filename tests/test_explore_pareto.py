"""Tests for Pareto dominance, frontier extraction and refinement."""

import random

import pytest

from repro.explore.objectives import PointScore
from repro.explore.pareto import (
    crowding_distances,
    crowding_select,
    dominates,
    epsilon_front,
    fold_frontier,
    pair_fronts,
    pareto_front,
    refine,
)
from repro.explore.space import default_space


def fake_score(space, objectives, benchmark="gzip", **assignment):
    base = {
        "kind": "issuefifo",
        "int_queues": 8,
        "int_entries": 8,
        "fp_queues": 8,
        "fp_entries": 16,
        "distributed_fus": False,
        "max_chains": None,
        "issue_width": 8,
        "rob_entries": 256,
        "benchmark": benchmark,
    }
    base.update(assignment)
    point = space.build_point(base)
    return PointScore(point=point, ipc=1.0, baseline_ipc=1.0, objectives=objectives)


KEYS = ("a", "b")


class TestDominance:
    def test_strictly_better_on_one_axis_dominates(self):
        assert dominates({"a": 1, "b": 2}, {"a": 1, "b": 3}, KEYS)

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates({"a": 1, "b": 2}, {"a": 1, "b": 2}, KEYS)

    def test_tradeoff_points_do_not_dominate(self):
        assert not dominates({"a": 0, "b": 3}, {"a": 1, "b": 2}, KEYS)
        assert not dominates({"a": 1, "b": 2}, {"a": 0, "b": 3}, KEYS)


class TestFrontier:
    def test_front_keeps_tradeoffs_drops_dominated(self):
        space = default_space(["gzip"])
        good_a = fake_score(space, {"a": 0.0, "b": 3.0}, int_queues=4)
        good_b = fake_score(space, {"a": 3.0, "b": 0.0}, int_queues=8)
        dominated = fake_score(space, {"a": 4.0, "b": 4.0}, int_queues=12)
        front = pareto_front([good_a, dominated, good_b], KEYS)
        assert front == [good_a, good_b]

    def test_duplicate_vectors_are_all_kept(self):
        space = default_space(["gzip"])
        twin_a = fake_score(space, {"a": 1.0, "b": 1.0}, int_queues=4)
        twin_b = fake_score(space, {"a": 1.0, "b": 1.0}, int_queues=8)
        assert pareto_front([twin_a, twin_b], KEYS) == [twin_a, twin_b]

    def test_empty_input_gives_empty_front(self):
        assert pareto_front([], KEYS) == []

    def test_pair_fronts_cover_every_pair_nonempty(self):
        space = default_space(["gzip"])
        keys = ("a", "b", "c")
        scores = [
            fake_score(space, {"a": 0.0, "b": 2.0, "c": 1.0}, int_queues=4),
            fake_score(space, {"a": 2.0, "b": 0.0, "c": 2.0}, int_queues=8),
        ]
        fronts = pair_fronts(scores, keys)
        assert set(fronts) == {"a|b", "a|c", "b|c"}
        assert all(front for front in fronts.values())


class TestRefine:
    def test_refinement_only_submits_fresh_points(self):
        space = default_space(["gzip"])
        seen = set()

        def evaluate(points):
            for point in points:
                assert point.point_id not in seen, "re-submitted a known point"
                seen.add(point.point_id)
            return [
                PointScore(
                    point=point,
                    ipc=1.0,
                    baseline_ipc=1.0,
                    objectives={k: 1.0 for k in KEYS},
                )
                for point in points
            ]

        initial = [fake_score(space, {"a": 0.0, "b": 0.0})]
        seen.add(initial[0].point.point_id)
        scores, log, frontier = refine(space, evaluate, initial, rounds=2,
                                       per_point=3, seed=5, keys=KEYS)
        assert len(log) == 2
        assert log[0]["evaluated"] > 0
        assert len(scores) == log[-1]["total_points"]
        # The incrementally maintained frontier matches the naive scan.
        assert [id(s) for s in frontier] == [
            id(s) for s in pareto_front(scores, KEYS)
        ]

    def test_zero_rounds_is_identity(self):
        space = default_space(["gzip"])
        initial = [fake_score(space, {"a": 0.0, "b": 0.0})]
        scores, log, frontier = refine(space, lambda pts: [], initial, rounds=0,
                                       per_point=3, seed=5, keys=KEYS)
        assert scores == initial
        assert log == []
        assert frontier == pareto_front(initial, KEYS)

    def test_refinement_is_deterministic_in_seed(self):
        space = default_space(["gzip"])

        def evaluate(points):
            return [
                PointScore(point=p, ipc=1.0, baseline_ipc=1.0,
                           objectives={k: 2.0 for k in KEYS})
                for p in points
            ]

        initial = [fake_score(space, {"a": 0.0, "b": 0.0})]
        first, _, __ = refine(space, evaluate, initial, 1, 3, seed=9, keys=KEYS)
        second, _, __ = refine(space, evaluate, initial, 1, 3, seed=9, keys=KEYS)
        assert [s.point.point_id for s in first] == [
            s.point.point_id for s in second
        ]

    def test_default_log_shape_is_unchanged(self):
        space = default_space(["gzip"])
        initial = [fake_score(space, {"a": 0.0, "b": 0.0})]
        _, log, __ = refine(space, lambda pts: [], initial, rounds=1,
                            per_point=2, seed=5, keys=KEYS)
        # Artifact schema freeze: no new telemetry keys unless the
        # diversity knobs are switched on.
        assert set(log[0]) == {
            "round", "frontier_size", "candidates", "evaluated", "total_points",
        }

    def test_diversity_knobs_add_expansion_telemetry(self):
        space = default_space(["gzip"])
        initial = [
            fake_score(space, {"a": 0.0, "b": 3.0}, int_queues=4),
            fake_score(space, {"a": 3.0, "b": 0.0}, int_queues=8),
            fake_score(space, {"a": 1.0, "b": 1.0}, int_queues=12),
        ]
        _, log, __ = refine(space, lambda pts: [], initial, rounds=1,
                            per_point=2, seed=5, keys=KEYS,
                            epsilon=0.1, frontier_budget=2)
        assert log[0]["frontier_size"] == 3
        assert log[0]["expanded"] == 2

    def test_budget_limits_neighbourhood_expansion_deterministically(self):
        space = default_space(["gzip"])
        initial = [
            fake_score(space, {"a": float(i), "b": 9.0 - float(i)},
                       int_queues=4 * (1 + i % 4), issue_width=4 + 4 * (i % 2))
            for i in range(8)
        ]

        def evaluate(points):
            return [
                PointScore(point=p, ipc=1.0, baseline_ipc=1.0,
                           objectives={"a": 50.0, "b": 50.0})
                for p in points
            ]

        first, log1, __ = refine(space, evaluate, initial, 2, 2, seed=3,
                                 keys=KEYS, frontier_budget=3)
        second, log2, __ = refine(space, evaluate, initial, 2, 2, seed=3,
                                  keys=KEYS, frontier_budget=3)
        assert [s.point.point_id for s in first] == [
            s.point.point_id for s in second
        ]
        assert log1 == log2
        for entry in log1:
            assert entry["expanded"] <= 3
            # each expanded point contributes at most per_point variants
            assert entry["candidates"] <= entry["expanded"] * 2


def vector_scores(vectors, keys):
    """PointScores sharing one design point (frontier code only reads
    objectives and object identity)."""
    space = default_space(["gzip"])
    point = space.build_point({"kind": "issuefifo", "benchmark": "gzip"})
    return [
        PointScore(point=point, ipc=1.0, baseline_ipc=1.0,
                   objectives=dict(zip(keys, vector)))
        for vector in vectors
    ]


class TestFoldFrontier:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_differential_against_naive_scan(self, seed):
        rng = random.Random(seed)
        keys = ("a", "b", "c")[: 2 + seed % 2]
        # Coarse grid values make ties and dominations frequent.
        scores = vector_scores(
            [
                tuple(rng.randrange(6) for _ in keys)
                for _ in range(rng.randrange(30, 80))
            ],
            keys,
        )
        accumulated = []
        frontier = []
        while scores:
            size = rng.randrange(1, 9)
            batch, scores = scores[:size], scores[size:]
            accumulated.extend(batch)
            frontier = fold_frontier(frontier, batch, keys)
            naive = pareto_front(accumulated, keys)
            assert [id(s) for s in frontier] == [id(s) for s in naive]

    def test_fold_into_empty_frontier(self):
        scores = vector_scores([(1.0, 2.0), (2.0, 1.0), (3.0, 3.0)], KEYS)
        assert fold_frontier([], scores, KEYS) == pareto_front(scores, KEYS)

    def test_duplicates_survive_folding(self):
        twins = vector_scores([(1.0, 1.0), (1.0, 1.0)], KEYS)
        assert fold_frontier([twins[0]], [twins[1]], KEYS) == twins


class TestEpsilonFront:
    def test_near_duplicates_are_thinned_first_kept(self):
        scores = vector_scores(
            [(0.0, 10.0), (0.4, 9.8), (5.0, 5.0), (10.0, 0.0)], KEYS
        )
        thinned = epsilon_front(scores, 0.1, KEYS)
        assert thinned == [scores[0], scores[2], scores[3]]

    def test_zero_epsilon_keeps_tradeoffs_drops_exact_ties(self):
        distinct = vector_scores([(0.0, 2.0), (1.0, 1.0), (2.0, 0.0)], KEYS)
        assert epsilon_front(distinct, 0.0, KEYS) == distinct
        twins = vector_scores([(1.0, 1.0), (1.0, 1.0)], KEYS)
        assert epsilon_front(twins, 0.0, KEYS) == twins[:1]

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            epsilon_front([], -0.1, KEYS)

    def test_empty_input(self):
        assert epsilon_front([], 0.5, KEYS) == []


class TestCrowdingSelection:
    FRONT = [(0.0, 10.0), (1.0, 8.9), (1.1, 8.8), (5.0, 5.0), (10.0, 0.0)]

    def test_extremes_always_survive(self):
        scores = vector_scores(self.FRONT, KEYS)
        chosen = crowding_select(scores, 3, KEYS)
        assert scores[0] in chosen and scores[-1] in chosen
        assert len(chosen) == 3

    def test_dense_cluster_is_dropped_first(self):
        scores = vector_scores(self.FRONT, KEYS)
        chosen = crowding_select(scores, 4, KEYS)
        # (1.0, 8.9) and (1.1, 8.8) crowd each other; only one survives.
        assert sum(1 for s in chosen if s in scores[1:3]) == 1

    def test_selection_preserves_input_order(self):
        scores = vector_scores(self.FRONT, KEYS)
        chosen = crowding_select(scores, 4, KEYS)
        indexes = [scores.index(s) for s in chosen]
        assert indexes == sorted(indexes)

    def test_budget_covering_everything_is_identity(self):
        scores = vector_scores(self.FRONT, KEYS)
        assert crowding_select(scores, len(scores), KEYS) == scores

    def test_tiny_fronts_are_all_infinite_distance(self):
        scores = vector_scores([(1.0, 2.0), (2.0, 1.0)], KEYS)
        assert crowding_distances(scores, KEYS) == [float("inf")] * 2

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            crowding_select([], 0, KEYS)


class TestOrderInvariance:
    """Frontier thinning must be a property of the point set, never of
    the order scores happen to arrive in (dict iteration, parallel
    completion order, ...)."""

    def distinct_scores(self, vectors):
        space = default_space(["gzip"])
        variants = [
            {"int_queues": 4},
            {"int_queues": 8},
            {"int_queues": 12},
            {"int_queues": 16},
            {"int_queues": 4, "rob_entries": 128},
            {"int_queues": 8, "rob_entries": 128},
        ]
        return [
            fake_score(space, dict(zip(KEYS, vector)), **variant)
            for vector, variant in zip(vectors, variants)
        ]

    @pytest.mark.parametrize("seed", range(5))
    def test_epsilon_front_kept_set_survives_permutation(self, seed):
        scores = self.distinct_scores(
            [(0.0, 10.0), (0.2, 9.9), (5.0, 5.0), (5.2, 4.9), (10.0, 0.0)]
        )
        baseline = {s.point.point_id for s in epsilon_front(scores, 0.1, KEYS)}
        shuffled = scores[:]
        random.Random(seed).shuffle(shuffled)
        permuted = epsilon_front(shuffled, 0.1, KEYS)
        assert {s.point.point_id for s in permuted} == baseline
        # Survivors still come back in the caller's input order.
        indexes = [shuffled.index(s) for s in permuted]
        assert indexes == sorted(indexes)

    def test_zero_epsilon_tie_representative_is_canonical(self):
        space = default_space(["gzip"])
        twin_a = fake_score(space, {"a": 1.0, "b": 1.0}, int_queues=4)
        twin_b = fake_score(space, {"a": 1.0, "b": 1.0}, int_queues=8)
        forward = epsilon_front([twin_a, twin_b], 0.0, KEYS)
        backward = epsilon_front([twin_b, twin_a], 0.0, KEYS)
        assert len(forward) == len(backward) == 1
        assert forward[0].point.point_id == backward[0].point.point_id

    @pytest.mark.parametrize("seed", range(5))
    def test_crowding_select_chosen_set_survives_permutation(self, seed):
        scores = self.distinct_scores(
            [(0.0, 10.0), (1.0, 8.9), (1.1, 8.8), (5.0, 5.0), (10.0, 0.0)]
        )
        baseline = {s.point.point_id for s in crowding_select(scores, 3, KEYS)}
        shuffled = scores[:]
        random.Random(seed).shuffle(shuffled)
        permuted = crowding_select(shuffled, 3, KEYS)
        assert {s.point.point_id for s in permuted} == baseline
        indexes = [shuffled.index(s) for s in permuted]
        assert indexes == sorted(indexes)
