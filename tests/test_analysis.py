"""Framework-level tests for ``repro.analysis``: suppression handling,
result caching, baselines, and the CLI contract."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import AnalysisCache, run_analysis
from repro.analysis.__main__ import main
from repro.analysis.engine import load_baseline, write_baseline
from repro.analysis.rules.determinism import DeterminismRule

BAD_CLOCK = "# repro-fixture-module: repro.core.clocky\nimport time\n\n\ndef now():\n    return time.time()\n"


def _write(tmp_path: Path, name: str, text: str) -> Path:
    path = tmp_path / name
    path.write_text(text)
    return path


def _analyze(tmp_path: Path, **kwargs):
    return run_analysis([tmp_path], base=tmp_path, **kwargs)


class TestSuppressions:
    def test_trailing_allow_silences_exactly_one_finding(self, tmp_path):
        # Two identical violations; only the allowed line is silenced.
        _write(
            tmp_path,
            "mod.py",
            "# repro-fixture-module: repro.core.clocky\n"
            "import time\n"
            "\n"
            "\n"
            "def now():\n"
            "    a = time.time()  # repro: allow[determinism]\n"
            "    b = time.time()\n"
            "    return a + b\n",
        )
        report = _analyze(tmp_path)
        assert len(report.findings) == 1
        assert report.findings[0].line == 7
        assert len(report.suppressed) == 1
        assert report.suppressed[0].line == 6

    def test_comment_above_binds_to_next_code_line(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            "# repro-fixture-module: repro.core.clocky\n"
            "import time\n"
            "\n"
            "\n"
            "def now():\n"
            "    # repro: allow[determinism]\n"
            "    return time.time()\n",
        )
        report = _analyze(tmp_path)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_unknown_rule_id_is_reported(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            "x = 1  # repro: allow[no-such-rule]\n",
        )
        report = _analyze(tmp_path)
        assert [f.rule for f in report.findings] == ["unknown-suppression"]
        assert "no-such-rule" in report.findings[0].message
        assert report.exit_code == 1

    def test_unused_suppression_is_reported(self, tmp_path):
        _write(
            tmp_path,
            "mod.py",
            "x = 1  # repro: allow[determinism]\n",
        )
        report = _analyze(tmp_path)
        assert [f.rule for f in report.findings] == ["unused-suppression"]
        assert report.exit_code == 1

    def test_suppression_does_not_leak_to_other_lines(self, tmp_path):
        # An allow on one line must not silence the same rule elsewhere,
        # and then counts as used only for its own line.
        _write(
            tmp_path,
            "mod.py",
            BAD_CLOCK.replace(
                "    return time.time()",
                "    return time.time()  # repro: allow[determinism]",
            )
            + "\n\ndef later():\n    return time.time()\n",
        )
        report = _analyze(tmp_path)
        assert [f.rule for f in report.findings] == ["determinism"]
        assert len(report.suppressed) == 1


class TestParseErrors:
    def test_syntax_error_becomes_finding(self, tmp_path):
        _write(tmp_path, "broken.py", "def oops(:\n")
        report = _analyze(tmp_path)
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.exit_code == 1


class TestCache:
    def test_warm_rerun_reanalyzes_nothing_and_report_is_byte_identical(
        self, tmp_path
    ):
        tree = tmp_path / "tree"
        tree.mkdir()
        _write(tree, "mod.py", BAD_CLOCK)
        cache = AnalysisCache(tmp_path / "cache")
        cold = run_analysis([tree], base=tree, cache=cache)
        assert cold.files_reanalyzed == 1
        warm = run_analysis([tree], base=tree, cache=AnalysisCache(tmp_path / "cache"))
        assert warm.files_reanalyzed == 0
        assert warm.to_json().encode() == cold.to_json().encode()
        assert [f.rule for f in warm.findings] == ["determinism"]

    def test_edited_file_is_reanalyzed(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        _write(tree, "a.py", BAD_CLOCK)
        _write(tree, "b.py", BAD_CLOCK.replace("clocky", "clocky2"))
        cache_dir = tmp_path / "cache"
        rules = [DeterminismRule()]  # per-file material: edits stay local
        run_analysis([tree], base=tree, cache=AnalysisCache(cache_dir), rules=rules)
        _write(tree, "b.py", BAD_CLOCK.replace("clocky", "clocky3"))
        after = run_analysis(
            [tree], base=tree, cache=AnalysisCache(cache_dir), rules=rules
        )
        assert after.files_reanalyzed == 1

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        _write(tree, "mod.py", BAD_CLOCK)
        cache_dir = tmp_path / "cache"
        run_analysis([tree], base=tree, cache=AnalysisCache(cache_dir))
        for entry in cache_dir.rglob("*.json"):
            entry.write_text("{not json")
        report = run_analysis([tree], base=tree, cache=AnalysisCache(cache_dir))
        assert report.files_reanalyzed == 1
        assert [f.rule for f in report.findings] == ["determinism"]

    def test_suppressions_apply_even_on_cache_hits(self, tmp_path):
        # Raw findings are cached; allows are re-read from current source.
        tree = tmp_path / "tree"
        tree.mkdir()
        mod = _write(tree, "mod.py", BAD_CLOCK)
        cache_dir = tmp_path / "cache"
        cold = run_analysis([tree], base=tree, cache=AnalysisCache(cache_dir))
        assert len(cold.findings) == 1
        # Cache entries are keyed on file bytes, so the edited file
        # re-analyzes — but the *unchanged* sibling's cached verdict must
        # still flow through suppression handling.
        sibling = _write(tree, "sib.py", BAD_CLOCK.replace("clocky", "clock2"))
        mid = run_analysis([tree], base=tree, cache=AnalysisCache(cache_dir))
        assert len(mid.findings) == 2
        sibling.write_text(
            sibling.read_text().replace(
                "    return time.time()",
                "    return time.time()  # repro: allow[determinism]",
            )
        )
        final = run_analysis([tree], base=tree, cache=AnalysisCache(cache_dir))
        assert mod.name in {Path(f.path).name for f in final.findings}
        assert len(final.findings) == 1
        assert len(final.suppressed) == 1


class TestBaseline:
    def test_baseline_filters_known_fingerprints(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        _write(tree, "mod.py", BAD_CLOCK)
        report = run_analysis([tree], base=tree)
        assert report.exit_code == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        rerun = run_analysis([tree], base=tree, baseline=load_baseline(baseline_path))
        assert rerun.findings == []
        assert len(rerun.baselined) == 1
        assert rerun.exit_code == 0


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "skip-safety",
            "determinism",
            "fingerprint-completeness",
            "version-tag-coverage",
            "checkpoint-cycle-free",
            "serve-async-hygiene",
        ):
            assert rule_id in out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path), "--rules", "bogus", "--no-cache"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_clean_and_dirty_exit_codes_and_json_report(self, tmp_path, capsys):
        clean = tmp_path / "clean"
        clean.mkdir()
        _write(clean, "ok.py", "# repro-fixture-module: repro.core.ok\nX = 1\n")
        assert main([str(clean), "--no-cache"]) == 0
        capsys.readouterr()

        dirty = tmp_path / "dirty"
        dirty.mkdir()
        _write(dirty, "mod.py", BAD_CLOCK)
        out_path = tmp_path / "report.json"
        assert (
            main([str(dirty), "--no-cache", "--out", str(out_path), "--format", "json"])
            == 1
        )
        stdout = capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload == json.loads(stdout)
        assert payload["schema"] == "repro-analysis-report-v1"
        assert [f["rule"] for f in payload["findings"]] == ["determinism"]

    def test_write_then_use_baseline_via_cli(self, tmp_path, capsys):
        dirty = tmp_path / "dirty"
        dirty.mkdir()
        _write(dirty, "mod.py", BAD_CLOCK)
        baseline = tmp_path / "baseline.json"
        assert main([str(dirty), "--no-cache", "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main([str(dirty), "--no-cache", "--baseline", str(baseline)]) == 0

    def test_cache_dir_flag_warm_rerun(self, tmp_path, capsys):
        tree = tmp_path / "tree"
        tree.mkdir()
        _write(tree, "ok.py", "# repro-fixture-module: repro.core.ok\nX = 1\n")
        cache_dir = tmp_path / "cache"
        assert main([str(tree), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main([str(tree), "--cache-dir", str(cache_dir)]) == 0
        assert " 0 re-analyzed" in capsys.readouterr().out


class TestFixtureModulePragma:
    def test_pragma_scopes_rules_to_impersonated_package(self, tmp_path):
        # Without a pragma the file has no module and package-scoped
        # rules skip it entirely.
        _write(tmp_path, "orphan.py", "import time\n\n\ndef f():\n    return time.time()\n")
        report = _analyze(tmp_path)
        assert report.findings == []


@pytest.mark.parametrize("flag", ["--rules", "--list-rules", "--baseline", "--out"])
def test_help_mentions_documented_flags(flag, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    assert flag in capsys.readouterr().out
