"""End-to-end tests for the exploration drivers, artifacts and CLI."""

import csv
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.store import ResultStore
from repro.explore.__main__ import main as explore_main
from repro.explore.drivers import (
    DEFAULT_EXPLORE_BENCHMARKS,
    ExplorationSettings,
    resolve_benchmarks,
    run_exploration,
    write_artifacts,
)
from repro.explore.objectives import OBJECTIVES, PointScore
from repro.workloads.suites import STRESS_BENCHMARKS


SMALL = ExplorationSettings(
    samples=6,
    rounds=1,
    seed=11,
    strategy="mixed",
    benchmarks=("gzip", "streampump"),
    neighbors_per_point=2,
    num_instructions=1000,
)


@pytest.fixture(scope="module")
def result():
    # One shared in-memory exploration for the read-only assertions.
    return run_exploration(SMALL, store=False)


class TestResolveBenchmarks:
    def test_named_groups(self):
        assert resolve_benchmarks("stress") == tuple(STRESS_BENCHMARKS)
        assert resolve_benchmarks("mini") == DEFAULT_EXPLORE_BENCHMARKS
        assert "swim" in resolve_benchmarks("fp")

    def test_comma_list(self):
        assert resolve_benchmarks("gzip, mcf") == ("gzip", "mcf")

    def test_unknown_name_rejected(self):
        from repro.common.errors import UnknownBenchmarkError

        with pytest.raises(UnknownBenchmarkError):
            resolve_benchmarks("gzip,doom")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_benchmarks(" , ")

    def test_duplicate_names_rejected(self):
        # Duplicates would otherwise surface as a raw traceback from
        # DesignSpace/Dimension construction deep inside run_exploration.
        with pytest.raises(ConfigurationError, match="duplicate"):
            resolve_benchmarks("gzip,gzip")


class TestRunExploration:
    def test_scores_cover_objectives_and_frontier_nonempty(self, result):
        assert result.scores
        assert result.frontier
        for score in result.scores:
            assert set(score.objectives) == set(OBJECTIVES)

    def test_every_pair_front_nonempty(self, result):
        assert len(result.pair_fronts) == len(OBJECTIVES) * (len(OBJECTIVES) - 1) // 2
        for front in result.pair_fronts.values():
            assert len(front) >= 1

    def test_frontier_points_are_mutually_nondominated(self, result):
        from repro.explore.pareto import dominates

        for a in result.frontier:
            for b in result.frontier:
                assert not dominates(a.objectives, b.objectives, OBJECTIVES)

    def test_refinement_log_matches_rounds(self, result):
        assert len(result.rounds_log) == SMALL.rounds

    def test_deterministic_for_fixed_seed(self, result):
        again = run_exploration(SMALL, store=False)
        assert [s.point.point_id for s in again.scores] == [
            s.point.point_id for s in result.scores
        ]
        assert again.scores[0].objectives == result.scores[0].objectives

    def test_settings_validation(self):
        with pytest.raises(ConfigurationError):
            ExplorationSettings(samples=0).validate()
        with pytest.raises(ConfigurationError):
            ExplorationSettings(rounds=-1).validate()
        with pytest.raises(ConfigurationError):
            ExplorationSettings(benchmarks=()).validate()
        with pytest.raises(ConfigurationError):
            ExplorationSettings(epsilon=-0.5).validate()
        with pytest.raises(ConfigurationError):
            ExplorationSettings(frontier_budget=0).validate()

    def test_settings_dict_omits_defaulted_diversity_knobs(self):
        # Frozen artifact schema: pre-aggregate explorations must keep
        # producing byte-identical frontier.json for a fixed seed.
        assert set(ExplorationSettings().as_dict()) == {
            "samples", "rounds", "seed", "strategy", "benchmarks",
            "neighbors_per_point", "num_instructions",
        }
        enriched = ExplorationSettings(
            aggregate=True, epsilon=0.05, frontier_budget=8
        ).as_dict()
        assert enriched["aggregate"] is True
        assert enriched["epsilon"] == 0.05
        assert enriched["frontier_budget"] == 8


class TestWarmCache:
    def test_second_run_resolves_everything_from_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_exploration(SMALL, store=store)
        assert cold.cache_stats["simulations"] > 0
        warm = run_exploration(SMALL, store=ResultStore(tmp_path))
        assert warm.cache_stats["simulations"] == 0
        assert [s.point.point_id for s in warm.scores] == [
            s.point.point_id for s in cold.scores
        ]
        # Bit-identical objectives: cached stats replay exactly.
        for a, b in zip(cold.scores, warm.scores):
            assert a.objectives == b.objectives


class TestArtifacts:
    def test_json_artifact_shape(self, result, tmp_path):
        paths = write_artifacts(result, tmp_path)
        payload = json.loads(paths["json"].read_text())
        assert payload["subsystem"] == "repro.explore"
        assert payload["settings"]["seed"] == SMALL.seed
        assert len(payload["points"]) == len(result.scores)
        assert payload["frontier"]
        for front in payload["pair_fronts"].values():
            assert len(front) >= 1
        point_ids = {row["point_id"] for row in payload["points"]}
        assert set(payload["frontier"]) <= point_ids

    def test_csv_artifact_rows(self, result, tmp_path):
        paths = write_artifacts(result, tmp_path)
        with open(paths["csv"], newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(result.scores)
        assert "ipc_loss_pct" in rows[0]
        assert {row["on_frontier"] for row in rows} <= {"True", "False"}

    def test_report_renders_frontier(self, result):
        text = result.report()
        assert "Pareto frontier" in text
        assert "Non-dominated points per objective pair" in text
        assert result.frontier[0].point.label in text

    def test_report_disambiguates_colliding_labels(self):
        # Labels don't encode every dimension (the MixBUFF chain cap is
        # invisible to scheme_name), so distinct frontier points can
        # share one; the report must keep a row for each instead of
        # silently overwriting.
        from repro.explore.artifacts import _display_labels
        from repro.explore.space import default_space

        space = default_space(["gzip"], aggregate=True)
        base = {"kind": "mixbuff", "int_queues": 8, "int_entries": 8,
                "fp_queues": 8, "fp_entries": 16, "issue_width": 8,
                "rob_entries": 256, "distributed_fus": False}
        a = space.build_point(dict(base, max_chains=4))
        b = space.build_point(dict(base, max_chains=8))
        assert a.label == b.label and a.point_id != b.point_id
        scores = [
            PointScore(point=p, ipc=1.0, baseline_ipc=1.0,
                       objectives={k: 1.0 for k in OBJECTIVES})
            for p in (a, b)
        ]
        labels = _display_labels(scores)
        assert len(set(labels.values())) == 2
        assert all(label.startswith(a.label) for label in labels.values())


AGGREGATE = ExplorationSettings(
    samples=5,
    rounds=1,
    seed=11,
    strategy="mixed",
    benchmarks=("gzip", "streampump"),
    neighbors_per_point=2,
    num_instructions=1000,
    aggregate=True,
    epsilon=0.05,
    frontier_budget=6,
)


@pytest.fixture(scope="module")
def aggregated():
    return run_exploration(AGGREGATE, store=False)


class TestAggregateExploration:
    def test_points_are_suite_wide(self, aggregated):
        assert aggregated.scores
        for score in aggregated.scores:
            assert score.point.benchmarks == AGGREGATE.benchmarks
            assert tuple(score.per_benchmark) == AGGREGATE.benchmarks
            assert set(score.objectives) == set(OBJECTIVES)

    def test_frontier_nonempty_and_nondominated(self, aggregated):
        from repro.explore.pareto import dominates

        assert aggregated.frontier
        for a in aggregated.frontier:
            for b in aggregated.frontier:
                assert not dominates(a.objectives, b.objectives, OBJECTIVES)

    def test_deterministic_for_fixed_seed(self, aggregated):
        again = run_exploration(AGGREGATE, store=False)
        assert [s.point.point_id for s in again.scores] == [
            s.point.point_id for s in aggregated.scores
        ]
        assert again.scores[0].objectives == aggregated.scores[0].objectives
        assert again.scores[0].per_benchmark == aggregated.scores[0].per_benchmark

    def test_warm_rerun_executes_nothing(self, tmp_path):
        cold = run_exploration(AGGREGATE, store=ResultStore(tmp_path))
        assert cold.cache_stats["simulations"] > 0
        warm = run_exploration(AGGREGATE, store=ResultStore(tmp_path))
        assert warm.cache_stats["simulations"] == 0
        for a, b in zip(cold.scores, warm.scores):
            assert a.objectives == b.objectives
            assert a.per_benchmark == b.per_benchmark

    def test_artifacts_embed_sub_scores(self, aggregated, tmp_path):
        paths = write_artifacts(aggregated, tmp_path)
        payload = json.loads(paths["json"].read_text())
        assert payload["settings"]["aggregate"] is True
        assert payload["space"]["aggregate_benchmarks"] == list(AGGREGATE.benchmarks)
        for row in payload["points"]:
            for benchmark in AGGREGATE.benchmarks:
                assert f"{benchmark}.ipc_loss_pct" in row
        with open(paths["csv"], newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert f"{AGGREGATE.benchmarks[0]}.energy" in rows[0]

    def test_report_includes_per_benchmark_breakdown(self, aggregated):
        text = aggregated.report()
        assert "Per-benchmark IPC loss" in text
        for benchmark in AGGREGATE.benchmarks:
            assert benchmark in text

    def test_custom_space_must_match_the_aggregate_flag(self):
        from repro.explore.space import default_space

        axis_space = default_space(["gzip"])
        with pytest.raises(ConfigurationError, match="workload mode"):
            run_exploration(AGGREGATE, space=axis_space, store=False)
        agg_space = default_space(["gzip"], aggregate=True)
        with pytest.raises(ConfigurationError, match="workload mode"):
            run_exploration(SMALL, space=agg_space, store=False)
        # Matching mode but a different suite is just as misleading in
        # the artifact's settings block.
        with pytest.raises(ConfigurationError, match="aggregate_benchmarks"):
            run_exploration(AGGREGATE, space=agg_space, store=False)


class TestCli:
    def test_cli_end_to_end_and_warm_rerun(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        args = ["--samples", "4", "--rounds", "1", "--seed", "11",
                "--scale", "1000", "--benchmarks", "gzip",
                "--out", str(out), "--cache-dir", str(tmp_path / "cache")]
        explore_main(args)
        cold = capsys.readouterr().out
        assert "Pareto frontier" in cold
        assert (out / "frontier.json").exists()
        assert (out / "points.csv").exists()
        first = (out / "frontier.json").read_bytes()
        explore_main(args)
        warm = capsys.readouterr().out
        assert "0 executions" in warm
        assert (out / "frontier.json").read_bytes() == first

    def test_cli_aggregate_end_to_end_and_warm_rerun(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        args = ["--aggregate", "gzip,streampump", "--samples", "4",
                "--rounds", "1", "--seed", "11", "--scale", "1000",
                "--epsilon", "0.05", "--frontier-budget", "6",
                "--out", str(out), "--cache-dir", str(tmp_path / "cache")]
        explore_main(args)
        cold = capsys.readouterr().out
        assert "Per-benchmark IPC loss" in cold
        first = (out / "frontier.json").read_bytes()
        assert b'"aggregate": true' in first
        explore_main(args)
        warm = capsys.readouterr().out
        assert "0 executions" in warm
        assert (out / "frontier.json").read_bytes() == first

    def test_cli_bare_aggregate_defaults_to_mini(self, capsys):
        # --aggregate without a value must parse as const="mini"; the
        # exit must come from the scale validation downstream of a
        # successfully resolved aggregate spec, not an argparse error
        # about --aggregate expecting an argument.
        with pytest.raises(SystemExit):
            explore_main(["--aggregate", "--scale", "100"])
        err = capsys.readouterr().err
        assert "warm-up" in err
        assert "expected one argument" not in err

    def test_cli_rejects_unknown_aggregate_suite(self, tmp_path):
        with pytest.raises(SystemExit):
            explore_main(["--aggregate", "doom", "--out", str(tmp_path)])

    def test_cli_rejects_unknown_benchmark(self, tmp_path):
        with pytest.raises(SystemExit):
            explore_main(["--benchmarks", "doom", "--out", str(tmp_path)])

    def test_cli_rejects_bad_scale(self, tmp_path):
        with pytest.raises(SystemExit):
            explore_main(["--scale", "100", "--out", str(tmp_path)])


from repro.sampling import SamplingPlan  # noqa: E402  (sampled-mode tests)

SAMPLED = ExplorationSettings(
    samples=5,
    rounds=0,
    seed=11,
    strategy="mixed",
    benchmarks=("gzip", "streampump"),
    neighbors_per_point=2,
    num_instructions=2000,
    sampling=SamplingPlan(
        num_slices=4, slice_instructions=150, warmup_instructions=100
    ),
)


class TestSampledExploration:
    @pytest.fixture(scope="class")
    def sampled(self):
        return run_exploration(SAMPLED, store=False)

    def test_scores_carry_confidence_intervals(self, sampled):
        assert sampled.scores
        for score in sampled.scores:
            assert score.intervals is not None
            # Only raw-domain metrics whose point value is in the row:
            # the energy* objective columns are baseline-normalized, so
            # raw bounds under those names would be misleading.
            assert set(score.intervals) == {"ipc", "energy_per_inst"}
            for bounds in score.intervals.values():
                assert bounds["low"] <= bounds["high"]
            row = score.as_row()
            assert row["ipc.ci_low"] <= score.ipc <= row["ipc.ci_high"]
            assert "energy_delay.ci_low" not in row

    def test_full_mode_rows_stay_schema_frozen(self, result):
        # Without a sampling plan no interval columns may appear.
        for score in result.scores:
            assert score.intervals is None
            assert not any("ci_" in key for key in score.as_row())

    def test_settings_dict_embeds_plan_only_when_set(self, sampled):
        assert sampled.settings.as_dict()["sampling"] == (
            SAMPLED.sampling.as_dict()
        )
        assert "sampling" not in SMALL.as_dict()

    def test_warm_sampled_rerun_executes_nothing_and_artifacts_identical(
        self, tmp_path
    ):
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        store = ResultStore(tmp_path / "cache")
        cold = run_exploration(SAMPLED, store=store)
        assert cold.cache_stats["simulations"] > 0
        paths_a = write_artifacts(cold, out_a)
        warm = run_exploration(SAMPLED, store=ResultStore(tmp_path / "cache"))
        assert warm.cache_stats["simulations"] == 0
        paths_b = write_artifacts(warm, out_b)
        assert paths_a["json"].read_bytes() == paths_b["json"].read_bytes()
        assert paths_a["csv"].read_bytes() == paths_b["csv"].read_bytes()

    def test_oversized_plan_fails_validation_before_running(self):
        from repro.sampling import SamplingPlan

        bad = ExplorationSettings(
            samples=2,
            benchmarks=("gzip",),
            num_instructions=1000,
            sampling=SamplingPlan(num_slices=8, slice_instructions=200,
                                  warmup_instructions=50),
        )
        with pytest.raises(ConfigurationError):
            bad.validate()
