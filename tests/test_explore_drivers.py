"""End-to-end tests for the exploration drivers, artifacts and CLI."""

import csv
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.store import ResultStore
from repro.explore.__main__ import main as explore_main
from repro.explore.drivers import (
    DEFAULT_EXPLORE_BENCHMARKS,
    ExplorationSettings,
    resolve_benchmarks,
    run_exploration,
    write_artifacts,
)
from repro.explore.objectives import OBJECTIVES
from repro.workloads.suites import STRESS_BENCHMARKS


SMALL = ExplorationSettings(
    samples=6,
    rounds=1,
    seed=11,
    strategy="mixed",
    benchmarks=("gzip", "streampump"),
    neighbors_per_point=2,
    num_instructions=1000,
)


@pytest.fixture(scope="module")
def result():
    # One shared in-memory exploration for the read-only assertions.
    return run_exploration(SMALL, store=False)


class TestResolveBenchmarks:
    def test_named_groups(self):
        assert resolve_benchmarks("stress") == tuple(STRESS_BENCHMARKS)
        assert resolve_benchmarks("mini") == DEFAULT_EXPLORE_BENCHMARKS
        assert "swim" in resolve_benchmarks("fp")

    def test_comma_list(self):
        assert resolve_benchmarks("gzip, mcf") == ("gzip", "mcf")

    def test_unknown_name_rejected(self):
        from repro.common.errors import UnknownBenchmarkError

        with pytest.raises(UnknownBenchmarkError):
            resolve_benchmarks("gzip,doom")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_benchmarks(" , ")


class TestRunExploration:
    def test_scores_cover_objectives_and_frontier_nonempty(self, result):
        assert result.scores
        assert result.frontier
        for score in result.scores:
            assert set(score.objectives) == set(OBJECTIVES)

    def test_every_pair_front_nonempty(self, result):
        assert len(result.pair_fronts) == len(OBJECTIVES) * (len(OBJECTIVES) - 1) // 2
        for front in result.pair_fronts.values():
            assert len(front) >= 1

    def test_frontier_points_are_mutually_nondominated(self, result):
        from repro.explore.pareto import dominates

        for a in result.frontier:
            for b in result.frontier:
                assert not dominates(a.objectives, b.objectives, OBJECTIVES)

    def test_refinement_log_matches_rounds(self, result):
        assert len(result.rounds_log) == SMALL.rounds

    def test_deterministic_for_fixed_seed(self, result):
        again = run_exploration(SMALL, store=False)
        assert [s.point.point_id for s in again.scores] == [
            s.point.point_id for s in result.scores
        ]
        assert again.scores[0].objectives == result.scores[0].objectives

    def test_settings_validation(self):
        with pytest.raises(ConfigurationError):
            ExplorationSettings(samples=0).validate()
        with pytest.raises(ConfigurationError):
            ExplorationSettings(rounds=-1).validate()
        with pytest.raises(ConfigurationError):
            ExplorationSettings(benchmarks=()).validate()


class TestWarmCache:
    def test_second_run_resolves_everything_from_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_exploration(SMALL, store=store)
        assert cold.cache_stats["simulations"] > 0
        warm = run_exploration(SMALL, store=ResultStore(tmp_path))
        assert warm.cache_stats["simulations"] == 0
        assert [s.point.point_id for s in warm.scores] == [
            s.point.point_id for s in cold.scores
        ]
        # Bit-identical objectives: cached stats replay exactly.
        for a, b in zip(cold.scores, warm.scores):
            assert a.objectives == b.objectives


class TestArtifacts:
    def test_json_artifact_shape(self, result, tmp_path):
        paths = write_artifacts(result, tmp_path)
        payload = json.loads(paths["json"].read_text())
        assert payload["subsystem"] == "repro.explore"
        assert payload["settings"]["seed"] == SMALL.seed
        assert len(payload["points"]) == len(result.scores)
        assert payload["frontier"]
        for front in payload["pair_fronts"].values():
            assert len(front) >= 1
        point_ids = {row["point_id"] for row in payload["points"]}
        assert set(payload["frontier"]) <= point_ids

    def test_csv_artifact_rows(self, result, tmp_path):
        paths = write_artifacts(result, tmp_path)
        with open(paths["csv"], newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(result.scores)
        assert "ipc_loss_pct" in rows[0]
        assert {row["on_frontier"] for row in rows} <= {"True", "False"}

    def test_report_renders_frontier(self, result):
        text = result.report()
        assert "Pareto frontier" in text
        assert "Non-dominated points per objective pair" in text
        assert result.frontier[0].point.label in text


class TestCli:
    def test_cli_end_to_end_and_warm_rerun(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        args = ["--samples", "4", "--rounds", "1", "--seed", "11",
                "--scale", "1000", "--benchmarks", "gzip",
                "--out", str(out), "--cache-dir", str(tmp_path / "cache")]
        explore_main(args)
        cold = capsys.readouterr().out
        assert "Pareto frontier" in cold
        assert (out / "frontier.json").exists()
        assert (out / "points.csv").exists()
        first = (out / "frontier.json").read_bytes()
        explore_main(args)
        warm = capsys.readouterr().out
        assert "0 executions" in warm
        assert (out / "frontier.json").read_bytes() == first

    def test_cli_rejects_unknown_benchmark(self, tmp_path):
        with pytest.raises(SystemExit):
            explore_main(["--benchmarks", "doom", "--out", str(tmp_path)])

    def test_cli_rejects_bad_scale(self, tmp_path):
        with pytest.raises(SystemExit):
            explore_main(["--scale", "100", "--out", str(tmp_path)])
