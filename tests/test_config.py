"""Unit tests for the configuration objects (Table 1)."""

import dataclasses

import pytest

from repro.common.config import (
    BranchPredictorConfig,
    CacheConfig,
    FunctionalUnitConfig,
    IssueSchemeConfig,
    MemoryConfig,
    ProcessorConfig,
    default_config,
    scheme_name,
)
from repro.common.errors import ConfigurationError


class TestCacheConfig:
    def test_table1_dcache_geometry(self):
        cache = CacheConfig("L1D", 32 * 1024, 4, 32, 2, ports=4)
        cache.validate()
        assert cache.num_sets == 256

    def test_table1_icache_geometry(self):
        cache = CacheConfig("L1I", 64 * 1024, 2, 32, 1)
        cache.validate()
        assert cache.num_sets == 1024

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 32 * 1024, 4, 24, 2).validate()

    def test_rejects_size_not_multiple_of_way_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 10_000, 4, 32, 2).validate()

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 32 * 1024, 4, 32, 0).validate()

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", -1, 4, 32, 2).validate()


class TestMemoryConfig:
    def test_single_chunk_latency(self):
        mem = MemoryConfig()
        assert mem.access_latency(64) == 100

    def test_multi_chunk_latency_matches_table1(self):
        mem = MemoryConfig()
        # Two chunks: first at 100, second 2 cycles later.
        assert mem.access_latency(128) == 102

    def test_partial_chunk_rounds_up(self):
        mem = MemoryConfig()
        assert mem.access_latency(65) == 102

    def test_rejects_zero_bytes(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig().access_latency(0)


class TestBranchPredictorConfig:
    def test_table1_defaults_validate(self):
        BranchPredictorConfig().validate()

    def test_rejects_non_power_of_two_tables(self):
        with pytest.raises(ConfigurationError):
            BranchPredictorConfig(gshare_entries=1000).validate()

    def test_rejects_btb_not_divisible_by_ways(self):
        with pytest.raises(ConfigurationError):
            BranchPredictorConfig(btb_entries=2048, btb_associativity=3).validate()


class TestFunctionalUnitConfig:
    def test_table1_latencies(self):
        fus = FunctionalUnitConfig()
        assert fus.int_mul_latency == 3
        assert fus.int_div_latency == 20
        assert fus.fp_mul_latency == 4
        assert fus.fp_div_latency == 12

    def test_rejects_zero_units(self):
        with pytest.raises(ConfigurationError):
            FunctionalUnitConfig(fp_alu_count=0).validate()

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            FunctionalUnitConfig(fp_alu_latency=0).validate()


class TestIssueSchemeConfig:
    def test_conventional_must_be_single_queue(self):
        with pytest.raises(ConfigurationError):
            IssueSchemeConfig(kind="conventional", int_queues=2).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            IssueSchemeConfig(kind="magic").validate()

    def test_chain_cap_only_for_mixbuff(self):
        with pytest.raises(ConfigurationError):
            IssueSchemeConfig(
                kind="issuefifo", int_queues=8, fp_queues=8, max_chains_per_queue=8
            ).validate()

    def test_distributed_needs_multiple_queues(self):
        with pytest.raises(ConfigurationError):
            IssueSchemeConfig(kind="conventional", distributed_fus=True).validate()

    def test_mixbuff_chain_cap_accepted(self):
        IssueSchemeConfig(
            kind="mixbuff", int_queues=8, fp_queues=8, max_chains_per_queue=8
        ).validate()


class TestSchemeName:
    def test_paper_naming_convention(self):
        cfg = IssueSchemeConfig(
            kind="issuefifo",
            int_queues=8,
            int_queue_entries=8,
            fp_queues=16,
            fp_queue_entries=16,
        )
        assert scheme_name(cfg) == "IssueFIFO_8x8_16x16"

    def test_distributed_suffix(self):
        cfg = IssueSchemeConfig(
            kind="mixbuff",
            int_queues=8,
            int_queue_entries=8,
            fp_queues=8,
            fp_queue_entries=16,
            distributed_fus=True,
        )
        assert scheme_name(cfg) == "MixBUFF_8x8_8x16_distr"

    def test_baseline_names(self):
        assert scheme_name(IssueSchemeConfig(kind="conventional", unbounded=True)) == "IQ_unbounded"
        assert scheme_name(IssueSchemeConfig(kind="conventional")) == "IQ_64_64"


class TestProcessorConfig:
    def test_table1_defaults(self):
        cfg = default_config()
        assert cfg.fetch_width == 8
        assert cfg.rob_entries == 256
        assert cfg.int_phys_regs == 160
        assert cfg.fp_phys_regs == 160
        assert cfg.fetch_queue_entries == 64
        assert cfg.technology_um == pytest.approx(0.10)

    def test_with_scheme_replaces_only_scheme(self):
        scheme = IssueSchemeConfig(kind="issuefifo", int_queues=8, fp_queues=8)
        cfg = default_config().with_scheme(scheme)
        assert cfg.scheme is scheme
        assert cfg.rob_entries == 256

    def test_rejects_too_few_physical_registers(self):
        cfg = dataclasses.replace(ProcessorConfig(), int_phys_regs=32)
        with pytest.raises(ConfigurationError):
            cfg.validate()

    def test_rejects_tiny_fetch_queue(self):
        cfg = dataclasses.replace(ProcessorConfig(), fetch_queue_entries=4)
        with pytest.raises(ConfigurationError):
            cfg.validate()
