"""Unit tests for the Section 3.1 issue-time estimator."""

import pytest

from repro.common.config import default_config
from repro.isa.opcodes import OpClass
from repro.issue.latency_estimator import IssueTimeEstimator

from tests.util import alu, branch, f, fpalu, load, r, store


@pytest.fixture
def estimator():
    return IssueTimeEstimator(default_config())


class TestEstimator:
    def test_independent_instruction_issues_next_cycle(self, estimator):
        assert estimator.estimate(alu(0, r(1)), cycle=10) == 11

    def test_dependent_instruction_waits_for_operand(self, estimator):
        estimator.estimate(alu(0, r(1)), cycle=10)  # issue 11, dest ready 12
        assert estimator.estimate(alu(1, r(2), [r(1)]), cycle=10) == 12

    def test_max_over_both_operands(self, estimator):
        estimator.estimate(alu(0, r(1)), cycle=10)  # ready 12
        estimator.estimate(fpalu(1, f(1), op=OpClass.FP_MUL), cycle=10)  # ready 11+4
        est = estimator.estimate(
            fpalu(2, f(2), [f(1)], op=OpClass.FP_ALU), cycle=10
        )
        assert est == 15

    def test_load_value_latency_assumes_l1_hit(self, estimator):
        cfg = default_config()
        estimator.estimate(load(0, r(1), 0x100), cycle=10)  # issue 11
        est = estimator.estimate(alu(1, r(2), [r(1)]), cycle=10)
        assert est == 11 + cfg.fus.address_latency + cfg.dcache.hit_latency

    def test_store_updates_all_store_addr(self, estimator):
        cfg = default_config()
        estimator.estimate(store(0, r(1), 0x100), cycle=10)  # issue 11
        # A later load cannot issue before all store addresses are known.
        est = estimator.estimate(load(1, r(2), 0x200), cycle=10)
        assert est == 11 + cfg.fus.address_latency

    def test_store_data_operand_does_not_gate_address(self, estimator):
        # Give the store's data a late producer; its own issue estimate
        # follows only the address operands (srcs[1:]).
        estimator.estimate(fpalu(0, f(1), op=OpClass.FP_DIV), cycle=0)  # f1 late
        est = estimator.estimate(
            store(1, f(1), 0x100, [r(0)]), cycle=0
        )
        assert est == 1  # cycle + 1, not gated by f1

    def test_current_cycle_floor(self, estimator):
        estimator.estimate(alu(0, r(1)), cycle=0)  # dest ready at 2
        # Dispatching the consumer much later: floor is cycle+1.
        assert estimator.estimate(alu(1, r(2), [r(1)]), cycle=50) == 51

    def test_branch_has_no_destination_effect(self, estimator):
        estimator.estimate(branch(0, True), cycle=10)
        assert estimator.operand_cycle(r(31)) == 0

    def test_reset(self, estimator):
        estimator.estimate(alu(0, r(1)), cycle=10)
        estimator.reset()
        assert estimator.operand_cycle(r(1)) == 0

    def test_value_latency_per_class(self, estimator):
        cfg = default_config()
        assert estimator.value_latency(OpClass.FP_MUL) == cfg.fus.fp_mul_latency
        assert (
            estimator.value_latency(OpClass.LOAD)
            == cfg.fus.address_latency + cfg.dcache.hit_latency
        )

    def test_chain_of_dependents_accumulates(self, estimator):
        estimator.estimate(fpalu(0, f(1), op=OpClass.FP_MUL), cycle=0)  # issue 1, ready 5
        est1 = estimator.estimate(fpalu(1, f(1), [f(1)], op=OpClass.FP_MUL), cycle=0)
        est2 = estimator.estimate(fpalu(2, f(1), [f(1)], op=OpClass.FP_MUL), cycle=0)
        assert est1 == 5
        assert est2 == 9
