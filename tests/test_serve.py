"""Tests for the campaign server (`repro.serve`).

The asyncio pieces run under ``asyncio.run`` inside plain test
functions (no async test plugin in the container). Scales are kept
small so the whole module stays in the seconds range.
"""

import asyncio
import json

import pytest

from repro.common.config import stable_fingerprint
from repro.common.errors import ConfigurationError
from repro.experiments import IF_DISTR, IQ_64_64
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.experiments.store import ResultStore
from repro.serve import (
    PROVENANCE_COALESCED,
    PROVENANCE_SIMULATED,
    PROVENANCE_STORE,
    CoalescingScheduler,
    JobError,
    ScheduledRunner,
    SchedulerShutdown,
    ServeApp,
    WorkUnit,
)

SCALE = RunScale(num_instructions=1200, warmup_instructions=600, seed=7)
FAST_TICK = 0.02


def run(coro):
    return asyncio.run(coro)


async def _with_scheduler(store, body, **kwargs):
    scheduler = CoalescingScheduler(store, batch_interval=FAST_TICK, **kwargs)
    await scheduler.start()
    try:
        return await body(scheduler)
    finally:
        await scheduler.close()


class TestCoalescingScheduler:
    def test_n_identical_requests_one_simulation(self, tmp_path):
        store = ResultStore(tmp_path)
        unit = WorkUnit("gzip", IQ_64_64, SCALE)

        async def body(scheduler):
            waves = await asyncio.gather(
                *[scheduler.resolve([unit]) for __ in range(6)]
            )
            return [wave[0] for wave in waves]

        outcomes = run(_with_scheduler(store, body))
        provenances = sorted(outcome.provenance for outcome in outcomes)
        assert provenances == [PROVENANCE_COALESCED] * 5 + [PROVENANCE_SIMULATED]
        payloads = {
            json.dumps(outcome.stats.to_dict(), sort_keys=True)
            for outcome in outcomes
        }
        assert len(payloads) == 1  # byte-identical answers for every asker

    def test_counters_track_the_dedup(self, tmp_path):
        store = ResultStore(tmp_path)
        unit = WorkUnit("gzip", IQ_64_64, SCALE)

        async def body(scheduler):
            await asyncio.gather(*[scheduler.resolve([unit]) for __ in range(4)])
            return scheduler.stats_payload()

        stats = run(_with_scheduler(store, body))
        assert stats["units"] == 4
        assert stats["simulated"] == 1
        assert stats["coalesced"] == 3
        assert stats["batches"] == 1
        assert stats["in_flight"] == 0 and stats["pending"] == 0

    def test_warm_restart_simulates_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        unit = WorkUnit("gzip", IQ_64_64, SCALE)
        run(_with_scheduler(store, lambda s: s.resolve([unit])))

        async def warm_body(scheduler):
            outcomes = await scheduler.resolve([unit, unit])
            return outcomes, scheduler.stats_payload()

        outcomes, stats = run(_with_scheduler(ResultStore(tmp_path), warm_body))
        assert [o.provenance for o in outcomes] == [PROVENANCE_STORE] * 2
        assert stats["simulated"] == 0 and stats["hits"] == 2

    def test_distinct_units_fold_into_one_batch(self, tmp_path):
        store = ResultStore(tmp_path)
        units = [
            WorkUnit("gzip", IQ_64_64, SCALE),
            WorkUnit("gzip", IF_DISTR, SCALE),
            WorkUnit("mcf", IQ_64_64, SCALE),
        ]

        async def body(scheduler):
            outcomes = await scheduler.resolve(units)
            return outcomes, scheduler.stats_payload()

        outcomes, stats = run(_with_scheduler(store, body))
        assert all(o.provenance == PROVENANCE_SIMULATED for o in outcomes)
        assert stats["simulated"] == 3
        assert stats["batches"] == 1  # same batch signature, one run_many

    def test_close_fails_pending_with_shutdown(self, tmp_path):
        store = ResultStore(tmp_path)

        async def body():
            scheduler = CoalescingScheduler(store, batch_interval=3600)
            await scheduler.start()
            waiter = asyncio.ensure_future(
                scheduler.resolve([WorkUnit("gzip", IQ_64_64, SCALE)])
            )
            await asyncio.sleep(0.05)  # let the unit reach the pending queue
            assert scheduler.pending == 1
            await scheduler.close()
            with pytest.raises(SchedulerShutdown):
                await waiter

        run(body())


class TestScheduledRunner:
    def test_matches_direct_runner_and_coalesces(self, tmp_path):
        direct_store = ResultStore(tmp_path / "direct")
        direct = ExperimentRunner(SCALE, store=direct_store)
        expected = direct.run("gzip", IQ_64_64)

        store = ResultStore(tmp_path / "served")
        seen = []

        async def body(scheduler):
            runner = ScheduledRunner(
                scheduler, scale=SCALE, on_outcome=seen.append
            )
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(
                None, runner.run, "gzip", IQ_64_64
            )
            return stats, scheduler.stats_payload()

        stats, sched_stats = run(_with_scheduler(store, body))
        assert stats == expected  # same simulator, same bits
        assert sched_stats["simulated"] == 1
        assert [o.provenance for o in seen] == [PROVENANCE_SIMULATED]

    def test_exploration_accepts_scheduled_runner(self, tmp_path):
        from repro.explore.drivers import ExplorationSettings, run_exploration

        settings = ExplorationSettings(
            samples=3, rounds=1, seed=7, benchmarks=("gzip",),
            num_instructions=800, workers=0,
        )
        store = ResultStore(tmp_path)

        async def body(scheduler):
            runner = ScheduledRunner(scheduler, scale=settings.scale())
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                None, lambda: run_exploration(settings, runner=runner)
            )
            return result, scheduler.stats_payload()

        result, stats = run(_with_scheduler(store, body))
        assert result.scores and result.frontier
        assert stats["simulated"] > 0
        # The runner itself never simulated: every miss went through the
        # scheduler, then came back as a disk hit.
        assert result.cache_stats["simulations"] == 0
        assert result.cache_stats["disk_hits"] == stats["simulated"]

    def test_exploration_rejects_mismatched_runner(self, tmp_path):
        from repro.explore.drivers import ExplorationSettings, run_exploration

        settings = ExplorationSettings(samples=2, rounds=1,
                                       num_instructions=800)
        wrong_scale = RunScale(num_instructions=999, warmup_instructions=400,
                               seed=settings.seed)
        runner = ExperimentRunner(wrong_scale, store=ResultStore(tmp_path))
        with pytest.raises(ConfigurationError):
            run_exploration(settings, runner=runner)
        with pytest.raises(ConfigurationError):
            run_exploration(settings, store=ResultStore(tmp_path),
                            runner=runner)


async def _post_json(port, path, payload):
    return await _request(port, "POST", path, payload)


async def _request(port, method, path, payload=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode() if payload is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, __, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ")[1])
    if b"Transfer-Encoding: chunked" in head:
        rest = _dechunk(rest)
    return status, rest


def _dechunk(blob):
    out = b""
    while blob:
        size, __, blob = blob.partition(b"\r\n")
        length = int(size, 16)
        if length == 0:
            break
        out += blob[:length]
        blob = blob[length + 2:]
    return out


async def _await_job(port, job_id, timeout=60.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status, body = await _request(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        summary = json.loads(body)
        if summary["state"] in ("done", "failed"):
            return summary
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"job {job_id} stuck in {summary['state']}")
        await asyncio.sleep(0.05)


SIM_SPEC = {
    "type": "simulation", "benchmark": "gzip", "scheme": "IQ_64_64",
    "scale": 1200, "seed": 7,
}


class TestHttpService:
    def test_duplicate_jobs_share_one_simulation(self, tmp_path):
        async def body():
            app = ServeApp(ResultStore(tmp_path, shards=4),
                           batch_interval=FAST_TICK)
            port = await app.start("127.0.0.1", 0)
            try:
                posts = await asyncio.gather(
                    *[_post_json(port, "/v1/jobs", SIM_SPEC) for __ in range(3)]
                )
                assert [status for status, __ in posts] == [202] * 3
                ids = [json.loads(body)["job"] for __, body in posts]
                summaries = [await _await_job(port, job_id) for job_id in ids]
                assert [s["state"] for s in summaries] == ["done"] * 3
                merged = {}
                for summary in summaries:
                    for name, count in summary["provenance"].items():
                        merged[name] = merged.get(name, 0) + count
                assert merged == {PROVENANCE_SIMULATED: 1,
                                  PROVENANCE_COALESCED: 2}
                artifacts = {
                    (await _request(port, "GET",
                                    f"/v1/jobs/{job_id}/artifact"))[1]
                    for job_id in ids
                }
                assert len(artifacts) == 1  # byte-identical artifacts
                status, body = await _request(port, "GET", "/v1/stats")
                stats = json.loads(body)
                assert stats["scheduler"]["simulated"] == 1
                assert stats["store"]["shards"] == 4
                assert sum(stats["store"]["shard_counts"]) == 1
            finally:
                await app.shutdown()

        run(body())

    def test_warm_restart_server_simulates_nothing(self, tmp_path):
        async def cold():
            app = ServeApp(ResultStore(tmp_path, shards=4),
                           batch_interval=FAST_TICK)
            port = await app.start("127.0.0.1", 0)
            try:
                __, body = await _post_json(port, "/v1/jobs", SIM_SPEC)
                summary = await _await_job(port, json.loads(body)["job"])
                return summary["result"]
            finally:
                await app.shutdown()

        async def warm():
            app = ServeApp(ResultStore(tmp_path, shards=4),
                           batch_interval=FAST_TICK)
            port = await app.start("127.0.0.1", 0)
            try:
                __, body = await _post_json(port, "/v1/jobs", SIM_SPEC)
                summary = await _await_job(port, json.loads(body)["job"])
                status, body = await _request(port, "GET", "/v1/stats")
                return summary, json.loads(body)
            finally:
                await app.shutdown()

        cold_result = run(cold())
        summary, stats = run(warm())
        assert summary["state"] == "done"
        assert summary["provenance"] == {PROVENANCE_STORE: 1}
        # Same key, same numbers; only the provenance annotation differs
        # (the status payload says *how* the answer was obtained).
        warm_result = dict(summary["result"])
        assert warm_result.pop("provenance") == PROVENANCE_STORE
        cold_sans = dict(cold_result)
        assert cold_sans.pop("provenance") == PROVENANCE_SIMULATED
        assert warm_result == cold_sans
        assert stats["scheduler"]["simulated"] == 0
        assert stats["scheduler"]["hits"] == 1

    def test_events_stream_carries_lifecycle_and_provenance(self, tmp_path):
        async def body():
            app = ServeApp(ResultStore(tmp_path), batch_interval=FAST_TICK)
            port = await app.start("127.0.0.1", 0)
            try:
                __, posted = await _post_json(port, "/v1/jobs", SIM_SPEC)
                job_id = json.loads(posted)["job"]
                await _await_job(port, job_id)
                status, body = await _request(
                    port, "GET", f"/v1/jobs/{job_id}/events"
                )
                assert status == 200
                events = [json.loads(line)
                          for line in body.decode().splitlines()]
                names = [event["event"] for event in events]
                assert names == ["queued", "running", "batched",
                                 "simulating", "unit", "done"]
                unit_event = events[names.index("unit")]
                assert unit_event["provenance"] == PROVENANCE_SIMULATED
                assert unit_event["benchmark"] == "gzip"
                assert [event["seq"] for event in events] == list(range(6))
            finally:
                await app.shutdown()

        run(body())

    def test_figures_artifact_matches_cli_export(self, tmp_path):
        from repro.experiments.campaign import export_campaign

        scale = RunScale(num_instructions=1200, warmup_instructions=600,
                         seed=7)

        async def body():
            app = ServeApp(ResultStore(tmp_path / "served"),
                           batch_interval=FAST_TICK)
            port = await app.start("127.0.0.1", 0)
            try:
                spec = {"type": "figures", "figures": [2], "scale": 1200,
                        "seed": 7, "format": "json"}
                __, posted = await _post_json(port, "/v1/jobs", spec)
                summary = await _await_job(
                    port, json.loads(posted)["job"], timeout=300.0
                )
                assert summary["state"] == "done"
                status, artifact = await _request(
                    port, "GET",
                    f"/v1/jobs/{summary['id']}/artifact?name=campaign.json",
                )
                assert status == 200
                return artifact
            finally:
                await app.shutdown()

        served = run(body())
        runner = ExperimentRunner(scale, store=ResultStore(tmp_path / "cli"))
        cli_path = tmp_path / "campaign.json"
        export_campaign(runner, [2], "json", cli_path)
        assert served == cli_path.read_bytes()

    def test_version_endpoint_matches_campaign_flag(self, tmp_path, capsys):
        from repro.experiments.campaign import main as campaign_main

        async def body():
            app = ServeApp(ResultStore(tmp_path))
            port = await app.start("127.0.0.1", 0)
            try:
                return await _request(port, "GET", "/v1/version")
            finally:
                await app.shutdown()

        status, served = run(body())
        assert status == 200
        campaign_main(["--version-tag"])
        printed = capsys.readouterr().out
        assert json.loads(served) == json.loads(printed)
        payload = json.loads(served)
        assert set(payload) == {"simulator_version_tag",
                                "sampling_version_tag", "kernels", "backends"}

    def test_bad_requests_get_400s_not_crashes(self, tmp_path):
        async def body():
            app = ServeApp(ResultStore(tmp_path))
            port = await app.start("127.0.0.1", 0)
            try:
                cases = [
                    {"type": "bogus"},
                    {"type": "simulation", "benchmark": "nope",
                     "scheme": "IQ_64_64"},
                    {"type": "simulation", "benchmark": "gzip",
                     "scheme": "nope"},
                    {"type": "figures", "figures": [999]},
                    {"type": "simulation", "benchmark": "gzip",
                     "scheme": "IQ_64_64", "surprise": 1},
                    ["not", "an", "object"],
                ]
                statuses = [
                    (await _post_json(port, "/v1/jobs", case))[0]
                    for case in cases
                ]
                missing = await _request(port, "GET", "/v1/jobs/none")
                bad_path = await _request(port, "GET", "/v1/nope")
                return statuses, missing[0], bad_path[0]
            finally:
                await app.shutdown()

        statuses, missing, bad_path = run(body())
        assert statuses == [400] * 6
        assert missing == 404 and bad_path == 404


class TestGracefulShutdown:
    def test_queued_jobs_fail_cleanly_and_tmp_swept(self, tmp_path):
        async def body():
            store = ResultStore(tmp_path)
            # A long batch interval keeps the unit queued, never batched.
            app = ServeApp(store, batch_interval=3600)
            port = await app.start("127.0.0.1", 0)
            __, posted = await _post_json(port, "/v1/jobs", SIM_SPEC)
            job_id = json.loads(posted)["job"]
            await asyncio.sleep(0.1)  # unit reaches the pending queue
            orphan = tmp_path / "ab" / "leftover.tmp"
            orphan.parent.mkdir(parents=True, exist_ok=True)
            orphan.write_text("crashed writer")
            await app.shutdown()
            job = app.jobs.jobs[job_id]
            assert job.state == "failed"
            assert "shutting down" in job.error
            assert not orphan.exists()  # swept regardless of age
            with pytest.raises(SchedulerShutdown):
                app.jobs.submit(SIM_SPEC)

        run(body())

    def test_post_after_shutdown_is_503(self, tmp_path):
        async def body():
            app = ServeApp(ResultStore(tmp_path))
            await app.start("127.0.0.1", 0)
            await app.shutdown()
            # Listener is closed; job submission through the service
            # object reports shutdown rather than accepting silently.
            with pytest.raises(SchedulerShutdown):
                app.jobs.submit(SIM_SPEC)

        run(body())


class TestParallelDrain:
    """The interrupt-drain path of the multiprocessing campaign fan-out."""

    class _FakeResult:
        def __init__(self, payloads=None, interrupt=False):
            self._payloads = payloads
            self._interrupt = interrupt
            self.waits = 0

        def ready(self):
            if self._interrupt:
                return False
            return self.waits > 0

        def wait(self, timeout):
            self.waits += 1
            if self._interrupt:
                raise KeyboardInterrupt

        def get(self):
            return self._payloads

    class _FakePool:
        def __init__(self):
            self.terminated = False
            self.joined = False

        def terminate(self):
            self.terminated = True

        def join(self):
            self.joined = True

    def test_normal_drain_returns_payloads(self):
        from repro.experiments.parallel import _drain_pool

        result = self._FakeResult(payloads=["a", "b"])
        assert _drain_pool(self._FakePool(), result, (None, None)) == ["a", "b"]

    def test_interrupt_terminates_pool_and_sweeps(self, tmp_path):
        from repro.experiments.parallel import _drain_pool

        orphan = tmp_path / "spill.tmp"
        orphan.write_text("torn trace spill")
        pool = self._FakePool()
        with pytest.raises(KeyboardInterrupt):
            _drain_pool(
                pool,
                self._FakeResult(interrupt=True),
                (str(tmp_path), None),
            )
        assert pool.terminated and pool.joined
        assert not orphan.exists()  # swept regardless of age

    def test_workers_are_initialized_to_ignore_sigint(self):
        import signal

        from repro.experiments.parallel import _init_worker

        previous = signal.getsignal(signal.SIGINT)
        try:
            _init_worker()
            assert signal.getsignal(signal.SIGINT) is signal.SIG_IGN
        finally:
            signal.signal(signal.SIGINT, previous)


class TestJobValidation:
    def test_specs_validate_without_running(self, tmp_path):
        async def body():
            app = ServeApp(ResultStore(tmp_path))
            await app.scheduler.start()
            try:
                for bad in (
                    None,
                    {},
                    {"type": "simulation"},
                    {"type": "simulation", "benchmark": "gzip",
                     "scheme": "IQ_64_64", "scale": True},
                    {"type": "simulation", "benchmark": "gzip",
                     "scheme": "IQ_64_64", "kernel": "nope"},
                    {"type": "figures", "figures": []},
                    {"type": "figures", "figures": [2], "format": "xml"},
                    {"type": "exploration", "samples": 0},
                    {"type": "simulation", "benchmark": "gzip",
                     "scheme": "IQ_64_64", "sampling": "bogus=1"},
                ):
                    with pytest.raises(JobError):
                        app.jobs.parse(bad)
            finally:
                await app.scheduler.close()

        run(body())

    def test_batch_signature_separates_incompatible_units(self):
        base = WorkUnit("gzip", IQ_64_64, SCALE)
        same = WorkUnit("mcf", IF_DISTR, SCALE)
        other_scale = WorkUnit(
            "gzip", IQ_64_64,
            RunScale(num_instructions=2400, warmup_instructions=600, seed=7),
        )
        other_kernel = WorkUnit("gzip", IQ_64_64, SCALE, kernel="naive")
        assert base.batch_signature() == same.batch_signature()
        assert base.batch_signature() != other_scale.batch_signature()
        assert base.batch_signature() != other_kernel.batch_signature()

    def test_unit_key_is_the_store_key(self):
        from repro.common.config import default_config
        from repro.experiments.store import result_key
        from repro.workloads.suites import get_profile

        unit = WorkUnit("gzip", IQ_64_64, SCALE)
        assert unit.key() == result_key(
            default_config(IQ_64_64), get_profile("gzip"), SCALE
        )
        assert stable_fingerprint(SCALE) == stable_fingerprint(SCALE)
