"""Suite-wide isolation for the unit tests."""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _hermetic_cache_env():
    """Keep unit tests away from any real on-disk result cache.

    A developer with ``REPRO_CACHE_DIR`` exported would otherwise have
    every default-constructed :class:`ExperimentRunner` read (possibly
    stale) cached stats — masking behaviour changes — and write test
    results into their real cache. Tests that want the env var set it
    explicitly via ``monkeypatch.setenv``.
    """
    saved = os.environ.pop("REPRO_CACHE_DIR", None)
    yield
    if saved is not None:
        os.environ["REPRO_CACHE_DIR"] = saved
