"""Tests for the declarative design space and its sampling."""

import itertools

import pytest

from repro.common.config import ProcessorConfig, scheme_name
from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.explore.space import DesignSpace, Dimension, default_space


def tiny_space(benchmarks=("gzip",)):
    return DesignSpace(
        [
            Dimension("kind", ("conventional", "issuefifo"), ordinal=False),
            Dimension("int_queues", (4, 8)),
            Dimension("int_entries", (4, 8)),
            Dimension("fp_queues", (4, 8)),
            Dimension("fp_entries", (8, 16)),
            Dimension("benchmark", tuple(benchmarks), ordinal=False),
        ]
    )


class TestDimension:
    def test_rejects_empty_and_duplicate_values(self):
        with pytest.raises(ConfigurationError):
            Dimension("x", ())
        with pytest.raises(ConfigurationError):
            Dimension("x", (1, 1))

    def test_ordinal_neighbors_are_adjacent(self):
        dim = Dimension("x", (4, 8, 12, 16))
        assert dim.neighbors(8) == (4, 12)
        assert dim.neighbors(4) == (8,)
        assert dim.neighbors(16) == (12,)

    def test_categorical_neighbors_are_all_others(self):
        dim = Dimension("k", ("a", "b", "c"), ordinal=False)
        assert set(dim.neighbors("b")) == {"a", "c"}

    def test_repaired_value_outside_domain_has_no_neighbors(self):
        assert Dimension("x", (4, 8)).neighbors(64) == ()

    def test_sample_is_deterministic_in_seed(self):
        dim = Dimension("x", tuple(range(50)))
        a = [dim.sample(make_rng(7, "s")) for _ in range(5)]
        b = [dim.sample(make_rng(7, "s")) for _ in range(5)]
        assert a == b


class TestDesignSpace:
    def test_requires_benchmark_dimension(self):
        with pytest.raises(ConfigurationError):
            DesignSpace([Dimension("kind", ("conventional",), ordinal=False)])

    def test_rejects_unknown_dimension(self):
        with pytest.raises(ConfigurationError):
            DesignSpace(
                [
                    Dimension("warp_factor", (1, 2)),
                    Dimension("benchmark", ("gzip",), ordinal=False),
                ]
            )

    def test_grid_size_is_product_of_domains(self):
        assert len(tiny_space()) == 2 * 2 * 2 * 2 * 2 * 1

    def test_build_point_produces_valid_config(self):
        space = tiny_space()
        point = space.build_point(
            {
                "kind": "issuefifo",
                "int_queues": 8,
                "int_entries": 4,
                "fp_queues": 4,
                "fp_entries": 16,
                "benchmark": "gzip",
            }
        )
        assert isinstance(point.config, ProcessorConfig)
        point.config.validate()
        assert point.config.scheme.int_queues == 8
        assert point.benchmark == "gzip"
        assert scheme_name(point.config.scheme) in point.label

    def test_conventional_repair_merges_queue_capacity(self):
        space = tiny_space()
        point = space.build_point(
            {
                "kind": "conventional",
                "int_queues": 8,
                "int_entries": 4,
                "fp_queues": 4,
                "fp_entries": 16,
                "benchmark": "gzip",
            }
        )
        scheme = point.config.scheme
        assert scheme.int_queues == 1 and scheme.fp_queues == 1
        assert scheme.int_queue_entries == 32  # 8 queues x 4 entries
        assert scheme.fp_queue_entries == 64
        assert not scheme.distributed_fus

    def test_max_chains_only_survives_for_mixbuff(self):
        space = default_space(["gzip"])
        assignment = {
            "kind": "issuefifo",
            "int_queues": 8,
            "int_entries": 8,
            "fp_queues": 8,
            "fp_entries": 16,
            "distributed_fus": False,
            "max_chains": 8,
            "issue_width": 8,
            "rob_entries": 256,
            "benchmark": "gzip",
        }
        assert space.build_point(assignment).config.scheme.max_chains_per_queue is None
        assignment["kind"] = "mixbuff"
        assert space.build_point(assignment).config.scheme.max_chains_per_queue == 8

    def test_expand_dedupes_by_point_id(self):
        space = tiny_space()
        # Two conventional assignments with the same total capacity repair
        # to the same machine and must collapse.
        a = {"kind": "conventional", "int_queues": 8, "int_entries": 4,
             "fp_queues": 4, "fp_entries": 16, "benchmark": "gzip"}
        b = {"kind": "conventional", "int_queues": 4, "int_entries": 8,
             "fp_queues": 8, "fp_entries": 8, "benchmark": "gzip"}
        assert len(space.expand([a, b, a])) == 1

    def test_grid_stride_is_even_and_bounded(self):
        space = tiny_space()
        assignments = space.grid_assignments(5)
        assert len(assignments) == 5
        full = space.grid_assignments()
        assert assignments[0] == full[0]

    def test_strided_grid_matches_product_walk(self):
        # The mixed-radix decoder must reproduce the original
        # implementation exactly: the evenly strided subset of a full
        # itertools.product enumeration.
        for space in (tiny_space(), default_space(["gzip", "swim", "mcf"])):
            total = len(space)
            names = [d.name for d in space.dimensions]
            product = [
                dict(zip(names, combo))
                for combo in itertools.product(*(d.values for d in space.dimensions))
            ]
            for limit in (1, 2, 5, 12, total - 1, total, total + 10):
                wanted = sorted({i * total // limit for i in range(min(limit, total))})
                reference = (
                    product
                    if limit >= total
                    else [product[i] for i in wanted]
                )
                assert space.grid_assignments(limit) == reference, limit

    def test_grid_limit_zero_and_negative_are_empty(self):
        assert tiny_space().grid_assignments(0) == []
        assert tiny_space().grid_assignments(-3) == []

    def test_sampling_is_deterministic_per_seed(self):
        space = tiny_space()
        assert space.sample("mixed", 8, 11) == space.sample("mixed", 8, 11)
        assert space.sample("random", 8, 11) != space.sample("random", 8, 12)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_space().sample("annealing", 4, 1)

    def test_neighborhood_perturbs_one_dimension_at_a_time(self):
        space = tiny_space()
        base = {"kind": "issuefifo", "int_queues": 4, "int_entries": 4,
                "fp_queues": 4, "fp_entries": 8, "benchmark": "gzip"}
        for variant in space.neighborhood(base, 0, make_rng(3, "n")):
            diffs = [k for k in base if variant[k] != base[k]]
            assert len(diffs) == 1

    def test_default_space_covers_all_kinds(self):
        space = default_space(["gzip", "swim"])
        kinds = dict((d.name, d) for d in space.dimensions)["kind"].values
        assert set(kinds) == {"conventional", "issuefifo", "latfifo", "mixbuff"}
        assert len(space.expand(space.sample("random", 16, 3))) > 0


def aggregate_space(benchmarks=("gzip", "streampump")):
    return DesignSpace(
        [
            Dimension("kind", ("conventional", "issuefifo"), ordinal=False),
            Dimension("int_queues", (4, 8)),
            Dimension("int_entries", (4, 8)),
        ],
        aggregate_benchmarks=tuple(benchmarks),
    )


class TestAggregateSpace:
    def test_rejects_empty_and_duplicate_sets(self):
        with pytest.raises(ConfigurationError):
            DesignSpace([Dimension("int_queues", (4, 8))], aggregate_benchmarks=())
        with pytest.raises(ConfigurationError):
            DesignSpace(
                [Dimension("int_queues", (4, 8))],
                aggregate_benchmarks=("gzip", "gzip"),
            )

    def test_rejects_benchmark_dimension_alongside_aggregation(self):
        with pytest.raises(ConfigurationError):
            DesignSpace(
                [
                    Dimension("int_queues", (4, 8)),
                    Dimension("benchmark", ("gzip",), ordinal=False),
                ],
                aggregate_benchmarks=("gzip", "mcf"),
            )

    def test_points_carry_the_suite(self):
        space = aggregate_space()
        point = space.build_point(
            {"kind": "issuefifo", "int_queues": 8, "int_entries": 4}
        )
        assert point.benchmarks == ("gzip", "streampump")
        assert point.benchmark == "suite:gzip+streampump"
        assert point.benchmark in point.label
        point.config.validate()

    def test_long_suites_get_a_digest_token(self):
        from repro.workloads.suites import FP_BENCHMARKS, INT_BENCHMARKS

        names = tuple(INT_BENCHMARKS + FP_BENCHMARKS)
        point = aggregate_space(names).build_point(
            {"kind": "issuefifo", "int_queues": 8, "int_entries": 4}
        )
        assert point.benchmark.startswith(f"suite:{len(names)}bench-")
        assert len(point.benchmark) < 30

    def test_point_id_depends_on_the_suite(self):
        assignment = {"kind": "issuefifo", "int_queues": 8, "int_entries": 4}
        a = aggregate_space(("gzip", "mcf")).build_point(assignment)
        b = aggregate_space(("gzip", "swim")).build_point(assignment)
        assert a.point_id != b.point_id
        assert a.config == b.config

    def test_describe_includes_the_aggregation_set(self):
        described = aggregate_space().describe()
        assert described["aggregate_benchmarks"] == ["gzip", "streampump"]
        assert "benchmark" not in described

    def test_neighborhood_never_perturbs_the_suite(self):
        space = aggregate_space()
        base = {"kind": "issuefifo", "int_queues": 4, "int_entries": 4}
        variants = space.neighborhood(base, 0, make_rng(3, "n"))
        assert variants
        for variant in variants:
            assert set(variant) == set(base)

    def test_default_space_aggregate_mode(self):
        space = default_space(["gzip", "mcf"], aggregate=True)
        assert space.aggregate_benchmarks == ("gzip", "mcf")
        assert "benchmark" not in {d.name for d in space.dimensions}
        assert len(space.expand(space.sample("mixed", 8, 3))) > 0

    def test_axis_space_has_empty_aggregation(self):
        assert default_space(["gzip"]).aggregate_benchmarks == ()
