"""Rule-level tests: every shipped rule catches its seeded bad fixture,
the real tree analyzes clean, and the discovery oracle replays the pass."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import default_root, run_analysis
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, resolve_rules
from repro.discover.oracles import ORACLES, StaticAnalysisOracle
from repro.experiments.runner import RunScale

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def fixture_for(rule_id: str) -> Path:
    return FIXTURES / f"bad_{rule_id.replace('-', '_')}.py"


class TestSensitivity:
    @pytest.mark.parametrize("rule_id", sorted(RULES_BY_ID))
    def test_every_rule_trips_its_bad_fixture(self, rule_id):
        fixture = fixture_for(rule_id)
        assert fixture.is_file(), f"missing known-bad fixture {fixture}"
        report = run_analysis(
            [fixture], base=FIXTURES, rules=resolve_rules([rule_id])
        )
        tripped = [f for f in report.findings if f.rule == rule_id]
        assert tripped, f"{rule_id} found nothing in {fixture.name}"
        assert report.exit_code == 1

    def test_every_rule_has_a_fixture_and_vice_versa(self):
        fixture_rules = {
            path.stem.removeprefix("bad_").replace("_", "-")
            for path in FIXTURES.glob("bad_*.py")
        }
        assert fixture_rules == set(RULES_BY_ID)

    def test_rule_metadata_is_complete(self):
        for rule in ALL_RULES:
            assert rule.id and rule.summary and rule.rationale
            assert rule.severity == "error"


class TestRuleSpecifics:
    def test_skip_safety_inherited_contract_resolves_cross_file(self, tmp_path):
        # The base class registers the counter and carries the next_*
        # contract; the subclass mutating in try_place must be clean.
        (tmp_path / "base.py").write_text(
            "# repro-fixture-module: repro.issue.base_fx\n"
            "class GoodBase:\n"
            "    def next_activity_cycle(self, cycle):\n"
            "        return None\n"
            "\n"
            "    def idle_counters(self):\n"
            "        return {'stalls': self.stalls}\n"
        )
        (tmp_path / "sub.py").write_text(
            "# repro-fixture-module: repro.issue.sub_fx\n"
            "from repro.issue.base_fx import GoodBase\n"
            "\n"
            "\n"
            "class GoodSub(GoodBase):\n"
            "    def try_place(self, inst):\n"
            "        self.stalls += 1\n"
            "        return False\n"
            "\n"
            "    def step(self, cycle):\n"
            "        self.stalls += 1\n"
        )
        report = run_analysis(
            [tmp_path], base=tmp_path, rules=resolve_rules(["skip-safety"])
        )
        assert report.findings == []

    def test_determinism_allows_seeded_rng_and_sorted_walks(self, tmp_path):
        (tmp_path / "ok.py").write_text(
            "# repro-fixture-module: repro.workloads.ok_fx\n"
            "import random\n"
            "from pathlib import Path\n"
            "\n"
            "\n"
            "def gen(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n"
            "\n"
            "\n"
            "def names(root):\n"
            "    return [p.name for p in sorted(Path(root).glob('*.json'))]\n"
            "\n"
            "\n"
            "def ordered(items):\n"
            "    return [x for x in sorted({1, 2, 3})]\n"
        )
        report = run_analysis(
            [tmp_path], base=tmp_path, rules=resolve_rules(["determinism"])
        )
        assert report.findings == []

    def test_version_tag_rule_allows_store_and_covered_imports(self, tmp_path):
        (tmp_path / "ok.py").write_text(
            "# repro-fixture-module: repro.core.ok_fx\n"
            "from repro.common.config import ProcessorConfig\n"
            "from repro.experiments.store import package_sources_digest\n"
            "from repro.experiments import store\n"
        )
        report = run_analysis(
            [tmp_path], base=tmp_path, rules=resolve_rules(["version-tag-coverage"])
        )
        assert report.findings == []

    def test_fingerprint_rule_accepts_valid_exclude(self, tmp_path):
        (tmp_path / "ok.py").write_text(
            "# repro-fixture-module: repro.common.ok_fx\n"
            "from dataclasses import dataclass\n"
            "\n"
            "\n"
            "@dataclass(frozen=True)\n"
            "class OkConfig:\n"
            "    size: int = 8\n"
            "    kernel: str = 'skip'\n"
            "\n"
            "    _FINGERPRINT_EXCLUDE = ('kernel',)\n"
        )
        report = run_analysis(
            [tmp_path], base=tmp_path, rules=resolve_rules(["fingerprint-completeness"])
        )
        assert report.findings == []

    def test_async_rule_ignores_calls_routed_through_shims(self, tmp_path):
        (tmp_path / "ok.py").write_text(
            "# repro-fixture-module: repro.serve.ok_fx\n"
            "class OkHandler:\n"
            "    async def handle(self, loop, key):\n"
            "        return await loop.run_in_executor(None, self.store.load, key)\n"
            "\n"
            "    async def lazy(self, key):\n"
            "        return await self._in_thread(lambda: self.store.load(key))\n"
        )
        report = run_analysis(
            [tmp_path], base=tmp_path, rules=resolve_rules(["serve-async-hygiene"])
        )
        assert report.findings == []

    def test_telemetry_rule_bans_clocks_outside_obs(self, tmp_path):
        # An untagged orchestration module reading the clock directly.
        (tmp_path / "bad.py").write_text(
            "# repro-fixture-module: repro.serve.bad_fx\n"
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        report = run_analysis(
            [tmp_path], base=tmp_path, rules=resolve_rules(["telemetry-hygiene"])
        )
        assert [f.rule for f in report.findings] == ["telemetry-hygiene"]
        assert "repro.obs.clock" in report.findings[0].message

    def test_telemetry_rule_exempts_obs_and_untagged_imports(self, tmp_path):
        # repro.obs.clock is the sanctioned wall-clock site; untagged
        # layers (experiments, serve) may import obs freely.
        (tmp_path / "clock.py").write_text(
            "# repro-fixture-module: repro.obs.clock_fx\n"
            "import time\n"
            "\n"
            "\n"
            "def wall_time():\n"
            "    return time.time()\n"
        )
        (tmp_path / "runner.py").write_text(
            "# repro-fixture-module: repro.experiments.ok_fx\n"
            "from repro import obs\n"
            "\n"
            "\n"
            "def tick():\n"
            "    obs.counter('repro_ok_total').inc()\n"
            "    return obs.clock.perf_counter()\n"
        )
        report = run_analysis(
            [tmp_path], base=tmp_path, rules=resolve_rules(["telemetry-hygiene"])
        )
        assert report.findings == []


class TestCleanTree:
    def test_real_tree_has_zero_unsuppressed_findings(self):
        report = run_analysis()
        assert report.findings == [], "\n" + "\n".join(
            f"{f.path}:{f.line}: {f.rule}: {f.message}" for f in report.findings
        )
        # The two deliberate, documented suppressions (scheduler inline
        # store probe, checkpoint-store cardinality count) stay used.
        assert len(report.suppressed) == 2

    def test_default_root_is_the_repro_package(self):
        assert default_root().name == "repro"


class TestStaticAnalysisOracle:
    SCALE = RunScale(num_instructions=1000, warmup_instructions=500, seed=3)

    def test_registered_in_catalog(self):
        assert "static_analysis" in ORACLES

    def test_clean_tree_yields_no_findings(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANALYSIS_ROOT", raising=False)
        oracle = StaticAnalysisOracle()
        assert oracle.run(None, [object()], self.SCALE) == []

    def test_bad_tree_yields_one_point_bound_finding(self, tmp_path, monkeypatch):
        (tmp_path / "bad.py").write_text(
            "# repro-fixture-module: repro.core.bad_fx\n"
            "import time\n"
            "\n"
            "\n"
            "def now():\n"
            "    return time.time()\n"
        )
        monkeypatch.setenv("REPRO_ANALYSIS_ROOT", str(tmp_path))
        oracle = StaticAnalysisOracle()
        point = object()
        findings = oracle.run(None, [point, object()], self.SCALE)
        assert len(findings) == 1
        assert findings[0].oracle == "static_analysis"
        assert findings[0].point is point
        assert any("determinism" in line for line in findings[0].detail)
        # Deterministic detail: a second run reproduces the tuple.
        assert oracle.run(None, [point], self.SCALE)[0].detail == findings[0].detail

    def test_no_points_means_no_findings_even_when_dirty(self, tmp_path, monkeypatch):
        (tmp_path / "bad.py").write_text(
            "# repro-fixture-module: repro.core.bad_fx\n"
            "import time\n"
            "\n"
            "\n"
            "def now():\n"
            "    return time.time()\n"
        )
        monkeypatch.setenv("REPRO_ANALYSIS_ROOT", str(tmp_path))
        assert StaticAnalysisOracle().run(None, [], self.SCALE) == []
