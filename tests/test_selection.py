"""Unit tests for MixBUFF selection, including the Figure 5 example."""

from repro.issue.selection import (
    CODE_FINISHED,
    CODE_FINISHES_NEXT_CYCLE,
    CODE_NOT_READY,
    SelectableEntry,
    latency_code,
    select_entry,
    selection_key,
)


class TestLatencyCode:
    def test_finished(self):
        assert latency_code(chain_completion_cycle=5, cycle=5) == CODE_FINISHED
        assert latency_code(chain_completion_cycle=3, cycle=5) == CODE_FINISHED

    def test_finishes_next_cycle(self):
        assert latency_code(6, 5) == CODE_FINISHES_NEXT_CYCLE

    def test_not_ready(self):
        assert latency_code(7, 5) == CODE_NOT_READY
        assert latency_code(100, 5) == CODE_NOT_READY

    def test_code_ordering_matches_paper(self):
        # 00 (finishing next cycle) < 01 (finished) < 11 (not ready).
        assert CODE_FINISHES_NEXT_CYCLE < CODE_FINISHED < CODE_NOT_READY


class TestSelectionKey:
    def test_code_dominates_age(self):
        young_first_time = selection_key(CODE_FINISHES_NEXT_CYCLE, age=100)
        old_delayed = selection_key(CODE_FINISHED, age=1)
        assert young_first_time < old_delayed

    def test_age_breaks_ties(self):
        assert selection_key(CODE_FINISHED, 3) < selection_key(CODE_FINISHED, 7)


class TestFigure5Example:
    """The worked example of Figure 5, reproduced entry for entry.

    Queue contents (instruction, age bits, chain) with chain latency
    codes: chain 0 -> 01 (finished), chain 1 -> 00 (finishing next
    cycle), chain 2 -> 00, chain 3 -> 11 (2+ cycles). The paper selects
    instruction i+1 (age 0110, chain 1): the oldest among the entries
    whose priority class is highest.
    """

    def entries(self):
        return [
            SelectableEntry(chain=0, age=0b0101, payload="i"),
            SelectableEntry(chain=1, age=0b0110, payload="i+1"),
            SelectableEntry(chain=2, age=0b1001, payload="i+4"),
            SelectableEntry(chain=3, age=0b1010, payload="i+5"),
            SelectableEntry(chain=0, age=0b0111, payload="i+2"),
            SelectableEntry(chain=2, age=0b1000, payload="i+3"),
        ]

    def chain_completion(self, cycle):
        # Codes: chain0 finished (01), chain1 finishes next cycle (00),
        # chain2 finishes next cycle (00), chain3 needs 2+ cycles (11).
        return {0: cycle, 1: cycle + 1, 2: cycle + 1, 3: cycle + 4}

    def test_selects_i_plus_1(self):
        cycle = 10
        pick = select_entry(self.entries(), self.chain_completion(cycle), cycle)
        assert pick is not None
        assert pick.payload == "i+1"

    def test_chain3_never_selected(self):
        cycle = 10
        entries = [e for e in self.entries() if e.chain == 3]
        assert select_entry(entries, self.chain_completion(cycle), cycle) is None

    def test_oldest_wins_within_class(self):
        cycle = 10
        entries = [e for e in self.entries() if e.chain == 2]  # i+3, i+4
        pick = select_entry(entries, self.chain_completion(cycle), cycle)
        assert pick.payload == "i+3"  # age 1000 < 1001


class TestSelectEntry:
    def test_empty_queue(self):
        assert select_entry([], {}, 0) is None

    def test_unknown_chain_treated_as_finished(self):
        entry = SelectableEntry(chain=9, age=1)
        assert select_entry([entry], {}, 0) is entry

    def test_first_time_beats_older_finished(self):
        finishing = SelectableEntry(chain=1, age=50)
        finished_old = SelectableEntry(chain=0, age=1)
        pick = select_entry([finished_old, finishing], {0: 0, 1: 6}, cycle=5)
        assert pick is finishing
