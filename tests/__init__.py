"""Test package for the repro reproduction."""
