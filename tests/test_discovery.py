"""Tests for the divergence-discovery subsystem.

The integration spine: arm the known injected fault, run a budgeted
campaign over a narrowed space, and prove the loop *finds* the planted
bug, *minimizes* it to a strictly smaller witness, *persists* a
replayable corpus, and replays warm with zero simulations and a
byte-identical artifact — then prove a clean campaign over every oracle
finds nothing.
"""

import json
import os

import pytest

from repro.common import faults
from repro.common.config import default_config
from repro.common.errors import ConfigurationError
from repro.common.stats import SimulationStats, StatCounters
from repro.discover import (
    ORACLES,
    DiscoverySettings,
    check_estimate_record,
    check_invariants,
    load_corpus,
    plan_for,
    replay_witness,
    resolve_oracles,
    run_discovery,
    witness_key,
)
from repro.discover.__main__ import main
from repro.experiments import IQ_64_64
from repro.experiments.runner import RunScale, simulate_sampled_pair
from repro.experiments.store import ResultStore, result_key
from repro.explore.space import default_space
from repro.sampling import MetricEstimate
from repro.workloads.suites import get_profile

FAULT = faults.SKIP_IDLE_UNDERCOUNT


@pytest.fixture
def clean_faults():
    """Guarantee fault state is restored no matter what a test does."""
    saved = os.environ.get(faults.ENV_VAR)
    yield
    if saved is None:
        os.environ.pop(faults.ENV_VAR, None)
    else:
        os.environ[faults.ENV_VAR] = saved


class TestFaultRegistry:
    def test_activate_arms_and_disarms_via_env(self, clean_faults):
        assert faults.activate([FAULT]) == (FAULT,)
        assert faults.is_active(FAULT)
        assert os.environ[faults.ENV_VAR] == FAULT
        assert faults.activate(None) == ()
        assert not faults.is_active(FAULT)
        assert faults.ENV_VAR not in os.environ

    def test_unknown_fault_rejected_without_side_effects(self, clean_faults):
        with pytest.raises(ConfigurationError):
            faults.activate(["no-such-fault"])
        assert faults.active_faults() == ()

    def test_env_parsing_sorts_and_dedupes(self, clean_faults):
        os.environ[faults.ENV_VAR] = f" {FAULT} , {FAULT},"
        assert faults.active_faults() == (FAULT,)


class TestCacheKeySeparation:
    CONFIG = default_config(IQ_64_64)
    PROFILE = get_profile("gzip")
    SCALE = RunScale(num_instructions=1000, warmup_instructions=500, seed=3)

    def key(self, **kwargs):
        return result_key(self.CONFIG, self.PROFILE, self.SCALE, **kwargs)

    def test_salt_partitions_the_key_space(self):
        assert self.key() != self.key(salt="discover:kernel=naive")
        assert self.key(salt="a") != self.key(salt="b")

    def test_armed_faults_never_alias_clean_keys(self, clean_faults):
        clean = self.key()
        faults.activate([FAULT])
        assert self.key() != clean
        faults.activate(None)
        assert self.key() == clean

    def test_runner_key_salt_flows_into_store_keys(self):
        from repro.experiments.runner import ExperimentRunner

        plain = ExperimentRunner(scale=self.SCALE, store=False)
        salted = ExperimentRunner(scale=self.SCALE, store=False,
                                  key_salt="discover:exec=serial")
        assert plain.store_key("gzip", IQ_64_64) != salted.store_key(
            "gzip", IQ_64_64
        )


def fabricated_stats(**overrides):
    values = {
        "cycles": 1000,
        "committed_instructions": 800,
        "fetched_instructions": 900,
        "dispatch_stall_cycles": 50,
        "branch_predictions": 100,
        "branch_mispredictions": 10,
    }
    events = {
        "cycles": 1000,
        "committed": 800,
        "instructions_issued": 850,
        "iq_wakeup_broadcasts": 500,
        "iq_wakeup_comparisons": 9000,
    }
    events.update(overrides.pop("events", {}))
    values.update(overrides)
    return SimulationStats(events=StatCounters.from_dict(events), **values)


class TestInvariantChecks:
    CONFIG = default_config(IQ_64_64)

    def test_honest_stats_pass(self):
        assert check_invariants(fabricated_stats(), self.CONFIG) == []

    def test_event_scalar_desync_caught(self):
        broken = fabricated_stats(events={"cycles": 999})
        assert any("events[cycles]" in v
                   for v in check_invariants(broken, self.CONFIG))
        broken = fabricated_stats(events={"committed": 1})
        assert any("events[committed]" in v
                   for v in check_invariants(broken, self.CONFIG))

    def test_negative_counter_caught(self):
        broken = fabricated_stats(events={"iq_buff_read": -4})
        assert any("negative" in v
                   for v in check_invariants(broken, self.CONFIG))

    def test_impossible_ipc_caught(self):
        broken = fabricated_stats(committed_instructions=20000,
                                  events={"committed": 20000})
        assert any("commit width" in v
                   for v in check_invariants(broken, self.CONFIG))

    def test_mispredictions_exceeding_predictions_caught(self):
        broken = fabricated_stats(branch_mispredictions=200)
        assert any("mispredictions" in v
                   for v in check_invariants(broken, self.CONFIG))

    def test_wakeup_bounds_caught(self):
        broken = fabricated_stats(events={"iq_wakeup_broadcasts": 10**7})
        assert any("iq_wakeup_broadcasts" in v
                   for v in check_invariants(broken, self.CONFIG))
        broken = fabricated_stats(events={"iq_wakeup_comparisons": 10**9})
        assert any("iq_wakeup_comparisons" in v
                   for v in check_invariants(broken, self.CONFIG))


class TestEstimateRecordChecks:
    SCALE = RunScale(num_instructions=600, warmup_instructions=300, seed=11)

    @pytest.fixture(scope="class")
    def sampled(self):
        plan = plan_for(self.SCALE)
        record, __ = simulate_sampled_pair("mcf", IQ_64_64, self.SCALE, plan)
        return record

    def test_real_record_passes(self, sampled):
        plan = plan_for(self.SCALE)
        assert check_estimate_record(sampled, plan, self.SCALE) == []

    def test_malformed_interval_caught(self, sampled):
        plan = plan_for(self.SCALE)
        original = sampled.estimates["ipc"]
        sampled.estimates["ipc"] = MetricEstimate(
            mean=original.mean, std_error=original.std_error,
            ci_low=original.mean + 1.0, ci_high=original.mean + 2.0,
        )
        try:
            violations = check_estimate_record(sampled, plan, self.SCALE)
        finally:
            sampled.estimates["ipc"] = original
        assert any("malformed" in v for v in violations)

    def test_missing_widening_caught(self, sampled):
        plan = plan_for(self.SCALE)
        original = sampled.estimates["cpi"]
        sampled.estimates["cpi"] = MetricEstimate(
            mean=original.mean, std_error=original.std_error,
            ci_low=original.mean, ci_high=original.mean,
        )
        try:
            violations = check_estimate_record(sampled, plan, self.SCALE)
        finally:
            sampled.estimates["cpi"] = original
        assert any("widening" in v for v in violations)

    def test_window_bookkeeping_caught(self, sampled):
        plan = plan_for(self.SCALE)
        dropped = sampled.windows.pop()
        try:
            violations = check_estimate_record(sampled, plan, self.SCALE)
        finally:
            sampled.windows.append(dropped)
        assert any("window" in v for v in violations)

    def test_region_mismatch_caught(self, sampled):
        plan = plan_for(self.SCALE)
        sampled.total_instructions += 7
        try:
            violations = check_estimate_record(sampled, plan, self.SCALE)
        finally:
            sampled.total_instructions -= 7
        assert any("total_instructions" in v for v in violations)


class TestPlanFor:
    @pytest.mark.parametrize("instructions", [500, 800, 1200, 1500, 6000])
    def test_derived_plan_fits_every_legal_scale(self, instructions):
        scale = RunScale(instructions, instructions // 2, seed=11)
        plan = plan_for(scale)
        plan.validate()
        windows = plan.slice_windows(scale.warmup_instructions,
                                     scale.num_instructions)
        assert len(windows) == plan.num_slices


class TestWitnessKeys:
    BASE = {
        "oracle": "kernel_equivalence",
        "assignment": {"kind": "issuefifo", "benchmark": "mcf"},
        "scale": {"num_instructions": 600, "warmup_instructions": 300,
                  "seed": 11},
        "faults": [FAULT],
    }

    def test_key_ignores_diagnostics_and_version(self):
        a = dict(self.BASE, detail=["x"], simulator_version="v1")
        b = dict(self.BASE, detail=["y"], simulator_version="v2")
        assert witness_key(a) == witness_key(b)

    def test_key_tracks_reproduction_inputs(self):
        base = witness_key(self.BASE)
        assert witness_key(dict(self.BASE, oracle="serial_parallel")) != base
        assert witness_key(
            dict(self.BASE, scale={"num_instructions": 700,
                                   "warmup_instructions": 350, "seed": 11})
        ) != base
        assert witness_key(dict(self.BASE, faults=[])) != base


class TestOracleSelection:
    def test_default_is_every_oracle_in_canonical_order(self):
        assert [o.name for o in resolve_oracles(None)] == list(ORACLES)

    def test_filter_keeps_canonical_order_and_dedupes(self):
        picked = resolve_oracles("sampling_ci,kernel_equivalence,sampling_ci")
        assert [o.name for o in picked] == ["kernel_equivalence", "sampling_ci"]

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_oracles("kernel_equivalence,bogus")


class TestSettings:
    def test_degenerate_budgets_rejected(self):
        with pytest.raises(ConfigurationError):
            DiscoverySettings(rounds=0).validate()
        with pytest.raises(ConfigurationError):
            DiscoverySettings(per_round=0).validate()
        with pytest.raises(ValueError):
            DiscoverySettings(scale=100).validate()


@pytest.fixture(scope="module")
def injected_campaign(tmp_path_factory):
    """One shared injected-fault campaign: found, minimized, persisted."""
    root = tmp_path_factory.mktemp("discover-cache")
    settings = DiscoverySettings(rounds=1, per_round=4, scale=1200, seed=7,
                                 oracles=("kernel_equivalence",))
    saved = os.environ.get(faults.ENV_VAR)
    faults.activate([FAULT])
    try:
        report = run_discovery(
            settings,
            store=ResultStore(root),
            space=default_space(["ptrchase", "gzip"]),
        )
    finally:
        if saved is None:
            os.environ.pop(faults.ENV_VAR, None)
        else:
            os.environ[faults.ENV_VAR] = saved
    return report, root, settings


class TestInjectedDiscovery:
    def test_injected_bug_is_found_and_minimized(self, injected_campaign):
        report, __, settings = injected_campaign
        assert report.witnesses, "campaign missed the planted fault"
        for witness in report.witnesses:
            assert witness["oracle"] == "kernel_equivalence"
            assert witness["faults"] == [FAULT]
            assert witness["detail"], "witness carries no diagnostics"
            # The whole point of minimization: the witness runs a
            # strictly shorter trace than the discovery campaign did.
            assert (witness["minimization"]["scale"]
                    < settings.scale), "witness did not shrink"
            assert witness["scale"]["num_instructions"] == (
                witness["minimization"]["scale"]
            )
            assert isinstance(witness["generalization"], list)

    def test_witness_corpus_is_persisted_content_addressed(
        self, injected_campaign
    ):
        report, root, __ = injected_campaign
        corpus = load_corpus(root)
        assert {w["witness_key"] for w in corpus} == {
            w["witness_key"] for w in report.witnesses
        }
        for witness in corpus:
            assert witness_key(witness) == witness["witness_key"]

    def test_warm_rerun_simulates_nothing_and_is_byte_identical(
        self, injected_campaign, clean_faults
    ):
        report, root, settings = injected_campaign
        faults.activate([FAULT])
        rerun = run_discovery(
            settings,
            store=ResultStore(root),
            space=default_space(["ptrchase", "gzip"]),
        )
        assert rerun.context.simulations() == 0
        assert json.dumps(rerun.payload(), sort_keys=True) == json.dumps(
            report.payload(), sort_keys=True
        )

    def test_witness_replays_armed_and_passes_disarmed(
        self, injected_campaign, clean_faults
    ):
        report, root, __ = injected_campaign
        witness = report.witnesses[0]
        store = ResultStore(root)
        faults.activate(witness["faults"])
        assert replay_witness(witness, store=store), (
            "armed replay must reproduce the divergence"
        )
        faults.activate(None)
        assert replay_witness(witness, store=store) == [], (
            "disarmed replay must run clean"
        )


class TestCleanCampaign:
    def test_all_oracles_find_nothing_and_rerun_warm(self, tmp_path):
        settings = DiscoverySettings(rounds=1, per_round=2, scale=800, seed=5)
        store = ResultStore(tmp_path)
        space = default_space(["gzip", "ammp"])
        cold = run_discovery(settings, store=store, space=space)
        assert cold.witnesses == []
        assert cold.context.simulations() > 0
        warm = run_discovery(settings, store=ResultStore(tmp_path),
                             space=space)
        assert warm.witnesses == []
        assert warm.context.simulations() == 0
        assert warm.payload() == cold.payload()


class TestCli:
    def test_list_oracles(self, capsys):
        assert main(["--list-oracles"]) == 0
        out = capsys.readouterr().out
        for name in ORACLES:
            assert name in out

    def test_conflicting_cache_flags_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--no-cache", "--cache-dir", str(tmp_path)])
        assert exc.value.code == 2

    def test_unknown_inject_rejected(self, clean_faults):
        with pytest.raises(SystemExit) as exc:
            main(["--no-cache", "--inject", "bogus-fault"])
        assert exc.value.code == 2
        assert faults.active_faults() == ()

    def test_unknown_oracle_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["--no-cache", "--oracles", "bogus"])
        assert exc.value.code == 2

    def test_degenerate_scale_rejected(self):
        with pytest.raises(SystemExit) as exc:
            main(["--no-cache", "--scale", "100"])
        assert exc.value.code == 2

    def test_cli_run_writes_artifact_and_restores_fault_state(
        self, tmp_path, capsys, clean_faults
    ):
        code = main([
            "--rounds", "1", "--per-round", "1", "--scale", "600",
            "--seed", "5", "--oracles", "scheme_invariants",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
            "--inject", FAULT,
        ])
        out = capsys.readouterr().out
        # The fault only breaks kernel equivalence; invariants stay
        # green, so this is a clean exit — and the armed fault must not
        # leak out of main().
        assert code == 0
        assert faults.active_faults() == ()
        assert f"armed fault(s): {FAULT}" in out
        assert "simulated" in out
        payload = json.loads(
            (tmp_path / "out" / "findings.json").read_text(encoding="utf-8")
        )
        assert payload["subsystem"] == "repro.discover"
        assert payload["findings"] == []
        assert payload["settings"]["oracles"] == ["scheme_invariants"]
