"""Unit tests for the four issue schemes at the scheme-object level."""

import pytest

from repro.common.config import IssueSchemeConfig, default_config
from repro.common.stats import StatCounters
from repro.core.functional_units import PooledFuPool
from repro.core.lsq import LoadStoreQueue
from repro.core.scoreboard import Scoreboard
from repro.core.uop import InFlight
from repro.isa.opcodes import OpClass
from repro.issue import build_scheme
from repro.issue.base import IssueContext
from repro.issue.conventional import ConventionalIssueQueue
from repro.issue.issuefifo import IssueFifoScheme
from repro.issue.latfifo import LatFifoScheme
from repro.issue.mixbuff import MixBuffScheme

from tests.util import alu, f, fpalu, r


def make_uop(inst, age=None):
    uop = InFlight(inst, [], None, None, 0, age if age is not None else inst.seq, 0)
    return uop


def make_ctx(config, cycle=0):
    scoreboard = Scoreboard(160, 160, 32, 32)
    ctx = IssueContext(
        cycle,
        config,
        scoreboard,
        PooledFuPool(config.fus),
        LoadStoreQueue(),
        lambda uop, cyc: None,
    )
    return ctx


class TestBuildScheme:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("conventional", ConventionalIssueQueue),
            ("issuefifo", IssueFifoScheme),
            ("latfifo", LatFifoScheme),
            ("mixbuff", MixBuffScheme),
        ],
    )
    def test_factory(self, kind, cls):
        scheme_cfg = (
            IssueSchemeConfig(kind=kind)
            if kind == "conventional"
            else IssueSchemeConfig(kind=kind, int_queues=4, fp_queues=4)
        )
        cfg = default_config(scheme_cfg)
        assert isinstance(build_scheme(cfg, StatCounters()), cls)


class TestConventional:
    def make(self, entries=2, unbounded=False):
        cfg = default_config(
            IssueSchemeConfig(
                kind="conventional",
                int_queue_entries=entries,
                fp_queue_entries=entries,
                unbounded=unbounded,
            )
        )
        scheme = ConventionalIssueQueue(cfg, StatCounters())
        scheme.bind_scoreboard(Scoreboard(160, 160, 32, 32))
        return cfg, scheme

    def test_dispatch_stalls_when_full(self):
        __, scheme = self.make(entries=2)
        assert scheme.try_dispatch(make_uop(alu(0, r(1))), 0)
        assert scheme.try_dispatch(make_uop(alu(1, r(2))), 0)
        assert not scheme.try_dispatch(make_uop(alu(2, r(3))), 0)

    def test_sides_have_separate_capacity(self):
        __, scheme = self.make(entries=1)
        assert scheme.try_dispatch(make_uop(alu(0, r(1))), 0)
        assert scheme.try_dispatch(make_uop(fpalu(1, f(1))), 0)
        assert scheme.side_occupancy(False) == 1
        assert scheme.side_occupancy(True) == 1

    def test_unbounded_accepts_rob_worth(self):
        cfg, scheme = self.make(unbounded=True)
        for i in range(cfg.rob_entries):
            assert scheme.try_dispatch(make_uop(alu(i, r(1))), 0)

    def test_out_of_order_issue_skips_unready(self):
        cfg, scheme = self.make(entries=4)
        blocked = make_uop(alu(0, r(1), [r(2)]))
        blocked.src_phys = [(False, 40)]  # never ready
        ready = make_uop(alu(1, r(3)))
        scheme.try_dispatch(blocked, 0)
        scheme.try_dispatch(ready, 0)
        ctx = make_ctx(cfg)
        ctx.scoreboard.mark_pending((False, 40))
        scheme._scoreboard = ctx.scoreboard
        issued = scheme.select_and_issue(ctx)
        assert issued == [ready]

    def test_wakeup_events_count_unready_operands(self):
        cfg, scheme = self.make(entries=4)
        uop = make_uop(alu(0, r(1), [r(2), r(3)]))
        uop.src_phys = [(False, 40), (False, 41)]
        scheme.try_dispatch(uop, 0)
        scheme._scoreboard.mark_pending((False, 40))
        scheme._scoreboard.mark_pending((False, 41))
        scheme.on_result_broadcast(cycle=0, broadcasts=2)
        assert scheme.events.get("iq_wakeup_broadcasts") == 2
        assert scheme.events.get("iq_wakeup_comparisons") == 4  # 2 bc x 2 slots

    def test_no_broadcast_no_events(self):
        __, scheme = self.make()
        scheme.on_result_broadcast(0, 0)
        assert scheme.events.get("iq_wakeup_broadcasts") == 0


class TestIssueFifoScheme:
    def make(self):
        cfg = default_config(
            IssueSchemeConfig(
                kind="issuefifo",
                int_queues=2,
                int_queue_entries=2,
                fp_queues=2,
                fp_queue_entries=2,
            )
        )
        return cfg, IssueFifoScheme(cfg, StatCounters())

    def test_sides_routed_by_op_class(self):
        __, scheme = self.make()
        scheme.try_dispatch(make_uop(alu(0, r(1))), 0)
        scheme.try_dispatch(make_uop(fpalu(1, f(1))), 0)
        assert scheme.int_side.occupancy() == 1
        assert scheme.fp_side.occupancy() == 1

    def test_mispredict_clears_both_tables(self):
        __, scheme = self.make()
        scheme.try_dispatch(make_uop(alu(0, r(1))), 0)
        scheme.try_dispatch(make_uop(fpalu(1, f(1))), 0)
        scheme.on_mispredict_resolved()
        assert scheme.int_side.table.queue_of(r(1)) is None
        assert scheme.fp_side.table.queue_of(f(1)) is None

    def test_regs_ready_write_on_broadcast(self):
        __, scheme = self.make()
        scheme.on_result_broadcast(0, 3)
        assert scheme.events.get("regs_ready_write") == 3


class TestLatFifoScheme:
    def make(self, fp_queues=2, fp_entries=2):
        cfg = default_config(
            IssueSchemeConfig(
                kind="latfifo",
                int_queues=2,
                int_queue_entries=4,
                fp_queues=fp_queues,
                fp_queue_entries=fp_entries,
            )
        )
        return cfg, LatFifoScheme(cfg, StatCounters())

    def test_fp_placement_interleaves_by_estimate(self):
        __, scheme = self.make(fp_queues=1, fp_entries=4)
        slow = make_uop(fpalu(0, f(1), op=OpClass.FP_DIV))  # ready far out
        scheme.try_dispatch(slow, 0)
        fast = make_uop(fpalu(1, f(2), [f(1)], op=OpClass.FP_ALU))
        # fast depends on slow: est issue well after slow's -> same queue.
        assert scheme.try_dispatch(fast, 0)
        assert fast.queue_index == slow.queue_index

    def test_fp_same_cycle_ready_instructions_need_new_queue(self):
        __, scheme = self.make(fp_queues=2, fp_entries=4)
        a = make_uop(fpalu(0, f(1)))
        b = make_uop(fpalu(1, f(2)))  # same estimated issue cycle as a
        scheme.try_dispatch(a, 0)
        scheme.try_dispatch(b, 0)
        assert a.queue_index != b.queue_index

    def test_stalls_when_no_queue_qualifies(self):
        __, scheme = self.make(fp_queues=1, fp_entries=4)
        a = make_uop(fpalu(0, f(1)))
        b = make_uop(fpalu(1, f(2)))
        scheme.try_dispatch(a, 0)
        assert not scheme.try_dispatch(b, 0)  # queue tail has same estimate

    def test_est_issue_recorded(self):
        __, scheme = self.make()
        uop = make_uop(fpalu(0, f(1)))
        scheme.try_dispatch(uop, 5)
        assert uop.est_issue_cycle == 6


class TestMixBuffScheme:
    def make(self, fp_queues=2, fp_entries=4, max_chains=None):
        cfg = default_config(
            IssueSchemeConfig(
                kind="mixbuff",
                int_queues=2,
                int_queue_entries=4,
                fp_queues=fp_queues,
                fp_queue_entries=fp_entries,
                max_chains_per_queue=max_chains,
            )
        )
        return cfg, MixBuffScheme(cfg, StatCounters())

    def test_dependent_fp_ops_share_chain(self):
        __, scheme = self.make()
        a = make_uop(fpalu(0, f(1)))
        b = make_uop(fpalu(1, f(2), [f(1)]))
        scheme.try_dispatch(a, 0)
        scheme.try_dispatch(b, 0)
        assert (a.queue_index, a.chain_id) == (b.queue_index, b.chain_id)

    def test_independent_chains_balance_across_queues(self):
        __, scheme = self.make(fp_queues=2)
        uops = [make_uop(fpalu(i, f(i))) for i in range(4)]
        for uop in uops:
            scheme.try_dispatch(uop, 0)
        # chain 0 of queue 0, chain 0 of queue 1, chain 1 of queue 0, ...
        assert (uops[0].queue_index, uops[0].chain_id) == (0, 0)
        assert (uops[1].queue_index, uops[1].chain_id) == (1, 0)
        assert (uops[2].queue_index, uops[2].chain_id) == (0, 1)
        assert (uops[3].queue_index, uops[3].chain_id) == (1, 1)

    def test_chain_cap_stalls_dispatch(self):
        __, scheme = self.make(fp_queues=1, fp_entries=8, max_chains=2)
        for i in range(2):
            assert scheme.try_dispatch(make_uop(fpalu(i, f(i))), 0)
        assert not scheme.try_dispatch(make_uop(fpalu(2, f(2))), 0)
        assert scheme.fp_side.dispatch_stalls == 1

    def test_one_issue_per_queue_per_cycle(self):
        cfg, scheme = self.make(fp_queues=1, fp_entries=8)
        ready = [make_uop(fpalu(i, f(i))) for i in range(3)]
        for uop in ready:
            scheme.try_dispatch(uop, 0)
            uop.src_phys = []
        ctx = make_ctx(cfg, cycle=5)
        issued = scheme.select_and_issue(ctx)
        fp_issued = [u for u in issued if u.op.is_fp]
        assert len(fp_issued) == 1
        assert fp_issued[0] is ready[0]  # oldest first

    def test_failed_selection_marks_delayed(self):
        cfg, scheme = self.make(fp_queues=1, fp_entries=8)
        blocked = make_uop(fpalu(0, f(1), [f(2)]))
        scheme.try_dispatch(blocked, 0)
        blocked.src_phys = [(True, 40)]
        ctx = make_ctx(cfg, cycle=5)
        ctx.scoreboard.mark_pending((True, 40))
        # Starter operand unscheduled -> chain reads not-ready -> nothing
        # is selected at all (no wasted slot).
        assert scheme.select_and_issue(ctx) == []
        # Once the operand is scheduled but not ready, selection happens
        # and failure marks the entry delayed.
        ctx.scoreboard.set_ready((True, 40), 100)
        ctx2 = make_ctx(cfg, cycle=99)
        ctx2.scoreboard.set_ready((True, 40), 100)
        assert scheme.select_and_issue(ctx2) == []
        assert blocked.delayed

    def test_chain_retired_after_drain(self):
        cfg, scheme = self.make(fp_queues=1, fp_entries=8)
        uop = make_uop(fpalu(0, f(1)))
        scheme.try_dispatch(uop, 0)
        uop.src_phys = []
        ctx = make_ctx(cfg, cycle=5)
        assert scheme.select_and_issue(ctx) == [uop]
        assert scheme.fp_side.live_chains() == 0
        assert scheme.fp_side.table.chain_of(f(1)) is None

    def test_int_side_is_plain_issuefifo(self):
        __, scheme = self.make()
        a = make_uop(alu(0, r(1)))
        scheme.try_dispatch(a, 0)
        assert scheme.int_side.occupancy() == 1
        assert a.chain_id is None
