"""Tests for profiles, the trace generator and the benchmark suites."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, UnknownBenchmarkError
from repro.isa.opcodes import OpClass
from repro.workloads.generator import build_static_program, generate_trace
from repro.workloads.profiles import (
    BranchBehavior,
    MemoryBehavior,
    OperationMix,
    WorkloadProfile,
)
from repro.workloads.suites import (
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    all_profiles,
    get_profile,
    specfp2000,
    specint2000,
)


class TestOperationMix:
    def test_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            OperationMix(int_alu=0.5, load=0.2).validate()

    def test_needs_computation(self):
        with pytest.raises(ConfigurationError):
            OperationMix(load=0.5, store=0.3, branch=0.2).validate()

    def test_fp_fraction(self):
        mix = OperationMix(int_alu=0.4, fp_alu=0.3, fp_mul=0.2, load=0.1)
        assert mix.fp_fraction == pytest.approx(0.5)


class TestSuites:
    def test_counts_match_paper(self):
        assert len(INT_BENCHMARKS) == 12
        assert len(FP_BENCHMARKS) == 14

    def test_paper_benchmark_names(self):
        assert "mcf" in INT_BENCHMARKS
        assert "eon" in INT_BENCHMARKS
        assert "swim" in FP_BENCHMARKS
        assert "sixtrack" in FP_BENCHMARKS

    def test_all_profiles_validate(self):
        for profile in all_profiles():
            profile.validate()

    def test_int_suite_has_narrow_ddgs(self):
        assert all(p.num_chains <= 8 for p in specint2000())

    def test_fp_suite_has_wide_ddgs(self):
        assert all(p.num_chains >= 10 for p in specfp2000())

    def test_fp_profiles_have_fp_work(self):
        assert all(p.mix.fp_fraction > 0.3 for p in specfp2000())

    def test_eon_has_fp_work(self):
        assert get_profile("eon").mix.fp_fraction > 0.1

    def test_unknown_benchmark(self):
        with pytest.raises(UnknownBenchmarkError):
            get_profile("doom")

    def test_as_dict_summary(self):
        d = get_profile("swim").as_dict()
        assert d["suite"] == "fp"
        assert d["num_chains"] == 20


class TestGenerator:
    def test_requested_length(self):
        trace = generate_trace(get_profile("gzip"), 500, seed=3)
        assert len(trace) == 500

    def test_deterministic(self):
        a = generate_trace(get_profile("swim"), 400, seed=3)
        b = generate_trace(get_profile("swim"), 400, seed=3)
        assert [str(i) for i in a] == [str(i) for i in b]

    def test_seed_changes_trace(self):
        a = generate_trace(get_profile("swim"), 400, seed=3)
        b = generate_trace(get_profile("swim"), 400, seed=4)
        assert [str(i) for i in a] != [str(i) for i in b]

    def test_traces_validate(self):
        for name in ("gzip", "mcf", "swim", "eon", "lucas"):
            generate_trace(get_profile(name), 600, seed=7).validate()

    def test_mix_approximately_respected(self):
        profile = get_profile("swim")
        trace = generate_trace(profile, 4000, seed=5)
        load_frac = trace.fraction([OpClass.LOAD, OpClass.FP_LOAD])
        assert load_frac == pytest.approx(profile.mix.load, abs=0.05)
        fp_frac = trace.fraction([OpClass.FP_ALU, OpClass.FP_MUL, OpClass.FP_DIV])
        assert fp_frac == pytest.approx(profile.mix.fp_fraction, abs=0.06)

    def test_fp_suite_memory_ops_are_fp_class(self):
        trace = generate_trace(get_profile("swim"), 600, seed=5)
        histogram = trace.op_histogram()
        assert OpClass.FP_LOAD in histogram
        assert OpClass.LOAD not in histogram

    def test_pc_stream_repeats_loop_body(self):
        profile = get_profile("gzip")
        trace = generate_trace(profile, profile.loop_body_size * 3, seed=5)
        body = profile.loop_body_size
        assert trace[0].pc == trace[body].pc == trace[2 * body].pc

    def test_addresses_within_working_set(self):
        profile = get_profile("gzip")
        trace = generate_trace(profile, 2000, seed=5)
        ws = profile.memory.working_set_bytes
        base = 0x1000_0000
        for inst in trace:
            if inst.mem_addr is not None:
                assert base <= inst.mem_addr < base + 2 * ws

    def test_too_many_chains_rejected(self):
        profile = dataclasses.replace(get_profile("swim"), num_chains=64)
        with pytest.raises(ConfigurationError):
            build_static_program(profile, seed=1)

    def test_loopback_branch_present(self):
        program = build_static_program(get_profile("gzip"), seed=1)
        assert program.bodies[0][-1].is_loop_back

    def test_code_footprint_multiple_bodies(self):
        program = build_static_program(get_profile("gcc"), seed=1)
        assert len(program.bodies) == get_profile("gcc").code_footprint_loops

    @given(
        chains=st.integers(2, 20),
        seed=st.integers(0, 1000),
        carried=st.floats(0.0, 1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_profiles_generate_valid_traces(self, chains, seed, carried):
        profile = WorkloadProfile(
            name="prop",
            suite="fp",
            num_chains=chains,
            mix=OperationMix(
                int_alu=0.2, fp_alu=0.3, fp_mul=0.2, load=0.2, store=0.05, branch=0.05
            ),
            memory=MemoryBehavior(working_set_bytes=64 * 1024),
            branches=BranchBehavior(),
            loop_body_size=64,
            loop_carried_fraction=carried,
        )
        trace = generate_trace(profile, 300, seed=seed)
        trace.validate()
        assert len(trace) == 300
