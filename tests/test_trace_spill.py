"""Tests for trace spill files and the source-derived version tag."""

import pickle

from repro.experiments.store import SIMULATOR_VERSION_TAG, simulator_sources_digest
from repro.workloads.generator import generate_trace
from repro.workloads.spill import (
    SPILL_FORMAT_VERSION,
    SPILL_MAGIC,
    load_trace,
    materialize_trace,
    trace_spill_key,
    trace_spill_path,
)
from repro.workloads.suites import get_profile


class TestTraceSpill:
    def test_materialize_then_load_round_trips(self, tmp_path):
        profile = get_profile("gzip")
        trace = materialize_trace(tmp_path, profile, 800, 5)
        assert trace_spill_path(tmp_path, profile, 800, 5).exists()
        loaded = load_trace(tmp_path, profile, 800, 5)
        assert loaded is not None
        assert [str(i) for i in loaded] == [str(i) for i in trace]

    def test_spilled_trace_equals_fresh_generation(self, tmp_path):
        profile = get_profile("art")
        materialize_trace(tmp_path, profile, 600, 9)
        loaded = load_trace(tmp_path, profile, 600, 9)
        fresh = generate_trace(profile, 600, seed=9)
        assert [str(i) for i in loaded] == [str(i) for i in fresh]

    def test_missing_file_is_a_miss(self, tmp_path):
        assert load_trace(tmp_path, get_profile("gzip"), 800, 5) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        profile = get_profile("gzip")
        path = trace_spill_path(tmp_path, profile, 800, 5)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        assert load_trace(tmp_path, profile, 800, 5) is None

    def test_mismatched_metadata_is_a_miss(self, tmp_path):
        profile = get_profile("gzip")
        other = generate_trace(get_profile("art"), 800, seed=5)
        path = trace_spill_path(tmp_path, profile, 800, 5)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps(other))
        assert load_trace(tmp_path, profile, 800, 5) is None

    def test_spill_file_carries_magic_and_version(self, tmp_path):
        profile = get_profile("gzip")
        materialize_trace(tmp_path, profile, 800, 5)
        blob = trace_spill_path(tmp_path, profile, 800, 5).read_bytes()
        assert blob.startswith(SPILL_MAGIC)
        header_version = int.from_bytes(
            blob[len(SPILL_MAGIC) : len(SPILL_MAGIC) + 2], "big"
        )
        assert header_version == SPILL_FORMAT_VERSION

    def test_stale_format_version_is_a_miss(self, tmp_path):
        profile = get_profile("gzip")
        materialize_trace(tmp_path, profile, 800, 5)
        path = trace_spill_path(tmp_path, profile, 800, 5)
        blob = path.read_bytes()
        stale = (SPILL_FORMAT_VERSION - 1).to_bytes(2, "big")
        path.write_bytes(SPILL_MAGIC + stale + blob[len(SPILL_MAGIC) + 2 :])
        assert load_trace(tmp_path, profile, 800, 5) is None
        # Re-materializing heals the stale file in place.
        materialize_trace(tmp_path, profile, 800, 5)
        assert load_trace(tmp_path, profile, 800, 5) is not None

    def test_legacy_pickle_spill_is_a_miss(self, tmp_path):
        profile = get_profile("gzip")
        trace = generate_trace(profile, 800, seed=5)
        path = trace_spill_path(tmp_path, profile, 800, 5)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps(trace))  # pre-versioning format
        assert load_trace(tmp_path, profile, 800, 5) is None

    def test_truncated_payload_is_a_miss(self, tmp_path):
        profile = get_profile("gzip")
        materialize_trace(tmp_path, profile, 800, 5)
        path = trace_spill_path(tmp_path, profile, 800, 5)
        path.write_bytes(path.read_bytes()[:-20])
        assert load_trace(tmp_path, profile, 800, 5) is None

    def test_key_depends_on_all_inputs(self):
        gzip, art = get_profile("gzip"), get_profile("art")
        keys = {
            trace_spill_key(gzip, 800, 5),
            trace_spill_key(art, 800, 5),
            trace_spill_key(gzip, 900, 5),
            trace_spill_key(gzip, 800, 6),
        }
        assert len(keys) == 4


class TestSourceDerivedVersionTag:
    def test_tag_embeds_source_digest(self):
        assert SIMULATOR_VERSION_TAG.startswith("abella04-sim-src-")
        assert simulator_sources_digest()[:16] in SIMULATOR_VERSION_TAG

    def test_digest_is_deterministic(self):
        assert simulator_sources_digest() == simulator_sources_digest()
