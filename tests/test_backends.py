"""Backend-contract tests: registry, codegen cache, SoA adapters.

Bit identity of the backends against the naive reference lives in
``tests/test_kernel_equivalence.py``; this module covers the machinery
around them — the backend registry and its error shape, the
content-addressed generated-kernel cache (warm loads perform zero
codegen, damaged files read as misses, stale ``*.tmp`` files are swept,
a changed generator digest orphans old entries), hermetic-by-default
disk gating, and the vector scoreboard's snapshot adapters.
"""

import os
import time

import pytest

from repro.backends import BACKENDS, get_backend
from repro.backends import codegen, kernel_cache
from repro.common.config import (
    KERNEL_SPECIALIZED,
    KERNEL_VECTORIZED,
    VALID_KERNELS,
    default_config,
)
from repro.common.errors import SimulationError
from repro.core.scoreboard import Scoreboard
from repro.experiments import IF_DISTR, IQ_64_64
from repro.experiments.runner import RunScale, simulate_pair


SCALE = RunScale(num_instructions=800, warmup_instructions=400, seed=5)


@pytest.fixture
def kernel_cache_dir(tmp_path, monkeypatch):
    """A fresh kernel-cache root with a clean in-process memo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    kernel_cache.clear_memo()
    yield tmp_path
    kernel_cache.clear_memo()


class TestRegistry:
    def test_backends_cover_the_non_engine_kernels(self):
        assert set(BACKENDS) == {KERNEL_VECTORIZED, KERNEL_SPECIALIZED}
        assert set(BACKENDS) == set(VALID_KERNELS) - {"naive", "skip"}

    def test_backend_name_matches_registry_key(self):
        for name, backend in BACKENDS.items():
            assert backend.name == name

    def test_unknown_kernel_error_shape(self):
        with pytest.raises(SimulationError, match="unknown simulation kernel"):
            get_backend("warp")

    def test_engine_dispatch_rejects_unknown_kernel(self):
        from repro.core import engine
        from repro.core.processor import Processor
        from repro.workloads.generator import generate_trace
        from repro.workloads.suites import get_profile

        trace = generate_trace(get_profile("gzip"), 600, seed=2)
        processor = Processor(default_config(IQ_64_64), trace)
        with pytest.raises(SimulationError, match="unknown simulation kernel"):
            engine.run_kernel(processor, "warp", 600, 10_000, 200)


class TestKernelSpec:
    def test_spec_digest_is_stable_and_geometry_sensitive(self):
        spec_a = codegen.kernel_spec(default_config(IQ_64_64))
        spec_b = codegen.kernel_spec(default_config(IQ_64_64))
        assert codegen.spec_digest(spec_a) == codegen.spec_digest(spec_b)
        other = codegen.kernel_spec(default_config(IF_DISTR))
        assert codegen.spec_digest(spec_a) != codegen.spec_digest(other)

    def test_kernel_excluded_from_spec(self):
        # The knob selects the execution strategy; it must not fork the
        # generated kernel's identity.
        base = default_config(IQ_64_64)
        assert codegen.kernel_spec(base) == codegen.kernel_spec(
            base.with_kernel(KERNEL_SPECIALIZED)
        )


class TestCodegenCache:
    def _spec(self):
        return codegen.kernel_spec(default_config(IQ_64_64))

    def test_warm_run_performs_zero_codegen(self, kernel_cache_dir):
        spec = self._spec()
        kernel_cache.load_kernel_module(spec)
        after_cold = codegen.CODEGEN_RUNS
        # In-process memo hit: no codegen, same module object.
        first = kernel_cache.load_kernel_module(spec)
        assert kernel_cache.load_kernel_module(spec) is first
        assert codegen.CODEGEN_RUNS == after_cold
        # Simulated new process (memo dropped): served from disk, still
        # zero codegen.
        kernel_cache.clear_memo()
        warm = kernel_cache.load_kernel_module(spec)
        assert codegen.CODEGEN_RUNS == after_cold
        assert warm is not first
        assert callable(warm.make_kernel)

    def test_cache_file_is_content_addressed_and_headed(self, kernel_cache_dir):
        spec = self._spec()
        kernel_cache.load_kernel_module(spec)
        path = kernel_cache.kernel_path(spec)
        assert path is not None and path.is_file()
        header = path.read_text(encoding="utf-8").splitlines()[0]
        assert header.startswith(kernel_cache.KERNEL_HEADER_PREFIX)

    def test_damaged_cache_file_reads_as_miss(self, kernel_cache_dir):
        spec = self._spec()
        kernel_cache.load_kernel_module(spec)
        path = kernel_cache.kernel_path(spec)
        # Flip the body without updating the content hash: the loader
        # must regenerate rather than execute tampered source.
        path.write_text(
            path.read_text(encoding="utf-8") + "\n# tampered", encoding="utf-8"
        )
        kernel_cache.clear_memo()
        before = codegen.CODEGEN_RUNS
        module = kernel_cache.load_kernel_module(spec)
        assert codegen.CODEGEN_RUNS == before + 1
        assert callable(module.make_kernel)
        # And the damaged file was healed by the rewrite.
        kernel_cache.clear_memo()
        kernel_cache.load_kernel_module(spec)
        assert codegen.CODEGEN_RUNS == before + 1

    def test_binary_garbage_reads_as_miss(self, kernel_cache_dir):
        spec = self._spec()
        kernel_cache.load_kernel_module(spec)
        path = kernel_cache.kernel_path(spec)
        path.write_bytes(b"\xff\xfe\x00garbage")
        kernel_cache.clear_memo()
        before = codegen.CODEGEN_RUNS
        kernel_cache.load_kernel_module(spec)
        assert codegen.CODEGEN_RUNS == before + 1

    def test_stale_generator_digest_regenerates(self, kernel_cache_dir,
                                                monkeypatch):
        spec = self._spec()
        kernel_cache.load_kernel_module(spec)
        old_path = kernel_cache.kernel_path(spec)
        before = codegen.CODEGEN_RUNS
        # An edited generator produces a new digest: cached kernels from
        # the old generator are orphaned (never served), codegen reruns.
        monkeypatch.setattr(codegen, "generator_digest", lambda: "f" * 64)
        kernel_cache.clear_memo()
        kernel_cache.load_kernel_module(spec)
        assert codegen.CODEGEN_RUNS == before + 1
        new_path = kernel_cache.kernel_path(spec)
        assert new_path.parent != old_path.parent
        assert old_path.is_file() and new_path.is_file()

    def test_stale_tmp_files_are_swept(self, kernel_cache_dir):
        kernels = kernel_cache.cache_root()
        kernels.mkdir(parents=True, exist_ok=True)
        stale = kernels / "orphan.tmp"
        stale.write_text("half-written kernel")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = kernels / "live.tmp"
        fresh.write_text("in-flight write")
        kernel_cache.load_kernel_module(self._spec())
        assert not stale.exists()
        assert fresh.exists()

    def test_no_cache_dir_stays_hermetic(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        kernel_cache.clear_memo()
        try:
            assert kernel_cache.cache_root() is None
            assert kernel_cache.kernel_path(self._spec()) is None
            module = kernel_cache.load_kernel_module(self._spec())
            assert callable(module.make_kernel)
            assert list(tmp_path.iterdir()) == []
        finally:
            kernel_cache.clear_memo()

    def test_specialized_run_populates_the_cache(self, kernel_cache_dir):
        stats, __ = simulate_pair(
            "gzip", IQ_64_64, SCALE, kernel=KERNEL_SPECIALIZED
        )
        assert stats.committed_instructions > 0
        cached = list(kernel_cache.cache_root().rglob("*.py"))
        assert len(cached) == 1


class TestVectorScoreboard:
    def _vector(self):
        from repro.backends.soa import VectorScoreboard

        plain = Scoreboard(8, 8, 4, 4)
        return VectorScoreboard.from_scoreboard(plain)

    def test_mirror_tracks_mutations(self):
        vsb = self._vector()
        vsb.mark_pending((False, 5))
        vsb.set_ready((True, 3), 17)
        assert vsb._vec[vsb.flat_index((True, 3))] == 17
        assert vsb._vec[vsb.flat_index((False, 5))] == vsb._int[5]
        assert vsb.is_ready((True, 3), 17)
        assert not vsb.is_ready((False, 5), 10**9)

    def test_export_restore_roundtrip_rebuilds_mirror(self):
        vsb = self._vector()
        vsb.set_ready((False, 2), 9)
        vsb.mark_pending((True, 1))
        state = vsb.export_state()
        assert all(isinstance(v, int) for v in state["int"] + state["fp"])
        other = self._vector()
        other.restore_state(state)
        assert other.export_state() == state
        assert list(other._vec[: other._n_int]) == state["int"]
        assert other._vec[other.sentinel_index] == 0

    def test_install_is_idempotent(self):
        from repro.backends.vectorized import install_vector_state
        from repro.core.processor import Processor
        from repro.workloads.generator import generate_trace
        from repro.workloads.suites import get_profile

        trace = generate_trace(get_profile("gzip"), 600, seed=2)
        processor = Processor(default_config(IQ_64_64), trace)
        install_vector_state(processor)
        scoreboard = processor.scoreboard
        install_vector_state(processor)
        assert processor.scoreboard is scoreboard
