"""Unit tests for the register → queue/chain mapping tables."""

from repro.common.stats import StatCounters
from repro.issue.mapping import ChainRenameTable, QueueRenameTable

from tests.util import f, r


class TestQueueRenameTable:
    def make(self):
        return QueueRenameTable(StatCounters())

    def test_lookup_after_set(self):
        table = self.make()
        table.set_tail(3, r(5))
        assert table.queue_of(r(5)) == 3

    def test_unknown_register(self):
        assert self.make().queue_of(r(9)) is None

    def test_new_producer_in_same_queue_invalidates_old(self):
        table = self.make()
        table.set_tail(3, r(5))
        table.set_tail(3, r(6))  # new tail of queue 3
        assert table.queue_of(r(5)) is None
        assert table.queue_of(r(6)) == 3

    def test_destless_tail_keeps_previous_marker(self):
        # Stores/branches write nothing into the table, so the previous
        # producer's entry stays valid (the table is indexed by dest).
        table = self.make()
        table.set_tail(3, r(5))
        table.set_tail(3, None)
        assert table.queue_of(r(5)) == 3

    def test_register_remapped_to_new_queue(self):
        table = self.make()
        table.set_tail(3, r(5))
        table.set_tail(4, r(5))
        assert table.queue_of(r(5)) == 4

    def test_int_and_fp_registers_distinct(self):
        table = self.make()
        table.set_tail(1, r(5))
        table.set_tail(2, f(5))
        assert table.queue_of(r(5)) == 1
        assert table.queue_of(f(5)) == 2

    def test_clear_on_mispredict(self):
        table = self.make()
        table.set_tail(3, r(5))
        table.clear()
        assert table.queue_of(r(5)) is None

    def test_queue_emptied_invalidates(self):
        table = self.make()
        table.set_tail(3, r(5))
        table.queue_emptied(3)
        assert table.queue_of(r(5)) is None

    def test_energy_events_counted(self):
        events = StatCounters()
        table = QueueRenameTable(events)
        table.set_tail(1, r(2))
        table.queue_of(r(2))
        assert events.get("qrename_write") == 1
        assert events.get("qrename_read") == 1


class TestChainRenameTable:
    def make(self):
        return ChainRenameTable(StatCounters())

    def test_lookup_after_set(self):
        table = self.make()
        table.set_tail(2, 5, f(7))
        assert table.chain_of(f(7)) == (2, 5)

    def test_chains_within_queue_are_distinct(self):
        table = self.make()
        table.set_tail(2, 0, f(1))
        table.set_tail(2, 1, f(2))
        assert table.chain_of(f(1)) == (2, 0)
        assert table.chain_of(f(2)) == (2, 1)

    def test_new_tail_of_same_chain_invalidates_old(self):
        table = self.make()
        table.set_tail(2, 0, f(1))
        table.set_tail(2, 0, f(2))
        assert table.chain_of(f(1)) is None
        assert table.chain_of(f(2)) == (2, 0)

    def test_chain_retired_invalidates(self):
        table = self.make()
        table.set_tail(2, 0, f(1))
        table.chain_retired(2, 0)
        assert table.chain_of(f(1)) is None

    def test_destless_keeps_marker(self):
        table = self.make()
        table.set_tail(2, 0, f(1))
        table.set_tail(2, 0, None)
        assert table.chain_of(f(1)) == (2, 0)

    def test_clear(self):
        table = self.make()
        table.set_tail(2, 0, f(1))
        table.clear()
        assert table.chain_of(f(1)) is None
