"""Unit tests for counters, stats and seeded RNG streams."""

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import derive_seed, make_rng
from repro.common.stats import SimulationStats, StatCounters, harmonic_mean


class TestStatCounters:
    def test_missing_counter_reads_zero(self):
        assert StatCounters().get("nope") == 0

    def test_add_and_get(self):
        c = StatCounters()
        c.add("x")
        c.add("x", 4)
        assert c.get("x") == 5

    def test_zero_add_does_not_create_counter(self):
        c = StatCounters()
        c.add("x", 0)
        assert len(c) == 0

    def test_merge_sums_counters(self):
        a, b = StatCounters(), StatCounters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_iteration_is_sorted(self):
        c = StatCounters()
        c.add("z")
        c.add("a")
        assert [name for name, __ in c] == ["a", "z"]

    @given(st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 100))))
    def test_counts_match_manual_sum(self, updates):
        c = StatCounters()
        expected = {}
        for name, amount in updates:
            c.add(name, amount)
            expected[name] = expected.get(name, 0) + amount
        for name, total in expected.items():
            assert c.get(name) == total


class TestSimulationStats:
    def test_ipc(self):
        stats = SimulationStats(cycles=100, committed_instructions=250)
        assert stats.ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        assert SimulationStats().ipc == 0.0

    def test_mispredict_rate(self):
        stats = SimulationStats(branch_predictions=50, branch_mispredictions=5)
        assert stats.mispredict_rate == pytest.approx(0.1)

    def test_summary_keys(self):
        summary = SimulationStats(cycles=10, committed_instructions=5).summary()
        assert set(summary) >= {"cycles", "instructions", "ipc"}


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_single_value(self):
        assert harmonic_mean([3.5]) == pytest.approx(3.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20))
    def test_bounded_by_min_and_max(self, values):
        hm = harmonic_mean(values)
        assert min(values) - 1e-9 <= hm <= max(values) + 1e-9


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_labels_give_different_seeds(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_master_seeds_give_different_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_make_rng_streams_reproducible(self):
        a = make_rng(7, "stream")
        b = make_rng(7, "stream")
        assert [a.random() for __ in range(5)] == [b.random() for __ in range(5)]
