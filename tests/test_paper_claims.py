"""End-to-end checks of the paper's qualitative claims.

These use short runs, so thresholds are deliberately loose — the full
benchmark harness (benchmarks/) reproduces the actual figures. What must
hold even at small scale is the *ordering*: who wins and who loses.
"""

import pytest

from repro.common.config import IssueSchemeConfig, default_config
from repro.energy.model import EnergyModel
from repro.experiments import (
    BASELINE_UNBOUNDED,
    IF_DISTR,
    IQ_64_64,
    MB_DISTR,
    ExperimentRunner,
    RunScale,
)

FP_SAMPLE = ["swim", "galgel", "applu", "ammp"]
INT_SAMPLE = ["gzip", "crafty", "vortex"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(RunScale(num_instructions=4000, warmup_instructions=2000, seed=11))


def avg_loss(runner, benches, scheme, baseline=BASELINE_UNBOUNDED):
    return runner.average_loss_pct(benches, scheme, baseline)


class TestSection3Claims:
    def test_issuefifo_loses_more_on_fp_than_int(self, runner):
        int_cfg = IssueSchemeConfig(kind="issuefifo", int_queues=8, int_queue_entries=8,
                                    fp_queues=16, fp_queue_entries=16)
        fp_cfg = IssueSchemeConfig(kind="issuefifo", int_queues=16, int_queue_entries=16,
                                   fp_queues=8, fp_queue_entries=16)
        int_loss = avg_loss(runner, INT_SAMPLE, int_cfg)
        fp_loss = avg_loss(runner, FP_SAMPLE, fp_cfg)
        assert fp_loss > int_loss

    def test_latfifo_beats_issuefifo_on_fp(self, runner):
        kw = dict(int_queues=16, int_queue_entries=16, fp_queues=8, fp_queue_entries=16)
        is_loss = avg_loss(runner, FP_SAMPLE, IssueSchemeConfig(kind="issuefifo", **kw))
        la_loss = avg_loss(runner, FP_SAMPLE, IssueSchemeConfig(kind="latfifo", **kw))
        assert la_loss < is_loss

    def test_mixbuff_close_to_unbounded_baseline(self, runner):
        kw = dict(int_queues=16, int_queue_entries=16, fp_queues=8, fp_queue_entries=16)
        mb_loss = avg_loss(runner, FP_SAMPLE, IssueSchemeConfig(kind="mixbuff", **kw))
        assert mb_loss < 15.0  # paper: ~5% at full scale

    def test_mixbuff_beats_issuefifo_on_fp(self, runner):
        kw = dict(int_queues=16, int_queue_entries=16, fp_queues=8, fp_queue_entries=16)
        is_loss = avg_loss(runner, FP_SAMPLE, IssueSchemeConfig(kind="issuefifo", **kw))
        mb_loss = avg_loss(runner, FP_SAMPLE, IssueSchemeConfig(kind="mixbuff", **kw))
        assert mb_loss < is_loss


class TestSection4Claims:
    def test_if_and_mb_identical_on_pure_int(self, runner):
        # Both schemes share the integer side, so integer-only programs
        # behave identically (eon differs: it has FP work).
        for bench in ("gzip", "crafty"):
            assert runner.ipc(bench, IF_DISTR) == pytest.approx(
                runner.ipc(bench, MB_DISTR)
            )

    def test_mb_distr_beats_if_distr_on_fp(self, runner):
        if_loss = avg_loss(runner, FP_SAMPLE, IF_DISTR, IQ_64_64)
        mb_loss = avg_loss(runner, FP_SAMPLE, MB_DISTR, IQ_64_64)
        assert mb_loss < if_loss

    def test_distributed_schemes_use_less_iq_energy(self, runner):
        base_model = EnergyModel(default_config(IQ_64_64))
        for scheme in (IF_DISTR, MB_DISTR):
            model = EnergyModel(default_config(scheme))
            for bench in ("swim", "gzip"):
                base = base_model.energy_pj(
                    runner.run(bench, IQ_64_64).events.as_dict()
                )
                ours = model.energy_pj(runner.run(bench, scheme).events.as_dict())
                assert ours < base

    def test_wakeup_dominates_baseline_fp_breakdown(self, runner):
        from repro.energy.breakdown import breakdown_fractions, energy_breakdown

        model = EnergyModel(default_config(IQ_64_64))
        stats = runner.run("swim", IQ_64_64)
        fractions = breakdown_fractions(
            energy_breakdown(model, stats.events.as_dict())
        )
        assert fractions["wakeup"] == max(fractions.values())
