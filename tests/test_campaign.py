"""Tests for the batch campaign entry point."""

import csv
import json

import pytest

from repro.experiments import figures as fig_mod
from repro.experiments.campaign import (
    ALL_FIGURES,
    export_campaign,
    figure_rows,
    main,
    run_campaign,
)
from repro.experiments.runner import ExperimentRunner, RunScale


@pytest.fixture()
def small(monkeypatch):
    monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
    monkeypatch.setattr(fig_mod, "FP_BENCHMARKS", ["mesa"])
    return ExperimentRunner(RunScale(1200, 600, 7))


class TestCampaign:
    def test_all_figures_listed(self):
        assert ALL_FIGURES == [2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]

    def test_unknown_figure_rejected(self, small):
        with pytest.raises(ValueError):
            run_campaign(small, [5])  # Figure 5 is a worked example, not data

    def test_series_figure_renders(self, small):
        text = run_campaign(small, [2])[2]
        assert "Figure 2" in text
        assert "IssueFIFO_8x8_16x16" in text

    def test_table_figure_renders(self, small):
        text = run_campaign(small, [8])[8]
        assert "HARMEAN" in text

    def test_breakdown_figure_renders(self, small):
        text = run_campaign(small, [9])[9]
        assert "wakeup" in text


class TestCliFilters:
    def test_schemes_filter_runs_warm_only_sweep(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        main(["--scale", "1000", "--figures", "2",
              "--schemes", "IQ_unbounded,IssueFIFO_8x8_16x16",
              "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "warmed 2 (benchmark, scheme) pairs" in out
        assert "Figure 2" not in out  # warm-only: no rendering

    def test_unknown_scheme_name_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        with pytest.raises(SystemExit):
            main(["--scale", "1000", "--figures", "2",
                  "--schemes", "NoSuchScheme", "--cache-dir", str(tmp_path)])

    def test_kernel_flag_accepts_naive(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        main(["--scale", "1000", "--figures", "7", "--kernel", "naive",
              "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "kernel [naive]" in out
        assert "0 skipped" in out


class TestListCatalog:
    def test_list_prints_catalog_and_exits_cleanly(self, capsys):
        main(["--list"])
        out = capsys.readouterr().out
        assert "Campaign catalog" in out
        # Every suite is enumerated...
        for bench in ("gzip", "mcf", "swim", "ptrchase"):
            assert bench in out
        # ...as are figures with titles, scheme names and kernels.
        assert "2: % IPC loss, IssueFIFO, SPECINT" in out
        assert "15: Normalized energy x delay^2" in out
        assert "IQ_64_64" in out and "IssueFIFO_8x8_16x16" in out
        assert "naive" in out and "skip" in out
        assert "sampled (--sampling)" in out

    def test_list_simulates_nothing(self, capsys):
        main(["--list"])
        out = capsys.readouterr().out
        assert "Campaign catalog" in out
        assert "campaign:" not in out  # no footer: nothing ran

    def test_list_rejects_run_flags(self, capsys, tmp_path):
        # --list used to silently ignore run flags; an invocation like
        # `--list --scale 100000` now fails loudly instead of letting
        # the caller believe a run was configured.
        with pytest.raises(SystemExit) as excinfo:
            main(["--list", "--scale", "100000", "--cache-dir", str(tmp_path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--list" in err and "--scale" in err and "--cache-dir" in err
        assert not any(tmp_path.iterdir())  # and nothing was cached

    def test_catalog_schemes_match_figure_matrix(self):
        from repro.common.config import scheme_name
        from repro.experiments.campaign import render_catalog

        listed = render_catalog()
        for __, scheme in fig_mod.required_runs(ALL_FIGURES):
            assert scheme_name(scheme) in listed


class TestVersionTag:
    def test_version_tag_prints_registry_json(self, capsys):
        from repro.backends import BACKENDS
        from repro.common.config import VALID_KERNELS
        from repro.experiments.store import SIMULATOR_VERSION_TAG

        main(["--version-tag"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["simulator_version_tag"] == SIMULATOR_VERSION_TAG
        assert payload["kernels"] == list(VALID_KERNELS)
        assert sorted(payload["backends"]) == sorted(BACKENDS)
        assert payload["sampling_version_tag"].startswith("abella04-sampling")

    def test_version_tag_simulates_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        main(["--version-tag"])
        assert not (tmp_path / "cache").exists()

    def test_version_tag_rejects_other_flags(self, capsys, tmp_path):
        for argv in (
            ["--version-tag", "--scale", "100000"],
            ["--version-tag", "--list"],
            ["--version-tag", "--cache-dir", str(tmp_path)],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert "--version-tag" in capsys.readouterr().err


class TestSamplingCli:
    def test_sampled_campaign_renders_and_reports(self, monkeypatch, tmp_path,
                                                  capsys):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        main(["--scale", "2000", "--figures", "2",
              "--sampling", "slices=4,slice=120,warmup=80",
              "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "sampling [systematic]: 4 slices x 120" in out

    def test_warm_sampled_rerun_executes_nothing(self, monkeypatch, tmp_path,
                                                 capsys):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        args = ["--scale", "2000", "--figures", "2",
                "--sampling", "slices=4,slice=120,warmup=80",
                "--cache-dir", str(tmp_path)]
        main(args)
        capsys.readouterr()
        main(args)
        out = capsys.readouterr().out
        assert "0 simulated" in out

    def test_bad_spec_and_oversized_plan_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--sampling", "bogus=1", "--cache-dir", str(tmp_path)])
        with pytest.raises(SystemExit):
            # 8x200 slices cannot fit scale 1000's 500-instruction region.
            main(["--scale", "1000", "--sampling", "",
                  "--cache-dir", str(tmp_path)])

    def test_validate_requires_sampling(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--sampling-validate", "--cache-dir", str(tmp_path)])

    def test_validate_prints_error_table_and_gates(self, monkeypatch, tmp_path,
                                                   capsys):
        import repro.experiments.campaign as campaign_mod

        monkeypatch.setattr(campaign_mod, "INT_BENCHMARKS", ["gzip"])
        # A loose bound passes and exits zero...
        main(["--scale", "3000", "--benchmarks", "int",
              "--sampling", "slices=4,slice=250,warmup=250,error=0.5",
              "--sampling-validate", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "Sampled vs full IPC" in out
        assert "gzip" in out and "error-bound OK" in out
        # ...an absurdly tight bound trips the gate with exit code 1.
        with pytest.raises(SystemExit) as exc:
            main(["--scale", "3000", "--benchmarks", "int",
                  "--sampling", "slices=4,slice=250,warmup=250,error=0.0001",
                  "--sampling-validate", "--cache-dir", str(tmp_path)])
        assert exc.value.code == 1
        assert "error-bound VIOLATED" in capsys.readouterr().out


class TestOutputExport:
    def test_figure_rows_shapes(self):
        series = figure_rows(2, {"IF_8x8": 12.5})
        assert series == [{"figure": 2, "title": "% IPC loss, IssueFIFO, SPECINT",
                           "series": "IF_8x8", "value": 12.5}]
        table = figure_rows(7, {"IQ_64_64": {"gzip": 1.5}})
        assert table[0]["column"] == "IQ_64_64" and table[0]["row"] == "gzip"
        breakdown = figure_rows(9, {"SPECINT": {"wakeup": 0.4}})
        assert breakdown[0]["suite"] == "SPECINT"
        assert breakdown[0]["component"] == "wakeup"

    def test_export_json_keeps_figure_shapes(self, small, tmp_path):
        run_campaign(small, [2])
        before = small.cache_stats()["simulations"]
        path = tmp_path / "campaign.json"
        export_campaign(small, [2], "json", str(path))
        payload = json.loads(path.read_text())
        assert set(payload) == {"figure_2"}
        assert "IssueFIFO_8x8_16x16" in payload["figure_2"]["data"]
        # The export replays the warm cache: no new simulations.
        assert small.cache_stats()["simulations"] == before

    def test_export_csv_flattens_rows(self, small, tmp_path):
        run_campaign(small, [7])
        path = tmp_path / "campaign.csv"
        export_campaign(small, [7], "csv", str(path))
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert {row["column"] for row in rows} == {"IQ_64_64", "IF_distr", "MB_distr"}
        assert any(row["row"] == "HARMEAN" for row in rows)

    def test_cli_output_flag_writes_artifact(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        out = tmp_path / "figs.json"
        main(["--scale", "1000", "--figures", "2", "--cache-dir",
              str(tmp_path / "cache"), "--output", "json",
              "--output-path", str(out)])
        assert "exported 1 figures" in capsys.readouterr().out
        assert json.loads(out.read_text())["figure_2"]["data"]

    def test_output_path_requires_output(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--output-path", str(tmp_path / "x.json")])

    def test_output_incompatible_with_warm_only_sweep(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--figures", "2", "--schemes", "IQ_unbounded",
                  "--cache-dir", str(tmp_path), "--output", "json"])


class TestRequiredRuns:
    def test_fig7_matrix_is_schemes_times_suite(self, monkeypatch):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip", "crafty"])
        pairs = fig_mod.required_runs([7])
        assert len(pairs) == 2 * len(fig_mod.SCHEMES_SECTION4)
        assert pairs[0][0] == "gzip"

    def test_pairs_are_deduplicated_across_figures(self, monkeypatch):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        monkeypatch.setattr(fig_mod, "FP_BENCHMARKS", ["mesa"])
        # Figures 12-15 share the exact same matrix.
        assert fig_mod.required_runs([12, 13, 14, 15]) == fig_mod.required_runs([12])

    def test_campaign_prefetch_covers_generator_needs(self, small):
        # After rendering via run_campaign (which prefetches), every
        # simulation the generator triggered came through run_many.
        run_campaign(small, [7])
        sims_after_prefetch = small.cache_stats()["simulations"]
        fig_mod.figure7(small)  # pure memory hits now
        assert small.cache_stats()["simulations"] == sims_after_prefetch
