"""Tests for the batch campaign entry point."""

import pytest

from repro.experiments import figures as fig_mod
from repro.experiments.campaign import ALL_FIGURES, main, run_campaign
from repro.experiments.runner import ExperimentRunner, RunScale


@pytest.fixture()
def small(monkeypatch):
    monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
    monkeypatch.setattr(fig_mod, "FP_BENCHMARKS", ["mesa"])
    return ExperimentRunner(RunScale(1200, 600, 7))


class TestCampaign:
    def test_all_figures_listed(self):
        assert ALL_FIGURES == [2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]

    def test_unknown_figure_rejected(self, small):
        with pytest.raises(ValueError):
            run_campaign(small, [5])  # Figure 5 is a worked example, not data

    def test_series_figure_renders(self, small):
        text = run_campaign(small, [2])[2]
        assert "Figure 2" in text
        assert "IssueFIFO_8x8_16x16" in text

    def test_table_figure_renders(self, small):
        text = run_campaign(small, [8])[8]
        assert "HARMEAN" in text

    def test_breakdown_figure_renders(self, small):
        text = run_campaign(small, [9])[9]
        assert "wakeup" in text


class TestCliFilters:
    def test_schemes_filter_runs_warm_only_sweep(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        main(["--scale", "1000", "--figures", "2",
              "--schemes", "IQ_unbounded,IssueFIFO_8x8_16x16",
              "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "warmed 2 (benchmark, scheme) pairs" in out
        assert "Figure 2" not in out  # warm-only: no rendering

    def test_unknown_scheme_name_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        with pytest.raises(SystemExit):
            main(["--scale", "1000", "--figures", "2",
                  "--schemes", "NoSuchScheme", "--cache-dir", str(tmp_path)])

    def test_kernel_flag_accepts_naive(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        main(["--scale", "1000", "--figures", "7", "--kernel", "naive",
              "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "kernel [naive]" in out
        assert "0 skipped" in out


class TestRequiredRuns:
    def test_fig7_matrix_is_schemes_times_suite(self, monkeypatch):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip", "crafty"])
        pairs = fig_mod.required_runs([7])
        assert len(pairs) == 2 * len(fig_mod.SCHEMES_SECTION4)
        assert pairs[0][0] == "gzip"

    def test_pairs_are_deduplicated_across_figures(self, monkeypatch):
        monkeypatch.setattr(fig_mod, "INT_BENCHMARKS", ["gzip"])
        monkeypatch.setattr(fig_mod, "FP_BENCHMARKS", ["mesa"])
        # Figures 12-15 share the exact same matrix.
        assert fig_mod.required_runs([12, 13, 14, 15]) == fig_mod.required_runs([12])

    def test_campaign_prefetch_covers_generator_needs(self, small):
        # After rendering via run_campaign (which prefetches), every
        # simulation the generator triggered came through run_many.
        run_campaign(small, [7])
        sims_after_prefetch = small.cache_stats()["simulations"]
        fig_mod.figure7(small)  # pure memory hits now
        assert small.cache_stats()["simulations"] == sims_after_prefetch
