"""Tests for the content-addressed on-disk result store."""

import dataclasses
import json
import multiprocessing

import pytest

from repro.common.config import IssueSchemeConfig, default_config
from repro.common.stats import SimulationStats, StatCounters
from repro.experiments import IF_DISTR, IQ_64_64
from repro.experiments.runner import RunScale
from repro.experiments.store import (
    SIMULATOR_VERSION_TAG,
    ResultStore,
    result_key,
)
from repro.workloads.suites import get_profile

SCALE = RunScale(num_instructions=1200, warmup_instructions=600, seed=7)


def make_stats() -> SimulationStats:
    events = StatCounters()
    events.add("iq_wakeup", 321)
    events.add("mux_int_alu", 87)
    return SimulationStats(
        cycles=1000,
        committed_instructions=600,
        fetched_instructions=640,
        dispatch_stall_cycles=42,
        branch_predictions=80,
        branch_mispredictions=5,
        events=events,
    )


def key_for(scheme=IQ_64_64, benchmark="gzip", scale=SCALE) -> str:
    return result_key(default_config(scheme), get_profile(benchmark), scale)


class TestStatsRoundTrip:
    def test_to_from_dict_identity(self):
        stats = make_stats()
        clone = SimulationStats.from_dict(stats.to_dict())
        assert clone == stats
        assert clone.to_dict() == stats.to_dict()
        assert clone.events.as_dict() == stats.events.as_dict()

    def test_json_round_trip_is_exact(self):
        stats = make_stats()
        clone = SimulationStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone == stats

    def test_malformed_payload_rejected(self):
        payload = make_stats().to_dict()
        del payload["cycles"]
        with pytest.raises(KeyError):
            SimulationStats.from_dict(payload)
        payload = make_stats().to_dict()
        payload["cycles"] = "1000"
        with pytest.raises(TypeError):
            SimulationStats.from_dict(payload)


class TestStoreRoundTrip:
    def test_save_then_load_is_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        stats = make_stats()
        store.save(key_for(), stats)
        assert store.load(key_for()) == stats

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(tmp_path).load(key_for()) is None

    def test_len_counts_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        assert len(store) == 0
        store.save(key_for(IQ_64_64), make_stats())
        store.save(key_for(IF_DISTR), make_stats())
        assert len(store) == 2


class TestKeySensitivity:
    def test_identical_inputs_share_a_key(self):
        assert key_for() == key_for()

    def test_every_scheme_field_changes_the_key(self):
        base = IssueSchemeConfig(
            kind="issuefifo", int_queues=8, int_queue_entries=8,
            fp_queues=8, fp_queue_entries=16,
        )
        variants = {
            "kind": "mixbuff",
            "int_queues": 4,
            "int_queue_entries": 16,
            "fp_queues": 4,
            "fp_queue_entries": 8,
            "distributed_fus": True,
        }
        for field_name, value in variants.items():
            changed = dataclasses.replace(base, **{field_name: value})
            assert key_for(changed) != key_for(base), field_name

    def test_every_scale_field_changes_the_key(self):
        for field_name, value in (
            ("num_instructions", 2400),
            ("warmup_instructions", 700),
            ("seed", 8),
        ):
            changed = dataclasses.replace(SCALE, **{field_name: value})
            assert key_for(scale=changed) != key_for(scale=SCALE), field_name

    def test_benchmark_profile_changes_the_key(self):
        assert key_for(benchmark="gzip") != key_for(benchmark="mcf")

    def test_table1_knob_changes_the_key(self):
        config = default_config(IQ_64_64)
        deeper_rob = dataclasses.replace(config, rob_entries=512)
        profile = get_profile("gzip")
        assert result_key(config, profile, SCALE) != result_key(
            deeper_rob, profile, SCALE
        )


class TestCorruptionFallback:
    def test_corrupted_json_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats())
        path.write_text("{ not json", encoding="utf-8")
        assert store.load(key_for()) is None

    def test_truncated_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats())
        payload = json.loads(path.read_text(encoding="utf-8"))
        del payload["stats"]["events"]
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.load(key_for()) is None

    def test_non_dict_json_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats())
        path.write_text("null", encoding="utf-8")
        assert store.load(key_for()) is None
        path.write_text('["valid", "json", "wrong", "shape"]', encoding="utf-8")
        assert store.load(key_for()) is None

    def test_events_of_wrong_shape_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats())
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["stats"]["events"] = ["not", "a", "mapping"]
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.load(key_for()) is None

    def test_version_tag_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats())
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == SIMULATOR_VERSION_TAG
        payload["version"] = "abella04-sim-0"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.load(key_for()) is None

    def test_recompute_overwrites_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats())
        path.write_text("garbage", encoding="utf-8")
        stats = make_stats()
        store.save(key_for(), stats)  # what a runner does after the miss
        assert store.load(key_for()) == stats

    def test_truncated_file_bytes_are_a_miss(self, tmp_path):
        # A crash mid-write of a non-atomic copy (or disk-full tail
        # loss) leaves a prefix of valid JSON: must read as a miss.
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats())
        raw = path.read_bytes()
        for cut in (0, 1, len(raw) // 2, len(raw) - 1):
            path.write_bytes(raw[:cut])
            assert store.load(key_for()) is None
            assert store.load_with_extra(key_for()) is None

    def test_binary_garbage_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats())
        path.write_bytes(b"\x00\xff\xfe binary \x9c garbage")
        assert store.load(key_for()) is None

    def test_mistyped_stats_fields_are_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        for field, bad in (("cycles", "1000"), ("committed_instructions", 1.5)):
            path = store.save(key_for(), make_stats())
            payload = json.loads(path.read_text(encoding="utf-8"))
            payload["stats"][field] = bad
            path.write_text(json.dumps(payload), encoding="utf-8")
            assert store.load(key_for()) is None


class TestSampledPayloads:
    """The sampled-estimate side payload: round trip + damage tolerance."""

    def _sampled_extra(self):
        from repro.sampling import SamplingPlan

        plan = SamplingPlan(num_slices=2, slice_instructions=100,
                            warmup_instructions=50)
        estimate = {"mean": 1.5, "std_error": 0.1, "ci_low": 1.2, "ci_high": 1.8}
        return {
            "plan": plan.as_dict(),
            "estimates": {name: dict(estimate) for name in (
                "ipc", "cpi", "energy_per_inst", "energy_delay", "energy_delay2"
            )},
            "windows": [
                {"detail_start": 0, "measure_start": 50, "detail_end": 150},
                {"detail_start": 250, "measure_start": 300, "detail_end": 400},
            ],
            "slice_ipcs": [1.4, 1.6],
            "total_instructions": 600,
            "detailed_instructions": 300,
            "detailed_cycles": 200,
        }

    def test_extra_round_trips_bit_identically(self, tmp_path):
        store = ResultStore(tmp_path)
        extra = self._sampled_extra()
        store.save(key_for(), make_stats(), extra=extra)
        stats, loaded = store.load_with_extra(key_for())
        assert stats == make_stats()
        assert loaded == extra
        from repro.sampling import SampledStats

        rebuilt = SampledStats.from_dict(loaded, stats)
        assert rebuilt.to_dict() == extra

    def test_plain_results_load_with_none_extra(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(key_for(), make_stats())
        stats, extra = store.load_with_extra(key_for())
        assert stats == make_stats() and extra is None

    def test_non_dict_extra_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats(), extra=self._sampled_extra())
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["sampled"] = ["wrong", "shape"]
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.load_with_extra(key_for()) is None
        assert store.load(key_for()) is None

    def test_truncated_sampled_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(key_for(), make_stats(), extra=self._sampled_extra())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 40])
        assert store.load_with_extra(key_for()) is None


def _hammer_one_key(args):
    """Worker for the concurrent-writer test (module-level to pickle)."""
    root, key, cycles = args
    store = ResultStore(root)
    events = StatCounters()
    events.add("iq_wakeup", 321)
    stats = SimulationStats(
        cycles=cycles,
        committed_instructions=600,
        fetched_instructions=640,
        dispatch_stall_cycles=42,
        branch_predictions=80,
        branch_mispredictions=5,
        events=events,
    )
    for __ in range(20):
        store.save(key, stats)
    return cycles


class TestConcurrentWriters:
    """Many processes saving the same key must never tear a read."""

    def test_parallel_same_key_saves_leave_valid_store(self, tmp_path):
        key = key_for()
        # Every writer stores a *valid* payload (differing only in
        # cycles), so whichever save wins, the survivor must parse.
        jobs = [(str(tmp_path), key, 1000 + i) for i in range(4)]
        with multiprocessing.Pool(processes=4) as pool:
            written = pool.map(_hammer_one_key, jobs)
        assert sorted(written) == [1000, 1001, 1002, 1003]
        store = ResultStore(tmp_path)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.cycles in set(written)
        # No torn temp files left behind by the rename dance.
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_tmp_names_embed_pid(self, tmp_path, monkeypatch):
        import os

        from repro.experiments import store as store_mod

        seen = []
        real_mkstemp = store_mod.tempfile.mkstemp

        def spy(**kwargs):
            seen.append(kwargs)
            return real_mkstemp(**kwargs)

        monkeypatch.setattr(store_mod.tempfile, "mkstemp", spy)
        store_mod.atomic_write_json(tmp_path / "ab" / "x.json", {"a": 1})
        (kwargs,) = seen
        assert str(os.getpid()) in kwargs["prefix"]
        assert kwargs["suffix"] == ".tmp"


class TestShardedLayout:
    """Key-prefix sharding for the service store."""

    def test_shards_partition_without_losing_results(self, tmp_path):
        store = ResultStore(tmp_path, shards=8)
        keys = [key_for(scheme, bench)
                for scheme in (IQ_64_64, IF_DISTR)
                for bench in ("gzip", "mcf", "twolf")]
        for key in keys:
            store.save(key, make_stats())
        assert len(store) == len(keys)
        assert sum(store.shard_counts()) == len(keys)
        for key in keys:
            assert store.load(key) == make_stats()
            index = store.shard_index(key)
            assert f"shard-{index:03d}" in str(store._path(key))

    def test_shard_index_is_stable_and_bounded(self, tmp_path):
        store = ResultStore(tmp_path, shards=8)
        key = key_for()
        assert store.shard_index(key) == store.shard_index(key)
        assert 0 <= store.shard_index(key) < 8
        assert store.shard_index(key) == int(key[:8], 16) % 8

    def test_sharded_store_reads_legacy_flat_layout(self, tmp_path):
        # A CLI-populated (unsharded) cache stays warm when the server
        # opens the same directory with shards > 1.
        flat = ResultStore(tmp_path)
        flat.save(key_for(), make_stats())
        sharded = ResultStore(tmp_path, shards=8)
        assert sharded.load(key_for()) == make_stats()
        assert len(sharded) == 1

    def test_unsharded_store_keeps_flat_layout(self, tmp_path):
        store = ResultStore(tmp_path, shards=1)
        path = store.save(key_for(), make_stats())
        assert "shard-" not in str(path)
        assert path.parent.name == key_for()[:2]

    def test_invalid_shard_counts_rejected(self, tmp_path):
        from repro.experiments.store import MAX_SHARDS

        for bad in (0, -4, MAX_SHARDS + 1):
            with pytest.raises(ValueError):
                ResultStore(tmp_path, shards=bad)


class TestStaleTmpSweep:
    """Orphaned atomic-write temp files are reaped at store init."""

    def _orphan(self, directory, name="deadbeef.tmp"):
        import os
        import time

        from repro.experiments.store import STALE_TMP_AGE_SECONDS

        directory.mkdir(parents=True, exist_ok=True)
        path = directory / name
        path.write_text("half-written")
        stale = time.time() - STALE_TMP_AGE_SECONDS - 60
        os.utime(path, (stale, stale))
        return path

    def test_old_orphans_reaped_live_writes_and_results_kept(self, tmp_path):
        from repro.experiments.store import sweep_stale_tmp

        orphan = self._orphan(tmp_path / "ab")
        nested = self._orphan(tmp_path / "traces", name="spill.tmp")
        fresh = tmp_path / "ab" / "inflight.tmp"
        fresh.write_text("live writer")
        result = tmp_path / "ab" / "result.json"
        result.write_text("{}")
        assert sweep_stale_tmp(tmp_path) == 2
        assert not orphan.exists() and not nested.exists()
        assert fresh.exists() and result.exists()

    def test_result_store_init_sweeps(self, tmp_path):
        orphan = self._orphan(tmp_path / "cd")
        ResultStore(tmp_path)
        assert not orphan.exists()

    def test_checkpoint_store_init_sweeps(self, tmp_path):
        from repro.sampling import CheckpointStore

        orphan = self._orphan(tmp_path / "ef")
        CheckpointStore(tmp_path)
        assert not orphan.exists()

    def test_missing_root_is_a_noop(self, tmp_path):
        from repro.experiments.store import sweep_stale_tmp

        assert sweep_stale_tmp(tmp_path / "never-created") == 0
