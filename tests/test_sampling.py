"""Unit tests for the repro.sampling subsystem.

Covers the declarative plan (window selection, spec parsing, cache-key
fingerprinting), the estimator (Student-t math, finite-population
intervals, JSON round trips), functional fast-forward determinism and
checkpointing, and the experiments-layer plumbing (runner cache keys,
sampled results through serial and parallel paths, warm replay).
"""

import json

import pytest

from repro.common.config import default_config
from repro.common.errors import ConfigurationError
from repro.core import engine
from repro.experiments.configs import IF_DISTR, IQ_64_64
from repro.experiments.runner import (
    ExperimentRunner,
    RunScale,
    simulate_pair,
    simulate_sampled_pair,
)
from repro.experiments.store import ResultStore, result_key
from repro.sampling import (
    CheckpointStore,
    FunctionalWarmer,
    MetricEstimate,
    SampledStats,
    SamplingPlan,
    estimate_sampled,
    slice_trace,
    student_t_critical,
)
from repro.workloads.generator import generate_trace
from repro.workloads.suites import get_profile

BENCH = "mcf"
SCALE = RunScale(num_instructions=3000, warmup_instructions=1000, seed=11)
PLAN = SamplingPlan(num_slices=4, slice_instructions=200, warmup_instructions=150)
CONFIG = default_config(IQ_64_64)


class TestSamplingPlan:
    def test_systematic_windows_cover_region_in_order(self):
        windows = PLAN.slice_windows(1000, 3000)
        assert len(windows) == PLAN.num_slices
        previous_start = -1
        for window in windows:
            assert window.detail_start <= window.measure_start < window.detail_end
            assert window.measured == PLAN.slice_instructions
            assert window.warmup <= PLAN.warmup_instructions
            assert window.measure_start >= 1000
            assert window.detail_end <= 3000
            assert window.measure_start > previous_start
            previous_start = window.measure_start

    def test_random_mode_is_seeded_and_stratified(self):
        plan = SamplingPlan(mode="random", num_slices=4, slice_instructions=100,
                            warmup_instructions=50, seed=3)
        first = plan.slice_windows(0, 2000)
        second = plan.slice_windows(0, 2000)
        assert first == second  # deterministic in the seed
        other = SamplingPlan(mode="random", num_slices=4, slice_instructions=100,
                             warmup_instructions=50, seed=4).slice_windows(0, 2000)
        assert other != first  # and the seed matters
        stride = 2000 // 4
        for index, window in enumerate(first):
            assert index * stride <= window.measure_start < (index + 1) * stride

    def test_plan_too_big_for_region_raises(self):
        with pytest.raises(ConfigurationError):
            PLAN.slice_windows(0, PLAN.num_slices * PLAN.slice_instructions - 1)

    def test_validation_rejects_bad_knobs(self):
        for bad in (
            SamplingPlan(mode="nope"),
            SamplingPlan(num_slices=1),
            SamplingPlan(slice_instructions=0),
            SamplingPlan(warmup_instructions=-1),
            SamplingPlan(confidence=0.5),
            SamplingPlan(target_relative_error=0.0),
        ):
            with pytest.raises(ConfigurationError):
                bad.validate()

    def test_spec_parsing_roundtrip_and_errors(self):
        plan = SamplingPlan.from_spec(
            "slices=6,slice=300,warmup=100,mode=random,confidence=0.99,"
            "seed=5,error=0.08"
        )
        assert plan.num_slices == 6
        assert plan.slice_instructions == 300
        assert plan.warmup_instructions == 100
        assert plan.mode == "random"
        assert plan.confidence == 0.99
        assert plan.seed == 5
        assert plan.target_relative_error == 0.08
        assert SamplingPlan.from_spec("") == SamplingPlan()
        with pytest.raises(ConfigurationError):
            SamplingPlan.from_spec("bogus=1")
        with pytest.raises(ConfigurationError):
            SamplingPlan.from_spec("slices")
        with pytest.raises(ConfigurationError):
            SamplingPlan.from_spec("slices=abc")

    def test_plan_changes_cache_key_and_none_preserves_it(self):
        profile = get_profile(BENCH)
        base = result_key(CONFIG, profile, SCALE)
        sampled = result_key(CONFIG, profile, SCALE, sampling=PLAN)
        other = result_key(
            CONFIG, profile, SCALE,
            sampling=SamplingPlan(num_slices=4, slice_instructions=201,
                                  warmup_instructions=150),
        )
        assert len({base, sampled, other}) == 3
        assert base == result_key(CONFIG, profile, SCALE, sampling=None)

    def test_dict_roundtrip(self):
        assert SamplingPlan.from_dict(PLAN.as_dict()) == PLAN


class TestEstimator:
    def test_t_critical_values(self):
        assert student_t_critical(0.95, 1) == pytest.approx(12.706)
        assert student_t_critical(0.95, 9) == pytest.approx(2.262)
        assert student_t_critical(0.99, 100) == pytest.approx(2.576)
        with pytest.raises(ConfigurationError):
            student_t_critical(0.80, 5)

    def test_metric_estimate_contains_and_relative(self):
        estimate = MetricEstimate(mean=2.0, std_error=0.1, ci_low=1.8, ci_high=2.2)
        assert estimate.contains(2.0) and estimate.contains(1.8)
        assert not estimate.contains(2.3)
        assert estimate.relative_halfwidth == pytest.approx(0.1)

    def test_estimates_and_synthetic_stats_are_coherent(self):
        sampled, __ = simulate_sampled_pair(BENCH, IQ_64_64, SCALE, PLAN)
        region = SCALE.num_instructions - SCALE.warmup_instructions
        assert sampled.total_instructions == region
        assert sampled.stats.committed_instructions == region
        # The synthetic IPC is the estimator's point estimate up to the
        # integer rounding of the cycle count.
        assert sampled.stats.ipc == pytest.approx(
            sampled.estimates["ipc"].mean, rel=1e-3
        )
        ipc = sampled.estimates["ipc"]
        assert ipc.ci_low <= ipc.mean <= ipc.ci_high
        assert sampled.detailed_instructions == sum(
            window.detail_end - window.detail_start for window in sampled.windows
        )
        assert 0 < sampled.detailed_cycles

    def test_json_roundtrip_is_lossless(self):
        sampled, __ = simulate_sampled_pair(BENCH, IQ_64_64, SCALE, PLAN)
        payload = json.loads(json.dumps(sampled.to_dict()))
        rebuilt = SampledStats.from_dict(payload, sampled.stats)
        assert rebuilt.to_dict() == sampled.to_dict()
        assert rebuilt.estimates["ipc"] == sampled.estimates["ipc"]

    def test_rejects_empty_and_mismatched_slices(self):
        with pytest.raises(ConfigurationError):
            estimate_sampled(PLAN, CONFIG, [], [], 100)

    def test_degenerate_plans_fail_at_the_estimator_boundary(self):
        # Dataclass construction skips validation, so a plan built
        # directly (not via from_spec/from_dict) can reach the estimator
        # degenerate. A single slice has zero degrees of freedom and an
        # unsupported confidence has no t-table — both must surface as
        # ConfigurationError here, never as IndexError/ZeroDivisionError
        # inside the SEM arithmetic.
        sampled, __ = simulate_sampled_pair(BENCH, IQ_64_64, SCALE, PLAN)
        windows, slices = sampled.windows[:1], [sampled.stats]
        single_slice = SamplingPlan(num_slices=1, slice_instructions=200,
                                    warmup_instructions=150)
        with pytest.raises(ConfigurationError):
            estimate_sampled(single_slice, CONFIG, windows, slices, 2000)
        odd_confidence = SamplingPlan(num_slices=4, slice_instructions=200,
                                      warmup_instructions=150, confidence=0.80)
        with pytest.raises(ConfigurationError):
            estimate_sampled(odd_confidence, CONFIG, sampled.windows,
                             slices * 4, 2000)


class TestFunctionalWarmer:
    def test_state_is_path_independent(self):
        trace = generate_trace(get_profile(BENCH), 2000, seed=7)
        profile = get_profile(BENCH)
        one = FunctionalWarmer(CONFIG, trace, profile=profile, prewarm_seed=7)
        one.state_at(500)
        state_via_stop = one.state_at(1500)
        two = FunctionalWarmer(CONFIG, trace, profile=profile, prewarm_seed=7)
        state_direct = two.state_at(1500)
        assert state_via_stop == state_direct

    def test_rewind_is_rejected(self):
        trace = generate_trace(get_profile(BENCH), 1000, seed=7)
        warmer = FunctionalWarmer(CONFIG, trace)
        warmer.state_at(500)
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            warmer.state_at(100)

    def test_slice_trace_reseqs_and_validates(self):
        trace = generate_trace(get_profile(BENCH), 600, seed=7)
        sub = slice_trace(trace, 100, 300)
        assert len(sub) == 200
        sub.validate()
        assert sub[0].pc == trace[100].pc
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            slice_trace(trace, 500, 400)


class TestCheckpoints:
    def test_checkpoint_hit_resumes_identically(self, tmp_path):
        profile = get_profile(BENCH)
        trace = generate_trace(profile, 2000, seed=7)
        store = CheckpointStore(tmp_path)
        cold = FunctionalWarmer(CONFIG, trace, profile=profile, prewarm_seed=7,
                                checkpoints=store)
        cold_state = cold.state_at(1200)
        assert len(store) == 1
        warm = FunctionalWarmer(CONFIG, trace, profile=profile, prewarm_seed=7,
                                checkpoints=store)
        assert warm.state_at(1200) == cold_state
        # ...and continuing from the restored state matches a straight walk.
        assert warm.state_at(1800) == FunctionalWarmer(
            CONFIG, trace, profile=profile, prewarm_seed=7
        ).state_at(1800)

    def test_checkpoints_are_scheme_independent(self, tmp_path):
        profile = get_profile(BENCH)
        trace = generate_trace(profile, 1500, seed=7)
        store = CheckpointStore(tmp_path)
        FunctionalWarmer(
            default_config(IQ_64_64), trace, profile=profile, prewarm_seed=7,
            checkpoints=store,
        ).state_at(1000)
        other = FunctionalWarmer(
            default_config(IF_DISTR), trace, profile=profile, prewarm_seed=7,
            checkpoints=store,
        )
        assert other.checkpoints.load(other, 1000) is not None

    def test_damaged_checkpoints_read_as_misses(self, tmp_path):
        profile = get_profile(BENCH)
        trace = generate_trace(profile, 1200, seed=7)
        store = CheckpointStore(tmp_path)
        warmer = FunctionalWarmer(CONFIG, trace, profile=profile, prewarm_seed=7,
                                  checkpoints=store)
        warmer.state_at(800)
        (path,) = tmp_path.glob("*/*.json")

        def fresh():
            return FunctionalWarmer(
                CONFIG, trace, profile=profile, prewarm_seed=7, checkpoints=store
            )

        for damage in (
            b"",                                   # truncated to nothing
            b"\x00\x01garbage",                    # binary garbage
            b"[1, 2, 3]",                          # wrong JSON shape
            json.dumps({"version": "other"}).encode(),   # version mismatch
            json.dumps({"version": "x", "position": 1}).encode(),
        ):
            path.write_bytes(damage)
            assert store.load(fresh(), 800) is None
        # Parseable-but-wrong payloads are misses too: out-of-range
        # counters, shortened predictor tables, wrong cache set counts.
        def damaged(mutate):
            fresh().state_at(800)  # rewrite a good checkpoint
            payload = json.loads(path.read_text())
            mutate(payload)
            path.write_text(json.dumps(payload))
            return store.load(fresh(), 800)

        assert damaged(lambda p: p["predictor"]["gshare"].__setitem__(0, 7)) is None
        assert damaged(lambda p: p["predictor"]["gshare"].pop()) is None
        assert damaged(lambda p: p["predictor"]["btb"].pop()) is None
        assert damaged(
            lambda p: p["predictor"]["btb"][0].append(["garbage"])
        ) is None
        assert damaged(lambda p: p["hierarchy"][0].pop()) is None

        def first_occupied_set(payload):
            return next(ways for ways in payload["hierarchy"][1] if ways)

        assert damaged(
            lambda p: first_occupied_set(p).extend([1] * 16)
        ) is None
        # Mis-typed tags must be a miss, not a silently-wrong warm state.
        assert damaged(
            lambda p: first_occupied_set(p).__setitem__(0, "123")
        ) is None
        # ...and an undamaged rewrite still loads.
        fresh().state_at(800)
        assert store.load(fresh(), 800) is not None


class TestRunnerSampling:
    def test_serial_cold_warm_and_parallel_agree(self, tmp_path):
        store = ResultStore(tmp_path)
        pairs = [(BENCH, IQ_64_64), ("gzip", IQ_64_64)]
        cold = ExperimentRunner(SCALE, store=store, sampling=PLAN)
        cold.run_many(pairs)
        assert cold.cache_stats()["simulations"] == 2
        cold_record = cold.sampled_result(BENCH, IQ_64_64)
        assert cold_record is not None

        warm = ExperimentRunner(SCALE, store=store, sampling=PLAN)
        warm.run_many(pairs)
        stats = warm.cache_stats()
        assert stats["simulations"] == 0 and stats["disk_hits"] == 2
        assert warm.sampled_result(BENCH, IQ_64_64).to_dict() == cold_record.to_dict()

        parallel = ExperimentRunner(
            SCALE, store=ResultStore(tmp_path / "fresh"), sampling=PLAN, workers=2
        )
        parallel.run_many(pairs)
        assert parallel.cache_stats()["simulations"] == 2
        assert (
            parallel.sampled_result(BENCH, IQ_64_64).to_dict()
            == cold_record.to_dict()
        )

    def test_sampled_and_full_results_never_alias(self, tmp_path):
        store = ResultStore(tmp_path)
        sampled_runner = ExperimentRunner(SCALE, store=store, sampling=PLAN)
        full_runner = ExperimentRunner(SCALE, store=store)
        sampled = sampled_runner.run(BENCH, IQ_64_64)
        full = full_runner.run(BENCH, IQ_64_64)
        assert full_runner.cache_stats()["simulations"] == 1  # no alias hit
        assert sampled.to_dict() != full.to_dict()
        assert full_runner.sampled_result(BENCH, IQ_64_64) is None

    def test_sampled_mode_executes_fewer_detailed_cycles(self):
        engine.GLOBAL_TELEMETRY.reset()
        simulate_pair(BENCH, IQ_64_64, SCALE)
        full_cycles = engine.GLOBAL_TELEMETRY.executed_cycles
        engine.GLOBAL_TELEMETRY.reset()
        sampled, __ = simulate_sampled_pair(BENCH, IQ_64_64, SCALE, PLAN)
        assert sampled.detailed_cycles == engine.GLOBAL_TELEMETRY.executed_cycles
        assert 0 < sampled.detailed_cycles < full_cycles

    def test_checkpoints_populated_through_runner(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(SCALE, store=store, sampling=PLAN)
        runner.run(BENCH, IQ_64_64)
        checkpoints = CheckpointStore(tmp_path / "checkpoints")
        assert len(checkpoints) == PLAN.num_slices
        # A different scheme reuses them: only the stats simulate again.
        runner.run(BENCH, IF_DISTR)
        assert len(checkpoints) == PLAN.num_slices

    def test_damaged_sampled_record_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ExperimentRunner(SCALE, store=store, sampling=PLAN)
        runner.run(BENCH, IQ_64_64)
        key = runner.store_key(BENCH, IQ_64_64)
        path = store._path(key)
        payload = json.loads(path.read_text())
        payload["sampled"]["estimates"] = "broken"
        path.write_text(json.dumps(payload))
        fresh = ExperimentRunner(SCALE, store=store, sampling=PLAN)
        fresh.run(BENCH, IQ_64_64)
        assert fresh.cache_stats()["simulations"] == 1  # treated as a miss
        assert fresh.sampled_result(BENCH, IQ_64_64) is not None
