"""Unit tests for the hybrid branch predictor and BTB."""

import pytest

from repro.common.config import BranchPredictorConfig
from repro.frontend.branch_predictor import (
    BranchTargetBuffer,
    HybridBranchPredictor,
    SaturatingCounter,
)


class TestSaturatingCounter:
    def test_saturates_high(self):
        counter = SaturatingCounter(3)
        counter.update(True)
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(0)
        counter.update(False)
        assert counter.value == 0

    def test_hysteresis(self):
        counter = SaturatingCounter(3)
        counter.update(False)
        assert counter.taken  # one miss does not flip a strong state
        counter.update(False)
        assert not counter.taken

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SaturatingCounter(4)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_update_replaces_target(self):
        btb = BranchTargetBuffer(64, 4)
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.lookup(0x1000) == 0x3000

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(4, 2)  # 2 sets, 2 ways
        stride = 4 * btb.num_sets  # pcs mapping to the same set
        pcs = [0x1000, 0x1000 + stride, 0x1000 + 2 * stride]
        btb.update(pcs[0], 1)
        btb.update(pcs[1], 2)
        btb.lookup(pcs[0])  # refresh
        btb.update(pcs[2], 3)  # evicts pcs[1]
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None


class TestHybridPredictor:
    def predictor(self):
        return HybridBranchPredictor(BranchPredictorConfig())

    def test_learns_always_taken(self):
        pred = self.predictor()
        for __ in range(10):
            pred.predict_and_update(0x1000, True, 0x2000)
        before = pred.mispredictions
        for __ in range(50):
            pred.predict_and_update(0x1000, True, 0x2000)
        assert pred.mispredictions == before

    def test_learns_alternating_pattern_via_history(self):
        pred = self.predictor()
        outcomes = [True, False] * 200
        wrong = 0
        for i, taken in enumerate(outcomes):
            ok = pred.predict_and_update(0x1000, taken, 0x2000 if taken else None)
            if i >= 100 and not ok:
                wrong += 1
        assert wrong <= 5  # gshare captures the period-2 pattern

    def test_target_mispredict_counted(self):
        pred = self.predictor()
        for __ in range(10):
            pred.predict_and_update(0x1000, True, 0x2000)
        # Same direction, new target: direction right, target wrong once.
        before = pred.target_mispredictions
        pred.predict_and_update(0x1000, True, 0x3000)
        assert pred.target_mispredictions == before + 1

    def test_accuracy_range(self):
        pred = self.predictor()
        for i in range(100):
            pred.predict_and_update(0x1000 + 4 * (i % 7), i % 3 != 0, 0x2000)
        assert 0.0 <= pred.accuracy <= 1.0
        assert pred.predictions == 100

    def test_not_taken_branch_never_target_mispredicts(self):
        pred = self.predictor()
        for __ in range(20):
            pred.predict_and_update(0x1000, False, None)
        assert pred.target_mispredictions == 0
