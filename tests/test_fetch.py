"""Unit tests for the fetch engine."""


from repro.common.config import default_config
from repro.frontend.fetch import FetchEngine
from repro.memory.hierarchy import MemoryHierarchy

from tests.util import alu, branch, make_trace, r


def warm_engine(trace):
    """Fetch engine whose I-cache already holds the trace's lines."""
    config = default_config()
    hierarchy = MemoryHierarchy(config)
    for inst in trace:
        hierarchy.instruction_fetch_latency(inst.pc)
    return FetchEngine(config, trace, hierarchy)


class TestFetch:
    def test_fetch_width_limit(self):
        trace = make_trace([alu(i, r(1)) for i in range(20)])
        engine = warm_engine(trace)
        assert engine.fetch_cycle(0) == 8  # Table 1 fetch width

    def test_queue_capacity_limit(self):
        trace = make_trace([alu(i, r(1)) for i in range(100)])
        engine = warm_engine(trace)
        for cycle in range(20):
            engine.fetch_cycle(cycle)
        assert len(engine.queue) == 64  # fetch queue entries

    def test_pop_instructions_in_order(self):
        trace = make_trace([alu(i, r(1)) for i in range(10)])
        engine = warm_engine(trace)
        engine.fetch_cycle(0)
        popped = engine.pop_instructions(3)
        assert [inst.seq for inst in popped] == [0, 1, 2]

    def test_correctly_predicted_taken_branch_ends_group(self):
        insts = [alu(0, r(1)), branch(1, True, target=0x1000), alu(2, r(2)),
                 alu(3, r(2))]
        trace = make_trace(insts)
        engine = warm_engine(trace)
        # Train the predictor so the branch predicts taken with target.
        for __ in range(8):
            engine.predictor.predict_and_update(insts[1].pc, True, 0x1000)
        fetched = engine.fetch_cycle(0)
        assert fetched == 2  # group stops after the taken branch

    def test_mispredicted_branch_blocks_fetch(self):
        insts = [branch(0, True, target=0x1000), alu(1, r(1))]
        trace = make_trace(insts)
        engine = warm_engine(trace)  # cold predictor: predicts not taken
        engine.fetch_cycle(0)
        assert engine.blocked_on_branch == 0
        assert engine.fetch_cycle(1) == 0  # blocked

    def test_resolve_unblocks_after_redirect_penalty(self):
        insts = [branch(0, True, target=0x1000), alu(1, r(1))]
        trace = make_trace(insts)
        engine = warm_engine(trace)
        engine.fetch_cycle(0)
        engine.resolve_branch(0, cycle=10)
        assert engine.blocked_on_branch is None
        assert engine.fetch_cycle(11) == 0  # still within redirect penalty
        assert engine.fetch_cycle(12) == 1

    def test_resolve_of_other_branch_ignored(self):
        insts = [branch(0, True, target=0x1000), alu(1, r(1))]
        trace = make_trace(insts)
        engine = warm_engine(trace)
        engine.fetch_cycle(0)
        engine.resolve_branch(99, cycle=10)
        assert engine.blocked_on_branch == 0

    def test_icache_miss_stalls_fetch(self):
        trace = make_trace([alu(i, r(1)) for i in range(4)])
        config = default_config()
        engine = FetchEngine(config, trace, MemoryHierarchy(config))  # cold
        assert engine.fetch_cycle(0) == 0  # miss: line not ready
        assert engine.blocked_cycles == 0  # stall begins next cycle
        assert engine.fetch_cycle(1) == 0

    def test_exhausted_after_full_trace(self):
        trace = make_trace([alu(i, r(1)) for i in range(4)])
        engine = warm_engine(trace)
        engine.fetch_cycle(0)
        assert engine.exhausted
        assert engine.fetched_instructions == 4
