"""Fetch engine: I-cache, branch prediction, fetch queue.

The engine pulls instructions from the trace into a 64-entry fetch queue,
up to ``fetch_width`` per cycle, stopping at taken branches (one taken
branch per fetch group, the conventional model). Because the simulator is
trace-driven there is no wrong path: a mispredicted branch *blocks* fetch
until the branch resolves in the back end plus a redirect penalty, which
charges the same number of lost fetch cycles as wrong-path execution
would.

Predictor tables are trained at fetch time. Training at commit would be
more faithful but changes accuracy by well under a percent for the
predictor sizes of Table 1 while complicating recovery; SimpleScalar's
in-order front end makes the same simplification.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.common.config import ProcessorConfig
from repro.frontend.branch_predictor import HybridBranchPredictor
from repro.isa.instructions import Instruction
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.trace import Trace

__all__ = ["FetchEngine"]


class FetchEngine:
    """Trace-driven front end."""

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        hierarchy: MemoryHierarchy,
        predictor: Optional[HybridBranchPredictor] = None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.hierarchy = hierarchy
        self.predictor = predictor or HybridBranchPredictor(config.branch)
        self.queue: Deque[Instruction] = deque()
        self._position = 0
        self._icache_ready_cycle = 0
        self._blocking_branch_seq: Optional[int] = None
        self._current_line: Optional[int] = None
        self.fetched_instructions = 0
        self.blocked_cycles = 0

    @property
    def exhausted(self) -> bool:
        """True when the entire trace has been fetched."""
        return self._position >= len(self.trace)

    @property
    def blocked_on_branch(self) -> Optional[int]:
        """Sequence number of the mispredicted branch fetch waits on."""
        return self._blocking_branch_seq

    def state_token(self) -> tuple:
        """Opaque token over every internal field a fetch cycle can move.

        The skipping kernel compares tokens around :meth:`fetch_cycle`:
        a cycle that fetched nothing but still moved state (e.g. started
        an I-cache miss and armed the fill timer) counts as activity.
        """
        return (
            self._position,
            self._icache_ready_cycle,
            self._blocking_branch_seq,
            self._current_line,
        )

    def next_activity_cycle(self, cycle: int) -> Optional[int]:
        """Skipping-kernel contract: the I-cache fill/redirect timer.

        While fetch waits out an I-cache miss or a post-misprediction
        redirect, the ready timer is the exact cycle fetch resumes. A
        fetch blocked on an unresolved branch needs no timer — the
        branch's resolution is already on the pipeline's event wheel
        (and arms this timer when it fires).
        """
        if self._blocking_branch_seq is not None or self.exhausted:
            return None
        if self._icache_ready_cycle >= cycle:
            return self._icache_ready_cycle
        return None

    def resolve_branch(self, seq: int, cycle: int) -> None:
        """Back-end notification that branch ``seq`` resolved at ``cycle``.

        Fetch resumes after the configured redirect penalty.
        """
        if self._blocking_branch_seq == seq:
            self._blocking_branch_seq = None
            self._icache_ready_cycle = max(
                self._icache_ready_cycle,
                cycle + 1 + self.config.mispredict_redirect_penalty,
            )

    def flush_after(self, seq: int) -> None:
        """Drop queued instructions younger than ``seq``.

        Only used by tests and by recovery paths that squash the fetch
        queue; in the normal trace-driven flow mispredicted branches stop
        fetch before younger instructions enter the queue.
        """
        while self.queue and self.queue[-1].seq > seq:
            self.queue.pop()
            self._position -= 1

    def fetch_cycle(self, cycle: int) -> int:
        """Fetch up to ``fetch_width`` instructions; returns how many."""
        if self._blocking_branch_seq is not None or cycle < self._icache_ready_cycle:
            self.blocked_cycles += 1
            return 0
        fetched = 0
        line_bytes = self.config.icache.line_bytes
        while (
            fetched < self.config.fetch_width
            and len(self.queue) < self.config.fetch_queue_entries
            and not self.exhausted
        ):
            inst = self.trace[self._position]
            line = inst.pc // line_bytes
            if line != self._current_line:
                latency = self.hierarchy.instruction_fetch_latency(inst.pc)
                self._current_line = line
                if latency > self.config.icache.hit_latency:
                    # Miss: charge the fill latency and retry the same
                    # instruction when the line arrives.
                    self._icache_ready_cycle = cycle + latency
                    self._current_line = line
                    break
            self.queue.append(inst)
            self._position += 1
            fetched += 1
            self.fetched_instructions += 1
            if inst.op.is_branch:
                correct = self.predictor.predict_and_update(inst.pc, bool(inst.taken), inst.target)
                if not correct:
                    self._blocking_branch_seq = inst.seq
                    break
                if inst.taken:
                    # A correctly predicted taken branch ends the fetch
                    # group and redirects the line tracker.
                    self._current_line = None
                    break
        return fetched

    def pop_instructions(self, max_count: int) -> List[Instruction]:
        """Hand up to ``max_count`` queued instructions to decode."""
        out: List[Instruction] = []
        while self.queue and len(out) < max_count:
            out.append(self.queue.popleft())
        return out
