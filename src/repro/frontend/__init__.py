"""Front-end substrate: branch prediction and instruction fetch."""

from repro.frontend.branch_predictor import (
    BranchTargetBuffer,
    HybridBranchPredictor,
    SaturatingCounter,
)
from repro.frontend.fetch import FetchEngine

__all__ = [
    "BranchTargetBuffer",
    "FetchEngine",
    "HybridBranchPredictor",
    "SaturatingCounter",
]
