"""Hybrid branch predictor of Table 1.

2K-entry gshare + 2K-entry bimodal, arbitrated by a 1K-entry selector of
2-bit counters, plus a 2048-entry 4-way BTB for targets. All tables use
standard 2-bit saturating counters. Direction prediction is what matters
to the pipeline (a taken branch without a BTB hit is also a redirect); we
count both direction and target mispredictions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import BranchPredictorConfig

__all__ = ["SaturatingCounter", "BranchTargetBuffer", "HybridBranchPredictor"]


class SaturatingCounter:
    """A classic 2-bit saturating counter."""

    __slots__ = ("value",)

    WEAK_NOT_TAKEN = 1
    WEAK_TAKEN = 2

    def __init__(self, value: int = WEAK_NOT_TAKEN) -> None:
        if not 0 <= value <= 3:
            raise ValueError("2-bit counter value out of range")
        self.value = value

    @property
    def taken(self) -> bool:
        return self.value >= 2

    def update(self, outcome: bool) -> None:
        if outcome:
            self.value = min(3, self.value + 1)
        else:
            self.value = max(0, self.value - 1)


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, entries: int, associativity: int) -> None:
        self.num_sets = entries // associativity
        self.associativity = associativity
        # Each set: list of (tag, target), most recently used last.
        self._sets: List[List[tuple]] = [[] for __ in range(self.num_sets)]
        self.lookups = 0
        self.hits = 0

    def _index_tag(self, pc: int) -> tuple:
        word = pc >> 2
        return word % self.num_sets, word // self.num_sets

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for ``pc`` or None on a BTB miss."""
        index, tag = self._index_tag(pc)
        self.lookups += 1
        ways = self._sets[index]
        for i, (entry_tag, target) in enumerate(ways):
            if entry_tag == tag:
                ways.append(ways.pop(i))
                self.hits += 1
                return target
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of a taken branch."""
        index, tag = self._index_tag(pc)
        ways = self._sets[index]
        for i, (entry_tag, __) in enumerate(ways):
            if entry_tag == tag:
                ways.pop(i)
                break
        ways.append((tag, target))
        if len(ways) > self.associativity:
            ways.pop(0)

    def state_snapshot(self) -> List[List[list]]:
        """JSON-friendly copy of the tag/target/LRU state (no counters)."""
        return [[[tag, target] for tag, target in ways] for ways in self._sets]

    def restore_state(self, snapshot: List[List[list]]) -> None:
        """Restore from :meth:`state_snapshot`; lookup counters untouched."""
        self._sets = [
            [(int(tag), int(target)) for tag, target in ways] for ways in snapshot
        ]


class HybridBranchPredictor:
    """Gshare/bimodal hybrid with a per-branch selector.

    The selector counter is trained towards the component that was
    correct (and left alone when both agree in correctness), the standard
    McFarling tournament update rule.
    """

    def __init__(self, config: BranchPredictorConfig) -> None:
        config.validate()
        self.config = config
        self._gshare = [SaturatingCounter() for __ in range(config.gshare_entries)]
        self._bimodal = [SaturatingCounter() for __ in range(config.bimodal_entries)]
        # Selector: >=2 means "use gshare".
        self._selector = [SaturatingCounter(2) for __ in range(config.selector_entries)]
        self._history = 0
        self._history_mask = (1 << config.history_bits) - 1
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_associativity)
        self.predictions = 0
        self.direction_mispredictions = 0
        self.target_mispredictions = 0

    def _indices(self, pc: int) -> tuple:
        word = pc >> 2
        gshare_idx = (word ^ self._history) % self.config.gshare_entries
        bimodal_idx = word % self.config.bimodal_entries
        selector_idx = word % self.config.selector_entries
        return gshare_idx, bimodal_idx, selector_idx

    def predict(self, pc: int) -> tuple:
        """Return (direction, target-or-None) without updating state."""
        gshare_idx, bimodal_idx, selector_idx = self._indices(pc)
        use_gshare = self._selector[selector_idx].taken
        direction = (
            self._gshare[gshare_idx].taken if use_gshare else self._bimodal[bimodal_idx].taken
        )
        target = self.btb.lookup(pc) if direction else None
        return direction, target

    def update(self, pc: int, taken: bool, target: Optional[int]) -> None:
        """Train all tables with the resolved outcome."""
        gshare_idx, bimodal_idx, selector_idx = self._indices(pc)
        gshare_correct = self._gshare[gshare_idx].taken == taken
        bimodal_correct = self._bimodal[bimodal_idx].taken == taken
        if gshare_correct != bimodal_correct:
            self._selector[selector_idx].update(gshare_correct)
        self._gshare[gshare_idx].update(taken)
        self._bimodal[bimodal_idx].update(taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        if taken and target is not None:
            self.btb.update(pc, target)

    def predict_and_update(self, pc: int, taken: bool, target: Optional[int]) -> bool:
        """One-shot predict+train; returns True if prediction was correct.

        A branch is considered mispredicted if the direction is wrong, or
        if it is taken and the BTB had no (or the wrong) target — both
        force a front-end redirect.
        """
        direction, predicted_target = self.predict(pc)
        self.predictions += 1
        correct = direction == taken
        if not correct:
            self.direction_mispredictions += 1
        elif taken and predicted_target != target:
            self.target_mispredictions += 1
            correct = False
        self.update(pc, taken, target)
        return correct

    def state_snapshot(self) -> dict:
        """JSON-friendly copy of every prediction-relevant table.

        Captures the gshare/bimodal/selector counters, the global
        history register and the BTB contents — everything a later
        prediction depends on — but *not* the accuracy counters, so
        restoring warmed state into a fresh predictor leaves its
        statistics at zero (the sampled-simulation contract).
        """
        return {
            "gshare": [c.value for c in self._gshare],
            "bimodal": [c.value for c in self._bimodal],
            "selector": [c.value for c in self._selector],
            "history": self._history,
            "btb": self.btb.state_snapshot(),
        }

    def restore_state(self, snapshot: dict) -> None:
        """Restore tables from :meth:`state_snapshot` (counters untouched)."""
        self._gshare = [SaturatingCounter(int(v)) for v in snapshot["gshare"]]
        self._bimodal = [SaturatingCounter(int(v)) for v in snapshot["bimodal"]]
        self._selector = [SaturatingCounter(int(v)) for v in snapshot["selector"]]
        self._history = int(snapshot["history"])
        self.btb.restore_state(snapshot["btb"])

    @property
    def mispredictions(self) -> int:
        return self.direction_mispredictions + self.target_mispredictions

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
