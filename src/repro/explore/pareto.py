"""Pareto dominance, frontier extraction and adaptive refinement.

All objectives are minimized. A point *dominates* another when it is no
worse on every objective and strictly better on at least one; the
*frontier* is the non-dominated subset. :func:`refine` implements the
AnICA-style interesting-point loop: for K rounds, re-sample the
neighbourhoods of current frontier points (single-dimension
perturbations from the :class:`~repro.explore.space.DesignSpace`),
evaluate whatever is new, and fold it back in — so search effort
concentrates where the energy/performance trade-off is actually won.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.common.rng import make_rng
from repro.explore.objectives import OBJECTIVES, PointScore
from repro.explore.space import DesignSpace

__all__ = ["dominates", "pareto_front", "pair_fronts", "refine"]


def dominates(
    a: Mapping[str, float], b: Mapping[str, float], keys: Sequence[str]
) -> bool:
    """True if objectives ``a`` dominate ``b`` (minimization)."""
    strictly_better = False
    for key in keys:
        if a[key] > b[key]:
            return False
        if a[key] < b[key]:
            strictly_better = True
    return strictly_better


def pareto_front(
    scores: Sequence[PointScore], keys: Sequence[str] = OBJECTIVES
) -> List[PointScore]:
    """Non-dominated subset of ``scores``, in input order.

    Duplicate objective vectors are all kept (none dominates the other),
    which preserves distinct configurations that happen to tie.
    """
    front: List[PointScore] = []
    for candidate in scores:
        if not any(
            dominates(other.objectives, candidate.objectives, keys)
            for other in scores
            if other is not candidate
        ):
            front.append(candidate)
    return front


def pair_fronts(
    scores: Sequence[PointScore], keys: Sequence[str] = OBJECTIVES
) -> Dict[str, List[PointScore]]:
    """2-D frontier per objective pair, keyed ``"<a>|<b>"``.

    The full-dimensional front answers "is this point useful at all";
    the pairwise fronts are what the paper's figures actually plot
    (e.g. IPC loss vs. energy), and any non-empty score set yields at
    least one non-dominated point per pair.
    """
    return {
        f"{a}|{b}": pareto_front(scores, (a, b)) for a, b in combinations(keys, 2)
    }


def refine(
    space: DesignSpace,
    evaluate: Callable[[Sequence], List[PointScore]],
    scores: Sequence[PointScore],
    rounds: int,
    per_point: int,
    seed: int,
    keys: Sequence[str] = OBJECTIVES,
) -> Tuple[List[PointScore], List[Dict[str, int]]]:
    """Adaptively re-sample frontier neighbourhoods for ``rounds`` rounds.

    ``evaluate`` maps a list of fresh :class:`DesignPoint`\\ s to their
    scores (the drivers wire it to a batched, cache-backed scorer).
    Already-evaluated points (by ``point_id``) are never re-submitted,
    so warm reruns converge without touching the simulator. Returns the
    accumulated scores plus one telemetry record per round.
    """
    all_scores: List[PointScore] = list(scores)
    evaluated = {score.point.point_id for score in all_scores}
    log: List[Dict[str, int]] = []
    for round_index in range(rounds):
        frontier = pareto_front(all_scores, keys)
        rng = make_rng(seed, f"explore.refine.{round_index}")
        candidates = []
        for score in frontier:
            candidates.extend(
                space.neighborhood(score.point.assignment_dict, per_point, rng)
            )
        fresh = [
            point
            for point in space.expand(candidates)
            if point.point_id not in evaluated
        ]
        new_scores = evaluate(fresh)
        evaluated.update(score.point.point_id for score in new_scores)
        all_scores.extend(new_scores)
        log.append(
            {
                "round": round_index + 1,
                "frontier_size": len(frontier),
                "candidates": len(candidates),
                "evaluated": len(new_scores),
                "total_points": len(all_scores),
            }
        )
    return all_scores, log
