"""Pareto dominance, frontier extraction and adaptive refinement.

All objectives are minimized. A point *dominates* another when it is no
worse on every objective and strictly better on at least one; the
*frontier* is the non-dominated subset. :func:`refine` implements the
AnICA-style interesting-point loop: for K rounds, re-sample the
neighbourhoods of current frontier points (single-dimension
perturbations from the :class:`~repro.explore.space.DesignSpace`),
evaluate whatever is new, and fold it back in — so search effort
concentrates where the energy/performance trade-off is actually won.

The frontier is maintained *incrementally* across rounds
(:func:`fold_frontier`): only the round's new scores are folded in and
displaced members dropped, instead of re-scanning every accumulated
score — result-identical to the naive O(n²) scan because a score once
dominated stays dominated (its dominator never leaves the accumulated
set), and order-identical because survivors keep input order.

Two optional refinements keep the re-sampling budget pointed at
*diverse* frontier regions rather than dense clusters:
:func:`epsilon_front` thins the frontier to representatives that are
not epsilon-dominated by an already-kept point (tolerances scaled per
objective by the frontier's own value range), and
:func:`crowding_select` applies NSGA-II crowding-distance selection
when the frontier outgrows the per-round neighbourhood budget —
boundary points always survive, then the least-crowded interior points.
Both break ties canonically (objective vector, then point id), so the
selected *set* does not depend on the order scores arrive in.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.rng import make_rng
from repro.explore.objectives import OBJECTIVES, PointScore
from repro.explore.space import DesignSpace

__all__ = [
    "dominates",
    "pareto_front",
    "fold_frontier",
    "epsilon_front",
    "crowding_distances",
    "crowding_select",
    "pair_fronts",
    "refine",
]


def dominates(
    a: Mapping[str, float], b: Mapping[str, float], keys: Sequence[str]
) -> bool:
    """True if objectives ``a`` dominate ``b`` (minimization)."""
    strictly_better = False
    for key in keys:
        if a[key] > b[key]:
            return False
        if a[key] < b[key]:
            strictly_better = True
    return strictly_better


def pareto_front(
    scores: Sequence[PointScore], keys: Sequence[str] = OBJECTIVES
) -> List[PointScore]:
    """Non-dominated subset of ``scores``, in input order.

    Duplicate objective vectors are all kept (none dominates the other),
    which preserves distinct configurations that happen to tie.
    """
    front: List[PointScore] = []
    for candidate in scores:
        if not any(
            dominates(other.objectives, candidate.objectives, keys)
            for other in scores
            if other is not candidate
        ):
            front.append(candidate)
    return front


def pair_fronts(
    scores: Sequence[PointScore], keys: Sequence[str] = OBJECTIVES
) -> Dict[str, List[PointScore]]:
    """2-D frontier per objective pair, keyed ``"<a>|<b>"``.

    The full-dimensional front answers "is this point useful at all";
    the pairwise fronts are what the paper's figures actually plot
    (e.g. IPC loss vs. energy), and any non-empty score set yields at
    least one non-dominated point per pair.
    """
    return {
        f"{a}|{b}": pareto_front(scores, (a, b)) for a, b in combinations(keys, 2)
    }


def fold_frontier(
    frontier: Sequence[PointScore],
    new_scores: Sequence[PointScore],
    keys: Sequence[str] = OBJECTIVES,
) -> List[PointScore]:
    """Fold ``new_scores`` into an existing frontier incrementally.

    Equivalent to ``pareto_front(all_seen + new_scores)`` when
    ``frontier`` is the frontier of everything seen so far: a candidate
    dominated by a current member is discarded (that member — or, for
    previously discarded scores, their original dominator — remains in
    the accumulated set, so discards are final), and members dominated
    by a surviving candidate are displaced. Survivors append in input
    order, so the result order matches the naive full scan.
    """
    front = list(frontier)
    for candidate in new_scores:
        if any(
            dominates(member.objectives, candidate.objectives, keys)
            for member in front
        ):
            continue
        front = [
            member
            for member in front
            if not dominates(candidate.objectives, member.objectives, keys)
        ]
        front.append(candidate)
    return front


def _canonical_order(
    scores: Sequence[PointScore], keys: Sequence[str]
) -> List[int]:
    """Indices of ``scores`` in a permutation-invariant processing order.

    Sorts by the objective vector, then by ``point_id`` so distinct
    points with tied objectives still rank identically however the
    caller happened to order them; the input index is the final
    tie-break only for exact duplicates (same point, same vector),
    where the choice is immaterial.
    """
    return sorted(
        range(len(scores)),
        key=lambda i: (
            tuple(scores[i].objectives[key] for key in keys),
            scores[i].point.point_id,
            i,
        ),
    )


def epsilon_front(
    scores: Sequence[PointScore],
    epsilon: float,
    keys: Sequence[str] = OBJECTIVES,
) -> List[PointScore]:
    """Thin a frontier by additive epsilon-dominance.

    A point is dropped when an already-kept point epsilon-dominates it:
    no worse than ``value + epsilon · range`` on every objective, where
    ``range`` is the frontier's own spread on that objective (so one
    epsilon works across axes with different units — percent IPC loss
    vs. normalized energy ratios). ``epsilon = 0`` only collapses
    points whose objective vectors tie exactly.

    Candidates are considered in a canonical order (objective vector,
    then point id) and survivors are returned in input order, so the
    *set* kept is invariant under any permutation of ``scores`` —
    which representative survives a near-duplicate cluster is a
    property of the points, never of their arrival order. A negative
    epsilon raises :class:`ValueError`.
    """
    if epsilon < 0:
        raise ValueError("epsilon cannot be negative")
    if not scores:
        return []
    tolerance: Dict[str, float] = {}
    for key in keys:
        values = [score.objectives[key] for score in scores]
        tolerance[key] = epsilon * (max(values) - min(values))
    kept: List[int] = []
    for index in _canonical_order(scores, keys):
        candidate = scores[index]
        if not any(
            all(
                scores[member].objectives[key]
                <= candidate.objectives[key] + tolerance[key]
                for key in keys
            )
            for member in kept
        ):
            kept.append(index)
    return [scores[i] for i in sorted(kept)]


def crowding_distances(
    scores: Sequence[PointScore], keys: Sequence[str] = OBJECTIVES
) -> List[float]:
    """NSGA-II crowding distance of every score (input order).

    Per objective, scores are sorted (ties broken by point id, then
    input index, so permuting the input permutes the distances with
    it); the extremes get infinite distance and interior points
    accumulate the normalized gap between their neighbours.
    """
    n = len(scores)
    distances = [0.0] * n
    if n <= 2:
        return [float("inf")] * n
    for key in keys:
        order = sorted(
            range(n),
            key=lambda i: (
                scores[i].objectives[key],
                scores[i].point.point_id,
                i,
            ),
        )
        low = scores[order[0]].objectives[key]
        high = scores[order[-1]].objectives[key]
        span = high - low
        if span <= 0:
            # Every point ties on this objective: there are no genuine
            # extremes to protect, so the axis contributes nothing
            # (instead of handing infinite distance to whichever points
            # the index tie-break happens to sort first and last).
            continue
        distances[order[0]] = distances[order[-1]] = float("inf")
        for position in range(1, n - 1):
            gap = (
                scores[order[position + 1]].objectives[key]
                - scores[order[position - 1]].objectives[key]
            )
            distances[order[position]] += gap / span
    return distances


def crowding_select(
    scores: Sequence[PointScore],
    budget: int,
    keys: Sequence[str] = OBJECTIVES,
) -> List[PointScore]:
    """At most ``budget`` scores, preferring the least crowded.

    Selection ranks by descending crowding distance; ties break by
    point id and then input index, so the chosen *set* is invariant
    under permutations of ``scores`` (objective-extreme points always
    survive either way). The selection is returned in input order.
    """
    if budget < 1:
        raise ValueError("crowding budget must be at least 1")
    if len(scores) <= budget:
        return list(scores)
    distances = crowding_distances(scores, keys)
    ranked = sorted(
        range(len(scores)),
        key=lambda i: (-distances[i], scores[i].point.point_id, i),
    )
    chosen = sorted(ranked[:budget])
    return [scores[i] for i in chosen]


def refine(
    space: DesignSpace,
    evaluate: Callable[[Sequence], List[PointScore]],
    scores: Sequence[PointScore],
    rounds: int,
    per_point: int,
    seed: int,
    keys: Sequence[str] = OBJECTIVES,
    epsilon: float = 0.0,
    frontier_budget: Optional[int] = None,
) -> Tuple[List[PointScore], List[Dict[str, int]], List[PointScore]]:
    """Adaptively re-sample frontier neighbourhoods for ``rounds`` rounds.

    ``evaluate`` maps a list of fresh :class:`DesignPoint`\\ s to their
    scores (the drivers wire it to a batched, cache-backed scorer).
    Already-evaluated points (by ``point_id``) are never re-submitted,
    so warm reruns converge without touching the simulator. Returns the
    accumulated scores, one telemetry record per round, and the final
    frontier — maintained incrementally via :func:`fold_frontier`, so
    callers need no closing O(n²) :func:`pareto_front` scan.

    ``epsilon > 0`` thins each round's frontier via
    :func:`epsilon_front` before expansion; ``frontier_budget`` caps
    how many frontier points seed neighbourhoods per round, selected by
    :func:`crowding_select`. With both at their defaults the expansion
    set is the raw frontier and the telemetry records keep their
    original shape, so existing artifacts stay byte-identical.
    """
    all_scores: List[PointScore] = list(scores)
    evaluated = {score.point.point_id for score in all_scores}
    frontier = pareto_front(all_scores, keys)
    log: List[Dict[str, int]] = []
    for round_index in range(rounds):
        expansion = frontier
        if epsilon > 0:
            expansion = epsilon_front(expansion, epsilon, keys)
        if frontier_budget is not None:
            expansion = crowding_select(expansion, frontier_budget, keys)
        rng = make_rng(seed, f"explore.refine.{round_index}")
        candidates = []
        for score in expansion:
            candidates.extend(
                space.neighborhood(score.point.assignment_dict, per_point, rng)
            )
        fresh = [
            point
            for point in space.expand(candidates)
            if point.point_id not in evaluated
        ]
        new_scores = evaluate(fresh)
        evaluated.update(score.point.point_id for score in new_scores)
        all_scores.extend(new_scores)
        entry = {
            "round": round_index + 1,
            "frontier_size": len(frontier),
            "candidates": len(candidates),
            "evaluated": len(new_scores),
            "total_points": len(all_scores),
        }
        if epsilon > 0 or frontier_budget is not None:
            entry["expanded"] = len(expansion)
        log.append(entry)
        frontier = fold_frontier(frontier, new_scores, keys)
    return all_scores, log, frontier
