"""Declarative parameter spaces over scheme geometry, processor knobs
and workloads.

A :class:`DesignSpace` is a list of named :class:`Dimension`\\ s — issue
scheme kind, queue counts and depths, distributed-FU binding, MixBUFF
chain caps, issue width, ROB size, and the benchmark axis — plus the
expansion logic that turns an *assignment* (one value per dimension)
into a concrete :class:`DesignPoint`: a validated
:class:`~repro.common.config.ProcessorConfig` paired with a workload.

The workload enters the space in one of two modes. In the default
*axis* mode ``benchmark`` is a dimension like any other and each point
is one (config, benchmark) pair — the frontier then rewards
per-workload winners. With ``DesignSpace(aggregate_benchmarks=...)``
the benchmark dimension disappears and every point instead carries the
whole declared workload *set*: one design is one point, scored across
the suite (see :class:`~repro.explore.objectives.SuiteAggregator`), so
the frontier ranks suite-robust geometries the way the paper's
cross-SPEC averages do.

Assignments are *repaired* rather than rejected where the paper's
structural rules make a combination meaningless (a conventional queue
has one queue per side, only MixBUFF caps chains, distributed FUs need
multiple queues), so every sampled assignment lands on a simulable
point and near-duplicate assignments collapse onto the same
content-addressed point id.

Sampling is deterministic: grid enumeration walks dimensions in
declaration order, and random/mixed sampling draws from
:func:`repro.common.rng.make_rng` streams derived from the caller's
seed, so a fixed seed always explores the same points.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import (
    SCHEME_CONVENTIONAL,
    SCHEME_MIXBUFF,
    IssueSchemeConfig,
    ProcessorConfig,
    scheme_name,
)
from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng

__all__ = ["Dimension", "DesignPoint", "DesignSpace", "default_space"]


@dataclass(frozen=True)
class Dimension:
    """One axis of the search space.

    ``values`` is the ordered domain. ``ordinal`` dimensions (sizes,
    widths) treat adjacent values as neighbours during refinement;
    categorical dimensions (scheme kind, benchmark) treat every other
    value as a neighbour, since there is no metric between them.
    """

    name: str
    values: Tuple[Any, ...]
    ordinal: bool = True

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"dimension {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ConfigurationError(f"dimension {self.name!r} has duplicate values")

    def sample(self, rng) -> Any:
        """One uniformly drawn value."""
        return self.values[rng.randrange(len(self.values))]

    def neighbors(self, value: Any) -> Tuple[Any, ...]:
        """Values adjacent to ``value`` for frontier refinement.

        A value outside the declared domain (produced by assignment
        repair) has no neighbours — refinement then perturbs the other
        dimensions instead.
        """
        try:
            index = self.values.index(value)
        except ValueError:
            return ()
        if not self.ordinal:
            return tuple(v for v in self.values if v != value)
        out = []
        if index > 0:
            out.append(self.values[index - 1])
        if index + 1 < len(self.values):
            out.append(self.values[index + 1])
        return tuple(out)


@dataclass(frozen=True)
class DesignPoint:
    """One concrete, simulable (config, workload) pair.

    ``assignment`` keeps the *raw* sampled values (hashable item tuple)
    so refinement can perturb them dimension-wise; ``config`` is the
    repaired, validated processor configuration the assignment expands
    to. ``point_id`` is content-addressed over the config and the
    benchmark, so assignments that repair to the same machine collapse.

    In aggregate mode ``benchmarks`` names the whole workload set the
    point is scored across and ``benchmark`` is a short deterministic
    suite token (used in labels, rows and the point id); in axis mode
    ``benchmarks`` is empty and ``benchmark`` is the sampled workload.
    """

    assignment: Tuple[Tuple[str, Any], ...]
    benchmark: str
    config: ProcessorConfig
    label: str
    point_id: str
    benchmarks: Tuple[str, ...] = ()

    @property
    def assignment_dict(self) -> Dict[str, Any]:
        return dict(self.assignment)


#: Dimension names with structural meaning to the expansion logic.
_KNOWN_DIMENSIONS = (
    "kind",
    "int_queues",
    "int_entries",
    "fp_queues",
    "fp_entries",
    "distributed_fus",
    "max_chains",
    "issue_width",
    "rob_entries",
    "benchmark",
)


def _suite_token(benchmarks: Sequence[str]) -> str:
    """Short deterministic token naming an aggregation set."""
    joined = "+".join(benchmarks)
    if len(joined) <= 40:
        return f"suite:{joined}"
    digest = hashlib.sha256(joined.encode("ascii")).hexdigest()[:8]
    return f"suite:{len(benchmarks)}bench-{digest}"


class DesignSpace:
    """A declared set of dimensions plus assignment-expansion logic.

    ``aggregate_benchmarks`` switches the workload mode: when given, the
    space has no ``benchmark`` dimension and every expanded point
    carries the whole set (scored suite-wide); when ``None`` (default),
    ``benchmark`` must be a declared dimension and each point is one
    (config, benchmark) pair.
    """

    def __init__(
        self,
        dimensions: Sequence[Dimension],
        aggregate_benchmarks: Optional[Sequence[str]] = None,
    ) -> None:
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate dimension names in design space")
        unknown = [n for n in names if n not in _KNOWN_DIMENSIONS]
        if unknown:
            raise ConfigurationError(
                f"unknown dimensions {unknown}; known: {list(_KNOWN_DIMENSIONS)}"
            )
        if aggregate_benchmarks is not None:
            if not aggregate_benchmarks:
                raise ConfigurationError("aggregate_benchmarks cannot be empty")
            if len(set(aggregate_benchmarks)) != len(tuple(aggregate_benchmarks)):
                raise ConfigurationError("duplicate names in aggregate_benchmarks")
            if "benchmark" in names:
                raise ConfigurationError(
                    "an aggregated space scores every point across its "
                    "benchmark set; drop the 'benchmark' dimension"
                )
            self.aggregate_benchmarks: Tuple[str, ...] = tuple(aggregate_benchmarks)
        else:
            if "benchmark" not in names:
                raise ConfigurationError(
                    "a design space needs a 'benchmark' dimension "
                    "(or aggregate_benchmarks=...)"
                )
            self.aggregate_benchmarks = ()
        self.dimensions: Tuple[Dimension, ...] = tuple(dimensions)
        self._by_name: Dict[str, Dimension] = {d.name: d for d in dimensions}

    # -- declaration ---------------------------------------------------
    def __len__(self) -> int:
        """Number of assignments in the full Cartesian grid."""
        total = 1
        for dim in self.dimensions:
            total *= len(dim.values)
        return total

    def describe(self) -> Dict[str, List[Any]]:
        """JSON-friendly rendering of the declared space."""
        described = {d.name: list(d.values) for d in self.dimensions}
        if self.aggregate_benchmarks:
            described["aggregate_benchmarks"] = list(self.aggregate_benchmarks)
        return described

    def _get(self, assignment: Mapping[str, Any], name: str, fallback: Any) -> Any:
        dim = self._by_name.get(name)
        if name in assignment:
            return assignment[name]
        if dim is not None:
            return dim.values[0]
        return fallback

    # -- expansion -----------------------------------------------------
    def build_point(self, assignment: Mapping[str, Any]) -> DesignPoint:
        """Expand one assignment into a validated :class:`DesignPoint`.

        Structural repairs (see module docstring) are applied here, so
        the caller may sample dimensions independently.
        """
        kind = self._get(assignment, "kind", SCHEME_CONVENTIONAL)
        int_queues = self._get(assignment, "int_queues", 8)
        int_entries = self._get(assignment, "int_entries", 8)
        fp_queues = self._get(assignment, "fp_queues", 8)
        fp_entries = self._get(assignment, "fp_entries", 16)
        distributed = self._get(assignment, "distributed_fus", False)
        max_chains = self._get(assignment, "max_chains", None)
        issue_width = self._get(assignment, "issue_width", 8)
        rob_entries = self._get(assignment, "rob_entries", 256)
        if self.aggregate_benchmarks:
            benchmark = _suite_token(self.aggregate_benchmarks)
        else:
            benchmark = assignment["benchmark"]

        if kind == SCHEME_CONVENTIONAL:
            # One monolithic queue per side with the *same total capacity*
            # as the sampled multi-queue geometry, so conventional and
            # FIFO points of one assignment neighbourhood are storage-
            # equivalent and the comparison isolates the organization.
            scheme = IssueSchemeConfig(
                kind=kind,
                int_queue_entries=int_queues * int_entries,
                fp_queue_entries=fp_queues * fp_entries,
            )
        else:
            if int_queues < 2 or fp_queues < 2:
                distributed = False  # distributed FUs need multiple queues
            scheme = IssueSchemeConfig(
                kind=kind,
                int_queues=int_queues,
                int_queue_entries=int_entries,
                fp_queues=fp_queues,
                fp_queue_entries=fp_entries,
                distributed_fus=distributed,
                max_chains_per_queue=(
                    max_chains if kind == SCHEME_MIXBUFF else None
                ),
            )
        config = replace(
            ProcessorConfig(),
            int_issue_width=issue_width,
            fp_issue_width=issue_width,
            rob_entries=rob_entries,
            scheme=scheme,
        )
        config.validate()
        label = f"{scheme_name(scheme)}_w{issue_width}_rob{rob_entries}@{benchmark}"
        point_id = hashlib.sha256(
            f"{config.cache_key()}:{benchmark}".encode("ascii")
        ).hexdigest()[:12]
        items = tuple(sorted(assignment.items(), key=lambda kv: kv[0]))
        return DesignPoint(
            assignment=items,
            benchmark=benchmark,
            config=config,
            label=label,
            point_id=point_id,
            benchmarks=self.aggregate_benchmarks,
        )

    def expand(self, assignments: Iterable[Mapping[str, Any]]) -> List[DesignPoint]:
        """Unique, valid points for ``assignments`` (first-seen order)."""
        points: List[DesignPoint] = []
        seen = set()
        for assignment in assignments:
            try:
                point = self.build_point(assignment)
            except ConfigurationError:
                continue  # unrepairable corner of the grid
            if point.point_id not in seen:
                seen.add(point.point_id)
                points.append(point)
        return points

    # -- sampling ------------------------------------------------------
    def _decode_grid_index(self, index: int) -> Dict[str, Any]:
        """Assignment at ``index`` of the Cartesian grid.

        Mixed-radix decoding in :func:`itertools.product` order (last
        dimension varies fastest), so ``_decode_grid_index(i)`` equals
        the ``i``-th element of the full product without walking it.
        """
        values: List[Any] = []
        for dim in reversed(self.dimensions):
            index, digit = divmod(index, len(dim.values))
            values.append(dim.values[digit])
        values.reverse()
        return {d.name: v for d, v in zip(self.dimensions, values)}

    def grid_assignments(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The Cartesian grid, evenly strided down to ``limit`` entries.

        A bounded request decodes the ``limit`` strided indices directly
        (O(limit · dims)) instead of enumerating the whole product —
        a 12-sample request over a million-point space touches exactly
        12 grid indices.
        """
        total = len(self)
        names = [d.name for d in self.dimensions]
        if limit is None or limit >= total:
            product = itertools.product(*(d.values for d in self.dimensions))
            return [dict(zip(names, combo)) for combo in product]
        if limit <= 0:
            return []
        # i * total // limit is strictly increasing for limit <= total,
        # so the strided indices are already distinct and sorted.
        return [
            self._decode_grid_index(i * total // limit) for i in range(limit)
        ]

    def random_assignments(self, n: int, seed: int) -> List[Dict[str, Any]]:
        """``n`` independent uniform draws (deterministic in ``seed``)."""
        rng = make_rng(seed, "explore.space.random")
        return [
            {d.name: d.sample(rng) for d in self.dimensions} for _ in range(n)
        ]

    def sample(self, strategy: str, n: int, seed: int) -> List[Dict[str, Any]]:
        """Sample ``n`` assignments: ``grid``, ``random`` or ``mixed``.

        ``mixed`` takes half from an even stride of the grid (structured
        coverage of the corners) and half at random (unbiased interior
        coverage).
        """
        if strategy == "grid":
            return self.grid_assignments(n)
        if strategy == "random":
            return self.random_assignments(n, seed)
        if strategy == "mixed":
            half = n // 2
            return self.grid_assignments(half) + self.random_assignments(
                n - half, seed
            )
        raise ConfigurationError(
            f"unknown sampling strategy {strategy!r}; valid: grid, random, mixed"
        )

    # -- refinement ----------------------------------------------------
    def neighborhood(
        self, assignment: Mapping[str, Any], limit: int, rng
    ) -> List[Dict[str, Any]]:
        """Single-dimension perturbations of ``assignment``.

        Every (dimension, neighbour-value) variant is generated, then the
        list is deterministically shuffled with ``rng`` and truncated to
        ``limit`` — so refinement pressure spreads across dimensions
        instead of always mutating the first ones.
        """
        variants: List[Dict[str, Any]] = []
        for dim in self.dimensions:
            if dim.name not in assignment:
                continue
            for value in dim.neighbors(assignment[dim.name]):
                variant = dict(assignment)
                variant[dim.name] = value
                variants.append(variant)
        rng.shuffle(variants)
        return variants[:limit] if limit else variants


def default_space(benchmarks: Sequence[str], aggregate: bool = False) -> DesignSpace:
    """The standard exploration space over the paper's design axes.

    Scheme kind and geometry span (and exceed) the Section 3/4 sweeps;
    issue width and ROB size probe the processor context; ``benchmarks``
    provides the workload axis — or, with ``aggregate=True``, the
    workload *set* every point is scored across (the paper's cross-suite
    averaging; see :class:`~repro.explore.objectives.SuiteAggregator`).
    """
    if not benchmarks:
        raise ConfigurationError("default_space needs at least one benchmark")
    dimensions = [
        Dimension(
            "kind",
            ("conventional", "issuefifo", "latfifo", "mixbuff"),
            ordinal=False,
        ),
        Dimension("int_queues", (4, 8, 12, 16)),
        Dimension("int_entries", (4, 8, 16)),
        Dimension("fp_queues", (4, 8, 12, 16)),
        Dimension("fp_entries", (8, 16)),
        Dimension("distributed_fus", (False, True), ordinal=False),
        Dimension("max_chains", (None, 4, 8), ordinal=False),
        Dimension("issue_width", (4, 8)),
        Dimension("rob_entries", (128, 256)),
    ]
    if aggregate:
        return DesignSpace(dimensions, aggregate_benchmarks=tuple(benchmarks))
    dimensions.append(Dimension("benchmark", tuple(benchmarks), ordinal=False))
    return DesignSpace(dimensions)
