"""Design-space exploration (DSE) over schemes × geometries × workloads.

The paper evaluates a handful of hand-picked configurations; this
subsystem *searches* the space instead. A declarative
:class:`~repro.explore.space.DesignSpace` expands parameter assignments
into concrete (processor config, workload) points; each point is scored
on energy/performance objectives (:mod:`repro.explore.objectives`,
reusing :mod:`repro.energy.metrics`) — per (config, benchmark) pair, or
suite-wide via :class:`~repro.explore.objectives.SuiteAggregator` when
the space declares ``aggregate_benchmarks``; :mod:`repro.explore.pareto`
computes non-dominated sets and adaptively refines the frontier
(incremental folding, optional epsilon-dominance thinning and
crowding-distance selection); and :mod:`repro.explore.drivers` runs
everything through the cached, parallel
:class:`~repro.experiments.runner.ExperimentRunner` stack and writes
JSON/CSV artifacts (:mod:`repro.explore.artifacts`).

Command line: ``python -m repro.explore --samples 32 --rounds 2``
(suite-aggregated: ``python -m repro.explore --aggregate stress``).
"""

from repro.explore.artifacts import write_csv, write_json
from repro.explore.drivers import (
    DEFAULT_EXPLORE_BENCHMARKS,
    ExplorationResult,
    ExplorationSettings,
    run_exploration,
    write_artifacts,
)
from repro.explore.objectives import (
    OBJECTIVES,
    ObjectiveScorer,
    PointScore,
    SuiteAggregator,
)
from repro.explore.pareto import (
    crowding_distances,
    crowding_select,
    epsilon_front,
    fold_frontier,
    pair_fronts,
    pareto_front,
    refine,
)
from repro.explore.space import DesignPoint, DesignSpace, Dimension, default_space

__all__ = [
    "DEFAULT_EXPLORE_BENCHMARKS",
    "DesignPoint",
    "DesignSpace",
    "Dimension",
    "ExplorationResult",
    "ExplorationSettings",
    "OBJECTIVES",
    "ObjectiveScorer",
    "PointScore",
    "SuiteAggregator",
    "crowding_distances",
    "crowding_select",
    "default_space",
    "epsilon_front",
    "fold_frontier",
    "pair_fronts",
    "pareto_front",
    "refine",
    "run_exploration",
    "write_artifacts",
    "write_csv",
    "write_json",
]
