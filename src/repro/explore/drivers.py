"""Exploration drivers: wire space → runner → objectives → frontier.

:func:`run_exploration` is the library entry point (the
``python -m repro.explore`` CLI is a thin argparse shim over it). It
executes every sampled point through the existing
:class:`~repro.experiments.runner.ExperimentRunner` memory → disk →
parallel stack, so a warm re-exploration resolves every simulation from
cache and refinement rounds only pay for genuinely new points — and all
runs stay bit-identical under both simulation kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.experiments.runner import ExperimentRunner, ResultStore, RunScale
from repro.explore.artifacts import (
    exploration_payload,
    exploration_rows,
    frontier_report,
    write_csv,
    write_json,
)
from repro.explore.objectives import (
    OBJECTIVES,
    ObjectiveScorer,
    PointScore,
    SuiteAggregator,
)
from repro.explore.pareto import pair_fronts, refine
from repro.explore.space import DesignSpace, default_space
from repro.workloads.suites import (
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    STRESS_BENCHMARKS,
    get_profile,
)

__all__ = [
    "DEFAULT_EXPLORE_BENCHMARKS",
    "ExplorationSettings",
    "ExplorationResult",
    "resolve_benchmarks",
    "run_exploration",
    "write_artifacts",
]

#: Default workload axis: the four stress scenarios plus one
#: representative of each paper regime (branchy int, memory-bound int,
#: streaming fp) — small enough for interactive runs, diverse enough
#: that the frontier is not one benchmark's opinion.
DEFAULT_EXPLORE_BENCHMARKS: Tuple[str, ...] = tuple(
    STRESS_BENCHMARKS + ["gzip", "mcf", "swim"]
)

_BENCHMARK_GROUPS = {
    "mini": DEFAULT_EXPLORE_BENCHMARKS,
    "stress": tuple(STRESS_BENCHMARKS),
    "int": tuple(INT_BENCHMARKS),
    "fp": tuple(FP_BENCHMARKS),
    "all": tuple(INT_BENCHMARKS + FP_BENCHMARKS + STRESS_BENCHMARKS),
}


def resolve_benchmarks(spec: str) -> Tuple[str, ...]:
    """Benchmark names for a ``--benchmarks`` spec.

    ``spec`` is a named group (``mini``, ``stress``, ``int``, ``fp``,
    ``all``) or a comma-separated list of profile names; unknown names
    raise the usual :class:`UnknownBenchmarkError` with the known set.
    """
    if spec in _BENCHMARK_GROUPS:
        return _BENCHMARK_GROUPS[spec]
    names = tuple(name.strip() for name in spec.split(",") if name.strip())
    if not names:
        raise ConfigurationError(f"empty benchmark spec {spec!r}")
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate benchmark names in spec {spec!r}")
    for name in names:
        get_profile(name)  # raises UnknownBenchmarkError with the known set
    return names


@dataclass(frozen=True)
class ExplorationSettings:
    """Everything that determines an exploration (and its artifact).

    ``aggregate`` switches the workload mode: ``False`` (default) makes
    ``benchmarks`` a sampled axis (one point per (config, benchmark)
    pair); ``True`` makes it the aggregation *set* every point is
    scored across via :class:`~repro.explore.objectives.SuiteAggregator`.
    ``epsilon`` / ``frontier_budget`` tune the refinement loop's
    epsilon-dominance thinning and crowding-distance selection; their
    defaults disable both, and :meth:`as_dict` omits defaulted knobs so
    pre-existing artifacts stay byte-identical.

    ``sampling`` (a :class:`~repro.sampling.plan.SamplingPlan`) switches
    every simulation to the checkpointed sampled execution mode:
    objectives are scored from error-bounded estimates, confidence
    intervals ride into the artifacts, and — because warm-state
    checkpoints are scheme-independent — a big exploration pays the
    fast-forward once per benchmark, not once per point.
    """

    samples: int = 32
    rounds: int = 2
    seed: int = 11
    strategy: str = "mixed"
    benchmarks: Tuple[str, ...] = DEFAULT_EXPLORE_BENCHMARKS
    neighbors_per_point: int = 4
    num_instructions: int = 2000
    workers: int = 0
    kernel: Optional[str] = None
    aggregate: bool = False
    epsilon: float = 0.0
    frontier_budget: Optional[int] = None
    sampling: Optional[object] = None

    def validate(self) -> None:
        if self.samples < 1:
            raise ConfigurationError("need at least one sample")
        if self.rounds < 0:
            raise ConfigurationError("rounds cannot be negative")
        if self.neighbors_per_point < 1:
            raise ConfigurationError("need at least one neighbor per point")
        if not self.benchmarks:
            raise ConfigurationError("need at least one benchmark")
        if self.epsilon < 0:
            raise ConfigurationError("epsilon cannot be negative")
        if self.frontier_budget is not None and self.frontier_budget < 1:
            raise ConfigurationError("frontier budget must be at least 1")
        if self.sampling is not None:
            self.sampling.validate()
            # Fail before any simulation if the plan cannot fit the
            # exploration's actual measured region.
            scale = self.scale()
            self.sampling.slice_windows(
                scale.warmup_instructions, scale.num_instructions
            )

    def scale(self) -> RunScale:
        return RunScale(
            num_instructions=self.num_instructions,
            warmup_instructions=self.num_instructions // 2,
            seed=self.seed,
        )

    def as_dict(self) -> Dict[str, object]:
        settings: Dict[str, object] = {
            "samples": self.samples,
            "rounds": self.rounds,
            "seed": self.seed,
            "strategy": self.strategy,
            "benchmarks": list(self.benchmarks),
            "neighbors_per_point": self.neighbors_per_point,
            "num_instructions": self.num_instructions,
        }
        if self.aggregate:
            settings["aggregate"] = True
        if self.epsilon > 0:
            settings["epsilon"] = self.epsilon
        if self.frontier_budget is not None:
            settings["frontier_budget"] = self.frontier_budget
        if self.sampling is not None:
            settings["sampling"] = self.sampling.as_dict()
        return settings


@dataclass
class ExplorationResult:
    """Everything an exploration produced."""

    settings: ExplorationSettings
    space: DesignSpace
    scores: List[PointScore]
    frontier: List[PointScore]
    pair_fronts: Dict[str, List[PointScore]]
    rounds_log: List[Dict[str, int]]
    cache_stats: Dict[str, int]
    objective_names: Sequence[str] = OBJECTIVES

    def report(self) -> str:
        return frontier_report(self)


def run_exploration(
    settings: ExplorationSettings,
    space: Optional[DesignSpace] = None,
    store: Union[ResultStore, None, bool] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExplorationResult:
    """Sample, score and refine; returns the full result.

    ``space`` defaults to :func:`~repro.explore.space.default_space`
    over the settings' benchmarks (aggregated when ``settings.aggregate``
    is set). A custom space chooses the scorer: spaces declared with
    ``aggregate_benchmarks`` score through
    :class:`~repro.explore.objectives.SuiteAggregator` (one point per
    design, suite-wide objectives), others per (config, benchmark)
    pair. ``store`` selects the disk cache exactly as for
    :class:`ExperimentRunner` (``None`` = honour ``$REPRO_CACHE_DIR``,
    ``False`` = no disk layer).

    ``runner`` substitutes the execution stack itself: the campaign
    server passes its scheduler-backed runner here so exploration
    simulations coalesce with every other in-flight request. The runner
    must already embody the settings' scale and sampling plan (checked —
    the artifact's settings block must describe how points were actually
    simulated), and it owns the disk layer, so combining it with
    ``store`` is an error.
    """
    settings.validate()
    if runner is not None:
        if store is not None:
            raise ConfigurationError(
                "pass either store or runner, not both: a runner brings "
                "its own disk-cache layer"
            )
        from repro.common.config import stable_fingerprint

        expected = settings.scale()
        if stable_fingerprint(runner.scale) != stable_fingerprint(expected):
            raise ConfigurationError(
                f"runner scale {runner.scale} does not match the "
                f"settings' scale {expected}"
            )
        mismatched_sampling = (
            (runner.sampling is None) != (settings.sampling is None)
            or (
                runner.sampling is not None
                and stable_fingerprint(runner.sampling)
                != stable_fingerprint(settings.sampling)
            )
        )
        if mismatched_sampling:
            raise ConfigurationError(
                "runner sampling plan does not match settings.sampling"
            )
    if space is None:
        space = default_space(settings.benchmarks, aggregate=settings.aggregate)
    elif bool(space.aggregate_benchmarks) != settings.aggregate:
        # The artifact's settings block must describe how points were
        # actually scored; a custom space must agree with the flag.
        raise ConfigurationError(
            "settings.aggregate must match the space's workload mode: "
            f"aggregate={settings.aggregate} but the space "
            f"{'declares' if space.aggregate_benchmarks else 'lacks'} "
            "aggregate_benchmarks"
        )
    elif settings.aggregate and space.aggregate_benchmarks != tuple(
        settings.benchmarks
    ):
        # Same reason: scoring uses the space's suite, so the settings
        # must name that exact suite (in order).
        raise ConfigurationError(
            "settings.benchmarks must match the space's "
            f"aggregate_benchmarks: {tuple(settings.benchmarks)!r} vs "
            f"{space.aggregate_benchmarks!r}"
        )
    if runner is None:
        runner = ExperimentRunner(
            settings.scale(),
            store=store,
            workers=settings.workers,
            kernel=settings.kernel,
            sampling=settings.sampling,
        )
    if space.aggregate_benchmarks:
        scorer: ObjectiveScorer = SuiteAggregator(runner, space.aggregate_benchmarks)
    else:
        scorer = ObjectiveScorer(runner)
    assignments = space.sample(settings.strategy, settings.samples, settings.seed)
    points = space.expand(assignments)
    if not points:
        raise ConfigurationError("exploration sampled no valid points")
    scores = scorer.score_many(points)
    scores, rounds_log, frontier = refine(
        space,
        scorer.score_many,
        scores,
        rounds=settings.rounds,
        per_point=settings.neighbors_per_point,
        seed=settings.seed,
        epsilon=settings.epsilon,
        frontier_budget=settings.frontier_budget,
    )
    return ExplorationResult(
        settings=settings,
        space=space,
        scores=scores,
        frontier=frontier,
        pair_fronts=pair_fronts(scores),
        rounds_log=rounds_log,
        cache_stats=runner.cache_stats(),
    )


def write_artifacts(result: ExplorationResult, out_dir) -> Dict[str, Path]:
    """Write the frontier JSON and the per-point CSV; returns the paths."""
    out = Path(out_dir)
    return {
        "json": write_json(out / "frontier.json", exploration_payload(result)),
        "csv": write_csv(out / "points.csv", exploration_rows(result)),
    }
