"""Design-space exploration CLI.

Command line::

    python -m repro.explore [--samples N] [--rounds K] [--seed S]
        [--strategy grid|random|mixed] [--benchmarks GROUP|a,b,c]
        [--aggregate [GROUP|a,b,c]] [--epsilon E] [--frontier-budget N]
        [--scale N] [--workers N] [--kernel naive|skip]
        [--sampling [SPEC]] [--neighbors N] [--out DIR]
        [--cache-dir DIR] [--no-cache] [--trace-out DIR]

Samples the scheme × geometry × processor × workload space, scores every
point on the paper's energy/performance objectives against the IQ_64_64
baseline in the same processor context, refines the Pareto frontier for
``--rounds`` adaptive rounds, prints a text report, and writes
``frontier.json`` + ``points.csv`` under ``--out``.

``--aggregate`` switches to suite-aggregated objectives: the workload
set (same specs as ``--benchmarks``; bare ``--aggregate`` means
``mini``) stops being a sampled axis and every design point is scored
*across the whole suite* — per-benchmark baselines calibrated
independently, geometric-mean aggregation, per-benchmark sub-scores in
the artifacts — so the frontier ranks suite-robust geometries, matching
the paper's cross-SPEC averages. ``--epsilon``/``--frontier-budget``
enable epsilon-dominance thinning and crowding-distance selection of
the refinement frontier.

``--sampling`` scores every point from the checkpointed sampled
execution mode (:mod:`repro.sampling`): objectives become error-bounded
estimates, the raw-metric confidence bounds ride into ``points.csv``
(``<metric>.ci_low``/``.ci_high`` columns) and the frontier JSON's
settings block, and — because warm-state checkpoints are independent of
the issue scheme — the functional fast-forward is paid once per
benchmark rather than once per design point. SPEC is the same
``key=value,...`` plan spec as the campaign CLI.

Every simulation resolves through the campaign cache stack, so a second
invocation with the same seed reports 0 executions: the artifact is
byte-identical and the whole exploration replays from cache.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro import obs
from repro.common.errors import ConfigurationError, UnknownBenchmarkError
from repro.experiments.store import ResultStore, default_cache_dir
from repro.explore.drivers import (
    ExplorationSettings,
    resolve_benchmarks,
    run_exploration,
    write_artifacts,
)

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--samples", type=int, default=32,
                        help="initial design points to sample (default 32)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="adaptive frontier-refinement rounds (default 2)")
    parser.add_argument("--seed", type=int, default=11,
                        help="master seed: fixes sampling, refinement and "
                             "simulation streams (default 11)")
    parser.add_argument("--strategy", choices=("grid", "random", "mixed"),
                        default="mixed",
                        help="initial sampling strategy (default mixed: "
                             "half strided grid, half random)")
    parser.add_argument("--benchmarks", type=str, default="mini",
                        help="workload axis: mini|stress|int|fp|all or a "
                             "comma-separated list of profile names "
                             "(default mini: stress suite + gzip,mcf,swim)")
    parser.add_argument("--aggregate", type=str, nargs="?", const="mini",
                        default=None, metavar="GROUP",
                        help="suite-aggregated mode: score every design "
                             "point across this workload set (mini|stress|"
                             "int|fp|all or a comma list; bare --aggregate "
                             "= mini) instead of sampling benchmarks as an "
                             "axis; overrides --benchmarks")
    parser.add_argument("--epsilon", type=float, default=0.0,
                        help="epsilon-dominance thinning of the refinement "
                             "frontier, as a fraction of each objective's "
                             "frontier range (default 0: disabled)")
    parser.add_argument("--frontier-budget", type=int, default=None,
                        help="max frontier points expanded per refinement "
                             "round, chosen by crowding distance "
                             "(default: no cap)")
    parser.add_argument("--scale", type=int, default=2000,
                        help="dynamic instructions per run, half warm-up "
                             "(default 2000)")
    parser.add_argument("--workers", type=int, default=0,
                        help="simulation worker processes (0 = serial)")
    parser.add_argument("--kernel", choices=("naive", "skip"), default=None,
                        help="simulation kernel override (results are "
                             "bit-identical either way)")
    parser.add_argument("--sampling", type=str, nargs="?", const="",
                        default=None, metavar="SPEC",
                        help="sampled execution mode: score points from "
                             "error-bounded estimates (plan spec "
                             "key=value,... as in the campaign CLI; bare "
                             "--sampling = defaults). Confidence bounds "
                             "ride into the artifacts")
    parser.add_argument("--neighbors", type=int, default=4,
                        help="neighbourhood samples per frontier point and "
                             "refinement round (default 4)")
    parser.add_argument("--out", type=str, default="explore-out",
                        help="artifact directory for frontier.json and "
                             "points.csv (default ./explore-out)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result-store directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-abella04)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result store (every point "
                             "simulates fresh and nothing persists)")
    parser.add_argument("--trace-out", type=str, default=None, metavar="DIR",
                        help="write observability sidecar files (Chrome "
                             "trace_event JSON, NDJSON event log, Prometheus "
                             "metrics snapshot) under DIR; artifacts stay "
                             "byte-identical (equivalent: REPRO_TRACE=DIR)")
    args = parser.parse_args(argv)

    try:
        benchmarks = resolve_benchmarks(args.aggregate or args.benchmarks)
    except (ConfigurationError, UnknownBenchmarkError) as exc:
        parser.error(str(exc))
    sampling = None
    if args.sampling is not None:
        from repro.sampling import SamplingPlan

        try:
            sampling = SamplingPlan.from_spec(args.sampling)
        except ConfigurationError as exc:
            parser.error(f"--sampling: {exc}")
    settings = ExplorationSettings(
        samples=args.samples,
        rounds=args.rounds,
        seed=args.seed,
        strategy=args.strategy,
        benchmarks=benchmarks,
        neighbors_per_point=args.neighbors,
        num_instructions=args.scale,
        workers=args.workers,
        kernel=args.kernel,
        aggregate=args.aggregate is not None,
        epsilon=args.epsilon,
        frontier_budget=args.frontier_budget,
        sampling=sampling,
    )
    try:
        settings.validate()
        settings.scale().validate()
    except (ConfigurationError, ValueError) as exc:
        parser.error(str(exc))
    if args.no_cache:
        store = False
    else:
        store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore(
            default_cache_dir()
        )

    if args.trace_out:
        obs.configure(args.trace_out)
    started = obs.clock.perf_counter()
    try:
        with obs.span("explore", samples=args.samples, rounds=args.rounds):
            result = run_exploration(settings, store=store)
    finally:
        obs.flush()
    elapsed = obs.clock.perf_counter() - started
    paths = write_artifacts(result, args.out)

    print(result.report())
    print()
    print(f"artifacts: {paths['json']} {paths['csv']}")
    stats = result.cache_stats
    store_note = "" if args.no_cache else f" (store: {store.root})"
    print(
        f"explore: {len(result.scores)} points in {elapsed:.1f}s — "
        f"{stats['simulations']} executions, {stats['disk_hits']} disk hits, "
        f"{stats['memory_hits']} memory hits{store_note}"
    )


if __name__ == "__main__":
    main()
