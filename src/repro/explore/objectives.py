"""Objective scoring for exploration points.

Each :class:`~repro.explore.space.DesignPoint` is scored against the
paper's Section 4 baseline organization (a conventional 64+64-entry
CAM/RAM queue) *running in the same processor context* — same issue
width, same ROB — so the objectives isolate the issue organization:

* ``ipc_loss_pct`` — IPC loss vs. the baseline, in percent (the paper's
  performance axis; negative means the point is faster),
* ``energy`` — issue-logic energy normalized to the baseline
  (Figure 13's metric),
* ``energy_delay`` / ``energy_delay2`` — whole-chip ED and ED²
  normalized to the baseline, under the paper's 23%-of-chip calibration
  (Figures 14/15, via :mod:`repro.energy.metrics`).

All four objectives are minimized. Simulations resolve through the
:class:`~repro.experiments.runner.ExperimentRunner` cache stack, so
re-scoring a point anyone has ever evaluated is free.

Two scorers share that machinery. :class:`ObjectiveScorer` scores one
(config, benchmark) pair — the per-workload axis mode.
:class:`SuiteAggregator` scores one design across a declared workload
*set* the way the paper's Figures 13–15 average across SPEC: every
benchmark gets its own independently calibrated baseline, the
normalized ratios are combined by geometric mean, and the per-benchmark
sub-scores ride along in the :class:`PointScore` for the artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import IssueSchemeConfig, ProcessorConfig
from repro.common.errors import ConfigurationError
from repro.energy.metrics import calibrate_rest_of_chip, compute_metrics
from repro.energy.model import EnergyModel
from repro.experiments.configs import IQ_64_64
from repro.experiments.runner import ExperimentRunner
from repro.explore.space import DesignPoint

__all__ = ["OBJECTIVES", "PointScore", "ObjectiveScorer", "SuiteAggregator"]

#: Objective names, all minimized, in report order.
OBJECTIVES: Tuple[str, ...] = (
    "ipc_loss_pct",
    "energy",
    "energy_delay",
    "energy_delay2",
)


def _geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, multiplied in input order for float determinism."""
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


@dataclass(frozen=True)
class PointScore:
    """One evaluated point: raw performance plus normalized objectives.

    ``per_benchmark`` is only populated by :class:`SuiteAggregator`:
    one sub-score record per benchmark in suite order (ipc, baseline
    ipc and the four per-benchmark objectives), so artifacts can show
    which workloads a suite-robust point wins and loses.

    ``intervals`` is only populated when scoring runs in the sampled
    execution mode: the point config's raw-metric confidence bounds
    (``{metric: {"low", "high"}}``) as reported by the estimator, so
    artifacts carry the uncertainty alongside the point estimates.
    """

    point: DesignPoint
    ipc: float
    baseline_ipc: float
    objectives: Dict[str, float]
    per_benchmark: Optional[Dict[str, Dict[str, float]]] = None
    intervals: Optional[Dict[str, Dict[str, float]]] = None

    def as_row(self) -> Dict[str, object]:
        """Flat record for CSV artifacts and reports.

        Aggregated scores embed their per-benchmark sub-scores as
        ``<benchmark>.<metric>`` columns; sampled scores add
        ``<metric>.ci_low`` / ``<metric>.ci_high`` bounds. Axis-mode
        full-simulation rows are schema-frozen — new columns appear only
        when the producing mode is active.
        """
        row: Dict[str, object] = {
            "point_id": self.point.point_id,
            "label": self.point.label,
            "benchmark": self.point.benchmark,
        }
        row.update(self.point.assignment_dict)
        row["ipc"] = self.ipc
        row["baseline_ipc"] = self.baseline_ipc
        for name in OBJECTIVES:
            row[name] = self.objectives[name]
        if self.intervals:
            for metric, bounds in self.intervals.items():
                row[f"{metric}.ci_low"] = bounds["low"]
                row[f"{metric}.ci_high"] = bounds["high"]
        if self.per_benchmark:
            for benchmark, sub in self.per_benchmark.items():
                for metric, value in sub.items():
                    row[f"{benchmark}.{metric}"] = value
        return row


class ObjectiveScorer:
    """Scores points through a shared (cached, parallel) runner."""

    def __init__(
        self,
        runner: ExperimentRunner,
        baseline_scheme: IssueSchemeConfig = IQ_64_64,
    ) -> None:
        self.runner = runner
        self.baseline_scheme = baseline_scheme

    def baseline_config(self, point: DesignPoint) -> ProcessorConfig:
        """The point's processor with the baseline issue organization."""
        return replace(point.config, scheme=self.baseline_scheme)

    def required_pairs(self, points: Sequence[DesignPoint]) -> List[Tuple[str, ProcessorConfig]]:
        """Deduplicated (benchmark, config) simulations scoring needs.

        This is the prefetch frontier: handing it to
        :meth:`ExperimentRunner.run_many` warms the memory cache (in
        parallel when the runner is configured for it) so scoring itself
        never simulates.
        """
        pairs: List[Tuple[str, ProcessorConfig]] = []
        seen = set()
        for point in points:
            for config in (self.baseline_config(point), point.config):
                key = (point.benchmark, config)
                if key not in seen:
                    seen.add(key)
                    pairs.append(key)
        return pairs

    def _evaluate(
        self, benchmark: str, config: ProcessorConfig
    ) -> Tuple[float, float, Dict[str, float]]:
        """(ipc, baseline ipc, objectives) of ``config`` on ``benchmark``.

        The baseline's rest-of-chip calibration is recomputed here per
        benchmark, matching the figure machinery.
        """
        base_config = replace(config, scheme=self.baseline_scheme)
        base_stats = self.runner.run(benchmark, base_config)
        if base_stats.ipc <= 0.0:
            raise ConfigurationError(
                f"baseline run on {benchmark!r} committed no instructions "
                "(IPC 0); the run scale is too small to score against — "
                "increase num_instructions"
            )
        stats = self.runner.run(benchmark, config)
        base_model = EnergyModel(base_config)
        model = EnergyModel(config)
        rest = calibrate_rest_of_chip(
            base_model.energy_pj(base_stats.events.as_dict()),
            base_stats.cycles,
            base_stats.committed_instructions,
        )
        base_metrics = compute_metrics(base_model, base_stats, rest)
        metrics = compute_metrics(model, stats, rest)
        normalized = metrics.normalized_to(base_metrics)
        objectives = {
            "ipc_loss_pct": 100.0 * (base_stats.ipc - stats.ipc) / base_stats.ipc,
            "energy": normalized["energy"],
            "energy_delay": normalized["energy_delay"],
            "energy_delay2": normalized["energy_delay2"],
        }
        return stats.ipc, base_stats.ipc, objectives

    #: Estimator metrics whose confidence bounds ride into artifacts.
    #: Only metrics whose *raw* point value appears in the row are
    #: emitted — ``ipc`` brackets the row's raw ``ipc`` column and
    #: ``energy_per_inst`` is self-describing — because the ``energy*``
    #: objective columns are baseline-normalized ratios that same-named
    #: raw-domain bounds would silently fail to bracket.
    _INTERVAL_METRICS = ("ipc", "energy_per_inst")

    def _intervals(
        self, benchmark: str, config: ProcessorConfig
    ) -> Optional[Dict[str, Dict[str, float]]]:
        """Raw-metric confidence bounds when scoring sampled estimates."""
        sampled = self.runner.sampled_result(benchmark, config)
        if sampled is None:
            return None
        return {
            metric: {
                "low": sampled.estimates[metric].ci_low,
                "high": sampled.estimates[metric].ci_high,
            }
            for metric in self._INTERVAL_METRICS
        }

    def score(self, point: DesignPoint) -> PointScore:
        """Evaluate one point (hits the warm cache after a prefetch)."""
        ipc, baseline_ipc, objectives = self._evaluate(point.benchmark, point.config)
        return PointScore(
            point=point,
            ipc=ipc,
            baseline_ipc=baseline_ipc,
            objectives=objectives,
            intervals=self._intervals(point.benchmark, point.config),
        )

    def score_many(self, points: Sequence[DesignPoint]) -> List[PointScore]:
        """Prefetch every needed simulation, then score each point."""
        if not points:
            return []
        self.runner.prefetch(self.required_pairs(points))
        return [self.score(point) for point in points]


class SuiteAggregator(ObjectiveScorer):
    """Scores one design point across a whole workload suite.

    The paper's Figures 13–15 compare issue organizations on suite
    averages, not per-program points. This scorer reproduces that: for
    every benchmark in ``benchmarks`` the point and its same-context
    baseline are simulated (through the shared runner's cache stack),
    each benchmark's baseline is calibrated independently, and the
    suite objectives are

    * ``energy`` / ``energy_delay`` / ``energy_delay2`` — geometric
      mean of the per-benchmark baseline-normalized ratios, and
    * ``ipc_loss_pct`` — ``100 · (1 − geomean(IPC ratio))``, i.e. the
      loss implied by the geometric-mean relative performance (the
      suite-level analogue of the paper's average slowdown).

    All aggregation runs in fixed suite order, so results are
    bit-deterministic for a fixed seed.
    """

    def __init__(
        self,
        runner: ExperimentRunner,
        benchmarks: Sequence[str],
        baseline_scheme: IssueSchemeConfig = IQ_64_64,
    ) -> None:
        super().__init__(runner, baseline_scheme)
        if not benchmarks:
            raise ConfigurationError("SuiteAggregator needs at least one benchmark")
        self.benchmarks: Tuple[str, ...] = tuple(benchmarks)

    def required_pairs(self, points: Sequence[DesignPoint]) -> List[Tuple[str, ProcessorConfig]]:
        """The full (point × suite) simulation matrix, deduplicated."""
        pairs: List[Tuple[str, ProcessorConfig]] = []
        seen = set()
        for point in points:
            for config in (self.baseline_config(point), point.config):
                for benchmark in self.benchmarks:
                    key = (benchmark, config)
                    if key not in seen:
                        seen.add(key)
                        pairs.append(key)
        return pairs

    def score(self, point: DesignPoint) -> PointScore:
        """Evaluate one point across the suite (cache-hot after prefetch)."""
        per_benchmark: Dict[str, Dict[str, float]] = {}
        ipc_ratios: List[float] = []
        ipcs: List[float] = []
        baseline_ipcs: List[float] = []
        # ipc_loss_pct is aggregated via the IPC ratios (it can be
        # negative, so its geomean would be meaningless); only the
        # ratio-valued energy objectives geomean directly.
        ratio_objectives = ("energy", "energy_delay", "energy_delay2")
        ratios: Dict[str, List[float]] = {name: [] for name in ratio_objectives}
        for benchmark in self.benchmarks:
            ipc, baseline_ipc, objectives = self._evaluate(benchmark, point.config)
            sub: Dict[str, float] = {"ipc": ipc, "baseline_ipc": baseline_ipc}
            sub.update(objectives)
            bounds = self._intervals(benchmark, point.config)
            if bounds is not None:
                sub["ipc_ci_low"] = bounds["ipc"]["low"]
                sub["ipc_ci_high"] = bounds["ipc"]["high"]
            per_benchmark[benchmark] = sub
            ipcs.append(ipc)
            baseline_ipcs.append(baseline_ipc)
            ipc_ratios.append(ipc / baseline_ipc)
            for name in ratio_objectives:
                ratios[name].append(objectives[name])
        aggregated = {
            "ipc_loss_pct": 100.0 * (1.0 - _geometric_mean(ipc_ratios)),
            "energy": _geometric_mean(ratios["energy"]),
            "energy_delay": _geometric_mean(ratios["energy_delay"]),
            "energy_delay2": _geometric_mean(ratios["energy_delay2"]),
        }
        return PointScore(
            point=point,
            ipc=_geometric_mean(ipcs),
            baseline_ipc=_geometric_mean(baseline_ipcs),
            objectives=aggregated,
            per_benchmark=per_benchmark,
        )
