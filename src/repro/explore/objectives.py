"""Objective scoring for exploration points.

Each :class:`~repro.explore.space.DesignPoint` is scored against the
paper's Section 4 baseline organization (a conventional 64+64-entry
CAM/RAM queue) *running in the same processor context* — same issue
width, same ROB — so the objectives isolate the issue organization:

* ``ipc_loss_pct`` — IPC loss vs. the baseline, in percent (the paper's
  performance axis; negative means the point is faster),
* ``energy`` — issue-logic energy normalized to the baseline
  (Figure 13's metric),
* ``energy_delay`` / ``energy_delay2`` — whole-chip ED and ED²
  normalized to the baseline, under the paper's 23%-of-chip calibration
  (Figures 14/15, via :mod:`repro.energy.metrics`).

All four objectives are minimized. Simulations resolve through the
:class:`~repro.experiments.runner.ExperimentRunner` cache stack, so
re-scoring a point anyone has ever evaluated is free.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.common.config import IssueSchemeConfig, ProcessorConfig
from repro.energy.metrics import calibrate_rest_of_chip, compute_metrics
from repro.energy.model import EnergyModel
from repro.experiments.configs import IQ_64_64
from repro.experiments.runner import ExperimentRunner
from repro.explore.space import DesignPoint

__all__ = ["OBJECTIVES", "PointScore", "ObjectiveScorer"]

#: Objective names, all minimized, in report order.
OBJECTIVES: Tuple[str, ...] = (
    "ipc_loss_pct",
    "energy",
    "energy_delay",
    "energy_delay2",
)


@dataclass(frozen=True)
class PointScore:
    """One evaluated point: raw performance plus normalized objectives."""

    point: DesignPoint
    ipc: float
    baseline_ipc: float
    objectives: Dict[str, float]

    def as_row(self) -> Dict[str, object]:
        """Flat record for CSV artifacts and reports."""
        row: Dict[str, object] = {
            "point_id": self.point.point_id,
            "label": self.point.label,
            "benchmark": self.point.benchmark,
        }
        row.update(self.point.assignment_dict)
        row["ipc"] = self.ipc
        row["baseline_ipc"] = self.baseline_ipc
        for name in OBJECTIVES:
            row[name] = self.objectives[name]
        return row


class ObjectiveScorer:
    """Scores points through a shared (cached, parallel) runner."""

    def __init__(
        self,
        runner: ExperimentRunner,
        baseline_scheme: IssueSchemeConfig = IQ_64_64,
    ) -> None:
        self.runner = runner
        self.baseline_scheme = baseline_scheme

    def baseline_config(self, point: DesignPoint) -> ProcessorConfig:
        """The point's processor with the baseline issue organization."""
        return replace(point.config, scheme=self.baseline_scheme)

    def required_pairs(self, points: Sequence[DesignPoint]) -> List[Tuple[str, ProcessorConfig]]:
        """Deduplicated (benchmark, config) simulations scoring needs.

        This is the prefetch frontier: handing it to
        :meth:`ExperimentRunner.run_many` warms the memory cache (in
        parallel when the runner is configured for it) so scoring itself
        never simulates.
        """
        pairs: List[Tuple[str, ProcessorConfig]] = []
        seen = set()
        for point in points:
            for config in (self.baseline_config(point), point.config):
                key = (point.benchmark, config)
                if key not in seen:
                    seen.add(key)
                    pairs.append(key)
        return pairs

    def score(self, point: DesignPoint) -> PointScore:
        """Evaluate one point (hits the warm cache after a prefetch)."""
        base_config = self.baseline_config(point)
        base_stats = self.runner.run(point.benchmark, base_config)
        stats = self.runner.run(point.benchmark, point.config)
        base_model = EnergyModel(base_config)
        model = EnergyModel(point.config)
        rest = calibrate_rest_of_chip(
            base_model.energy_pj(base_stats.events.as_dict()),
            base_stats.cycles,
            base_stats.committed_instructions,
        )
        base_metrics = compute_metrics(base_model, base_stats, rest)
        metrics = compute_metrics(model, stats, rest)
        normalized = metrics.normalized_to(base_metrics)
        objectives = {
            "ipc_loss_pct": 100.0 * (base_stats.ipc - stats.ipc) / base_stats.ipc,
            "energy": normalized["energy"],
            "energy_delay": normalized["energy_delay"],
            "energy_delay2": normalized["energy_delay2"],
        }
        return PointScore(
            point=point,
            ipc=stats.ipc,
            baseline_ipc=base_stats.ipc,
            objectives=objectives,
        )

    def score_many(self, points: Sequence[DesignPoint]) -> List[PointScore]:
        """Prefetch every needed simulation, then score each point."""
        if not points:
            return []
        self.runner.prefetch(self.required_pairs(points))
        return [self.score(point) for point in points]
