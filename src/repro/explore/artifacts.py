"""Artifact writers shared by the exploration and campaign CLIs.

:func:`write_json` / :func:`write_csv` are generic, atomic writers (the
campaign CLI's ``--output`` reuses them); the ``exploration_*`` helpers
shape an :class:`~repro.explore.drivers.ExplorationResult` into the
frontier JSON artifact, flat CSV rows and the text report rendered with
:mod:`repro.experiments.report`.

The JSON artifact is deterministic for a fixed seed: it carries the
settings, the declared space, every scored point and the frontier ids —
but no wall-clock or cache telemetry — so cold and warm runs of the same
exploration produce byte-identical artifacts.
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.report import render_series, render_table

__all__ = [
    "write_json",
    "write_csv",
    "exploration_payload",
    "exploration_rows",
    "frontier_report",
]


def _atomic_write_text(path: Path, text: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def write_json(path: os.PathLike, payload) -> Path:
    """Atomically write ``payload`` as sorted, indented JSON."""
    text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    return _atomic_write_text(Path(path), text)


def write_csv(
    path: os.PathLike,
    rows: Sequence[Mapping[str, object]],
    fieldnames: Optional[Sequence[str]] = None,
) -> Path:
    """Atomically write dict ``rows`` as CSV.

    Column order defaults to first-seen key order across all rows, so
    heterogeneous rows (e.g. different figure shapes) still land in one
    coherent table; missing cells stay empty.
    """
    if fieldnames is None:
        names: List[str] = []
        for row in rows:
            for key in row:
                if key not in names:
                    names.append(key)
        fieldnames = names
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return _atomic_write_text(Path(path), buffer.getvalue())


# ---------------------------------------------------------------------------
# Exploration-specific shaping.
# ---------------------------------------------------------------------------


def exploration_rows(result) -> List[Dict[str, object]]:
    """One flat record per scored point (assignment + objectives)."""
    frontier = {score.point.point_id for score in result.frontier}
    rows = []
    for score in result.scores:
        row = score.as_row()
        row["on_frontier"] = score.point.point_id in frontier
        rows.append(row)
    return rows


def exploration_payload(result) -> Dict[str, object]:
    """The JSON artifact: settings, space, points, fronts."""
    return {
        "subsystem": "repro.explore",
        "settings": result.settings.as_dict(),
        "space": result.space.describe(),
        "points": exploration_rows(result),
        "frontier": [score.point.point_id for score in result.frontier],
        "pair_fronts": {
            pair: [score.point.point_id for score in front]
            for pair, front in result.pair_fronts.items()
        },
        "refinement": result.rounds_log,
    }


def _display_labels(scores) -> Dict[str, str]:
    """Unique report label per point, keyed by point id.

    Point labels encode scheme/width/ROB/workload but not every
    dimension (e.g. distributed FUs), and in aggregate mode the
    workload suffix is the same suite token for every point — so
    distinct frontier points can share a label. Colliding labels get a
    ``#<point_id prefix>`` suffix to keep every table row visible.
    """
    counts: Dict[str, int] = {}
    for score in scores:
        counts[score.point.label] = counts.get(score.point.label, 0) + 1
    return {
        score.point.point_id: (
            score.point.label
            if counts[score.point.label] == 1
            else f"{score.point.label}#{score.point.point_id[:6]}"
        )
        for score in scores
    }


def frontier_report(result) -> str:
    """Text report of the frontier via the figure renderers.

    Suite-aggregated explorations append a per-benchmark IPC-loss
    breakdown of the frontier points, so robust geometries can be told
    apart from ones that merely average well.
    """
    sections = []
    labels = _display_labels(result.frontier)
    table = {
        name: {
            labels[score.point.point_id]: score.objectives[name]
            for score in result.frontier
        }
        for name in result.objective_names
    }
    sections.append(
        render_table(
            f"Pareto frontier ({len(result.frontier)} of "
            f"{len(result.scores)} points)",
            table,
        )
    )
    benchmarks = sorted(
        {bench for score in result.frontier for bench in (score.per_benchmark or {})}
    )
    if benchmarks:
        breakdown = {
            bench: {
                labels[score.point.point_id]: score.per_benchmark[bench]["ipc_loss_pct"]
                for score in result.frontier
                if score.per_benchmark and bench in score.per_benchmark
            }
            for bench in benchmarks
        }
        sections.append(
            render_table("Per-benchmark IPC loss (%) across the suite", breakdown)
        )
    pair_sizes = {
        pair: float(len(front)) for pair, front in result.pair_fronts.items()
    }
    sections.append(
        render_series("Non-dominated points per objective pair", pair_sizes, unit="")
    )
    if result.rounds_log:
        rounds = {
            f"round {entry['round']}": float(entry["evaluated"])
            for entry in result.rounds_log
        }
        sections.append(
            render_series("Refinement: new points evaluated", rounds, unit="")
        )
    return "\n\n".join(sections)
