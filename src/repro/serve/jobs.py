"""Job model and execution for the campaign server.

A *job* is one client request: a single simulation, a figure campaign,
or a design-space exploration. Jobs share nothing but the scheduler —
which is exactly the point: every simulation any job needs goes through
the same coalescing chokepoint, so concurrent jobs asking overlapping
questions pay for the union of their work, not the sum.

Lifecycle (all states are also streamed as events)::

    queued → running → batched → simulating → done
                                            ↘ failed

plus a per-unit provenance event (``store`` / ``coalesced`` /
``simulated``) for every work unit, so a client can see precisely which
parts of its request were answered warm.

Artifacts are written with the same atomic writers the CLIs use and are
**provenance-free**: N clients posting identical jobs receive
byte-identical artifact bytes, whether their units were simulated,
coalesced or served from the store.
"""

from __future__ import annotations

import asyncio
import itertools
import uuid
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.common.config import VALID_KERNELS, scheme_name
from repro.common.errors import ConfigurationError, ReproError
from repro.experiments import figures as fig_mod
from repro.experiments.campaign import ALL_FIGURES, export_campaign
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.experiments.store import ResultStore
from repro.serve.scheduler import (
    CoalescingScheduler,
    ScheduledRunner,
    SchedulerShutdown,
)
from repro.serve.units import WorkUnit

__all__ = ["Job", "JobError", "JobService", "JOB_KINDS"]

JOB_KINDS = ("simulation", "figures", "exploration")

#: Terminal job states.
_TERMINAL = ("done", "failed")


class JobError(ReproError):
    """A job spec the service cannot accept (HTTP 400)."""


def _scheme_registry() -> Dict[str, object]:
    """Paper-name → scheme config, from the full figure matrix.

    The same name set ``campaign --schemes`` accepts, so CLI and service
    speak one vocabulary.
    """
    return {
        scheme_name(scheme): scheme
        for __, scheme in fig_mod.required_runs(ALL_FIGURES)
    }


def _parse_scale(spec: Dict, default_scale: int = 4000) -> RunScale:
    """The job's ``RunScale`` from ``scale``/``seed`` keys (campaign rules:
    warm-up is half the run)."""
    scale = spec.pop("scale", default_scale)
    seed = spec.pop("seed", 11)
    if not isinstance(scale, int) or isinstance(scale, bool):
        raise JobError(f"scale must be an integer, got {scale!r}")
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise JobError(f"seed must be an integer, got {seed!r}")
    run_scale = RunScale(
        num_instructions=scale, warmup_instructions=scale // 2, seed=seed
    )
    try:
        run_scale.validate()
    except ValueError as exc:
        raise JobError(f"scale {scale}: {exc}") from exc
    return run_scale


def _parse_kernel(spec: Dict) -> Optional[str]:
    kernel = spec.pop("kernel", None)
    if kernel is not None and kernel not in VALID_KERNELS:
        raise JobError(
            f"unknown kernel {kernel!r}; valid: {', '.join(VALID_KERNELS)}"
        )
    return kernel


def _parse_sampling(spec: Dict):
    sampling = spec.pop("sampling", None)
    if sampling is None:
        return None
    if not isinstance(sampling, str):
        raise JobError("sampling must be a plan spec string (key=value,...)")
    from repro.sampling import SamplingPlan

    try:
        return SamplingPlan.from_spec(sampling)
    except ConfigurationError as exc:
        raise JobError(f"sampling: {exc}") from exc


def _reject_unknown_keys(spec: Dict, kind: str) -> None:
    if spec:
        raise JobError(
            f"unknown keys for a {kind} job: {', '.join(sorted(spec))}"
        )


class Job:
    """One accepted request, its event log and its artifacts."""

    def __init__(self, job_id: str, kind: str, spec: Dict) -> None:
        self.id = job_id
        self.kind = kind
        self.spec = spec
        self.state = "queued"
        self.created = obs.clock.wall_time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.error: Optional[str] = None
        self.result: Optional[Dict] = None
        self.events: List[Dict] = []
        self.provenance: Dict[str, int] = {}
        self.artifacts: Dict[str, Path] = {}
        self.task: Optional[asyncio.Task] = None
        self._seq = itertools.count()
        self.emit("queued")

    def emit(self, event: str, **detail) -> None:
        """Append one event to the job's log (loop thread only)."""
        record = {"seq": next(self._seq), "event": event}
        record.update(detail)
        self.events.append(record)

    def record_outcome(self, outcome) -> None:
        """File one unit outcome: a provenance event plus the tally."""
        payload = outcome.event_payload()
        self.provenance[outcome.provenance] = (
            self.provenance.get(outcome.provenance, 0) + 1
        )
        self.emit("unit", **payload)

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def fail(self, error: str) -> None:
        self.state = "failed"
        self.error = error
        self.finished = obs.clock.wall_time()
        self.emit("failed", error=error)

    def summary(self) -> Dict:
        """The ``GET /v1/jobs/<id>`` status payload."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "spec": self.spec,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "result": self.result,
            "provenance": dict(self.provenance),
            "events": len(self.events),
            "artifacts": sorted(self.artifacts),
        }


class JobService:
    """Parses, runs and indexes jobs on top of the scheduler."""

    def __init__(
        self,
        store: ResultStore,
        scheduler: CoalescingScheduler,
        artifact_root: Path,
        job_threads: int = 4,
    ) -> None:
        self.store = store
        self.scheduler = scheduler
        self.artifact_root = Path(artifact_root)
        self.jobs: Dict[str, Job] = {}
        self.accepting = True
        self._counter = itertools.count(1)
        # Job bodies (figure assembly, exploration drivers) run here —
        # deliberately NOT the scheduler's batch pool, so a job waiting
        # on the scheduler can never starve the batch that would unblock
        # it.
        from concurrent.futures import ThreadPoolExecutor

        self._job_pool = ThreadPoolExecutor(
            max_workers=job_threads, thread_name_prefix="serve-job"
        )
        self._schemes = _scheme_registry()

    # ------------------------------------------------------------------
    # Spec parsing (raises JobError on anything malformed).
    # ------------------------------------------------------------------

    def parse(self, payload) -> Dict:
        """Validate and normalize a job spec; returns the parsed form."""
        if not isinstance(payload, dict):
            raise JobError("job spec must be a JSON object")
        spec = dict(payload)
        kind = spec.pop("type", None)
        if kind not in JOB_KINDS:
            raise JobError(
                f"job type must be one of {', '.join(JOB_KINDS)}; got {kind!r}"
            )
        parsed: Dict = {"type": kind}
        parsed["scale"] = _parse_scale(spec)
        parsed["kernel"] = _parse_kernel(spec)
        parsed["sampling"] = _parse_sampling(spec)
        if kind == "simulation":
            benchmark = spec.pop("benchmark", None)
            if not isinstance(benchmark, str):
                raise JobError("simulation jobs need a benchmark name")
            from repro.workloads.suites import get_profile

            try:
                get_profile(benchmark)  # the error names the known set
            except ReproError as exc:
                raise JobError(str(exc)) from exc
            scheme = spec.pop("scheme", None)
            if scheme not in self._schemes:
                raise JobError(
                    f"unknown scheme {scheme!r}; known: "
                    + ", ".join(sorted(self._schemes))
                )
            parsed["benchmark"] = benchmark
            parsed["scheme"] = scheme
        elif kind == "figures":
            numbers = spec.pop("figures", None)
            if not (
                isinstance(numbers, list)
                and numbers
                and all(
                    isinstance(n, int) and not isinstance(n, bool)
                    for n in numbers
                )
            ):
                raise JobError("figures jobs need a non-empty integer list")
            unknown = [n for n in numbers if n not in ALL_FIGURES]
            if unknown:
                raise JobError(
                    f"unknown figures {unknown}; known: {ALL_FIGURES}"
                )
            fmt = spec.pop("format", "json")
            if fmt not in ("json", "csv"):
                raise JobError(f"format must be json or csv, got {fmt!r}")
            parsed["figures"] = numbers
            parsed["format"] = fmt
        else:  # exploration
            from repro.explore.drivers import (
                ExplorationSettings,
                resolve_benchmarks,
            )

            benchmarks = spec.pop("benchmarks", "mini")
            if isinstance(benchmarks, list):
                benchmarks = ",".join(benchmarks)
            if not isinstance(benchmarks, str):
                raise JobError("benchmarks must be a group name or a list")
            scale: RunScale = parsed["scale"]
            try:
                settings = ExplorationSettings(
                    samples=spec.pop("samples", 16),
                    rounds=spec.pop("rounds", 1),
                    seed=scale.seed,
                    strategy=spec.pop("strategy", "mixed"),
                    benchmarks=resolve_benchmarks(benchmarks),
                    neighbors_per_point=spec.pop("neighbors", 4),
                    num_instructions=scale.num_instructions,
                    workers=0,
                    kernel=parsed["kernel"],
                    aggregate=bool(spec.pop("aggregate", False)),
                    epsilon=float(spec.pop("epsilon", 0.0)),
                    frontier_budget=spec.pop("frontier_budget", None),
                    sampling=parsed["sampling"],
                )
                settings.validate()
            except (ReproError, TypeError, ValueError) as exc:
                raise JobError(f"exploration settings: {exc}") from exc
            parsed["settings"] = settings
        _reject_unknown_keys(spec, kind)
        return parsed

    # ------------------------------------------------------------------
    # Submission and execution.
    # ------------------------------------------------------------------

    def submit(self, payload) -> Job:
        """Accept one job and start it; raises :class:`JobError` on a bad
        spec and :class:`SchedulerShutdown` while shutting down."""
        if not self.accepting:
            raise SchedulerShutdown("server shutting down")
        parsed = self.parse(payload)
        obs.counter("repro_serve_jobs_total", kind=parsed["type"]).inc()
        job_id = f"job-{next(self._counter):04d}-{uuid.uuid4().hex[:8]}"
        job = Job(job_id, parsed["type"], _displayable(parsed))
        job.parsed = parsed
        self.jobs[job_id] = job
        job.task = asyncio.ensure_future(self._run(job))
        return job

    async def _run(self, job: Job) -> None:
        if job.state != "queued":  # failed by shutdown before starting
            return
        job.state = "running"
        job.started = obs.clock.wall_time()
        job.emit("running")
        try:
            handler = {
                "simulation": self._run_simulation,
                "figures": self._run_figures,
                "exploration": self._run_exploration,
            }[job.kind]
            with obs.span("serve.job", job=job.id, kind=job.kind):
                job.result = await handler(job, job.parsed)
        except SchedulerShutdown as exc:
            job.fail(f"server shutting down: {exc}")
        except asyncio.CancelledError:
            job.fail("server shutting down: job cancelled")
            raise
        except Exception as exc:  # noqa: BLE001 — reported, not hidden
            job.fail(f"{type(exc).__name__}: {exc}")
        else:
            job.state = "done"
            job.finished = obs.clock.wall_time()
            job.emit("done", provenance=dict(job.provenance))

    def _job_dir(self, job: Job) -> Path:
        return self.artifact_root / job.id

    async def _resolve_units(self, job: Job, units: List[WorkUnit]):
        """Route units through the scheduler, narrating the lifecycle."""
        job.emit("batched", units=len(units))
        job.emit("simulating")
        outcomes = await self.scheduler.resolve(units)
        for outcome in outcomes:
            job.record_outcome(outcome)
        return outcomes

    async def _in_thread(self, func, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._job_pool, func, *args)

    async def _run_simulation(self, job: Job, parsed: Dict) -> Dict:
        from repro.explore.artifacts import write_json

        scheme = self._schemes[parsed["scheme"]]
        unit = WorkUnit(
            benchmark=parsed["benchmark"],
            scheme=scheme,
            scale=parsed["scale"],
            kernel=parsed["kernel"],
            sampling=parsed["sampling"],
        )
        (outcome,) = await self._resolve_units(job, [unit])
        # The artifact is provenance-free on purpose: coalesced, warm and
        # simulated askers of the same unit get byte-identical bytes.
        payload = {
            "benchmark": parsed["benchmark"],
            "scheme": parsed["scheme"],
            "scale": parsed["scale"].num_instructions,
            "seed": parsed["scale"].seed,
            "key": outcome.key,
            "stats": outcome.stats.to_dict(),
        }
        extra = await self._in_thread(self.store.load_with_extra, outcome.key)
        if extra is not None and extra[1] is not None:
            payload["sampled"] = extra[1]
        path = await self._in_thread(
            write_json, self._job_dir(job) / "result.json", payload
        )
        job.artifacts["result.json"] = Path(path)
        return {
            "key": outcome.key,
            "ipc": outcome.stats.ipc,
            "provenance": outcome.provenance,
        }

    async def _run_figures(self, job: Job, parsed: Dict) -> Dict:
        numbers = parsed["figures"]
        pairs = fig_mod.required_runs(numbers)
        units = [
            WorkUnit(
                benchmark=benchmark,
                scheme=scheme,
                scale=parsed["scale"],
                kernel=parsed["kernel"],
                sampling=parsed["sampling"],
            )
            for benchmark, scheme in pairs
        ]
        await self._resolve_units(job, units)
        job.emit("assembling", figures=numbers)
        # Every unit is now in the shared store, so this runner resolves
        # the whole matrix from disk — the export itself simulates
        # nothing and reuses the exact CLI code path (byte-identical
        # artifacts by construction).
        runner = ExperimentRunner(
            parsed["scale"],
            store=self.store,
            kernel=parsed["kernel"],
            sampling=parsed["sampling"],
        )
        fmt = parsed["format"]
        name = f"campaign.{fmt}"
        path = await self._in_thread(
            export_campaign, runner, numbers, fmt, str(self._job_dir(job) / name)
        )
        job.artifacts[name] = Path(path)
        return {
            "figures": numbers,
            "pairs": len(pairs),
            "cache": runner.cache_stats(),
        }

    async def _run_exploration(self, job: Job, parsed: Dict) -> Dict:
        from repro.explore.drivers import run_exploration, write_artifacts

        settings = parsed["settings"]
        loop = asyncio.get_running_loop()
        runner = ScheduledRunner(
            self.scheduler,
            scale=settings.scale(),
            kernel=settings.kernel,
            sampling=settings.sampling,
            # Outcomes surface from a worker thread; hop to the loop so
            # the event log stays single-threaded.
            on_outcome=lambda outcome: loop.call_soon_threadsafe(
                job.record_outcome, outcome
            ),
        )
        job.emit("batched", units="adaptive")
        job.emit("simulating")
        result = await self._in_thread(
            lambda: run_exploration(settings, runner=runner)
        )
        job.emit("assembling", artifacts=["frontier.json", "points.csv"])
        paths = await self._in_thread(
            write_artifacts, result, self._job_dir(job)
        )
        for name, path in paths.items():
            job.artifacts[Path(path).name] = Path(path)
        return {
            "points": len(result.scores),
            "frontier": len(result.frontier),
            "cache": result.cache_stats,
        }

    # ------------------------------------------------------------------
    # Shutdown.
    # ------------------------------------------------------------------

    async def shutdown(self, drain_timeout: float = 60.0) -> None:
        """Stop accepting work and settle every live job.

        Queued jobs fail immediately with a clear status; running jobs
        either complete (their batches drain) or fail when the scheduler
        refuses their next request. Job tasks are awaited so nothing is
        left dangling.
        """
        self.accepting = False
        for job in self.jobs.values():
            if job.state == "queued":
                job.fail("server shutting down before execution")
        tasks = [
            job.task
            for job in self.jobs.values()
            if job.task is not None and not job.task.done()
        ]
        if tasks:
            __, pending = await asyncio.wait(tasks, timeout=drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._job_pool.shutdown(wait=True)


def _displayable(parsed: Dict) -> Dict:
    """The spec echo in status payloads: JSON-safe, human-oriented."""
    display: Dict = {"type": parsed["type"]}
    scale: RunScale = parsed["scale"]
    display["scale"] = scale.num_instructions
    display["seed"] = scale.seed
    if parsed.get("kernel"):
        display["kernel"] = parsed["kernel"]
    if parsed.get("sampling") is not None:
        display["sampling"] = parsed["sampling"].as_dict()
    for key in ("benchmark", "scheme", "figures", "format"):
        if key in parsed:
            display[key] = parsed[key]
    if "settings" in parsed:
        display["settings"] = parsed["settings"].as_dict()
    return display
