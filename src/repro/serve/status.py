"""Self-contained HTML status page for the campaign server (``GET /``).

One static render per request — no JavaScript beyond a meta-refresh, no
external assets — so the page works from ``curl``, a CI artifact upload,
or an air-gapped browser alike. Everything shown is read from the same
payloads the JSON API serves (:meth:`ServeApp.stats_payload`,
:meth:`ServeApp.jobs_index`), so the page can never disagree with
``/v1/stats``.

Deterministic-safe by construction: the renderer reads no clocks (job
rows show the wall-clock stamps the job model already carries) and
touches nothing that feeds result keys or artifacts.
"""

from __future__ import annotations

import html
from typing import Dict, List

__all__ = ["render_status_page"]

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; }
th { background: #f0f0f0; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.state-done { color: #1a7f37; } .state-failed { color: #b42318; }
.state-running, .state-queued { color: #9a6700; }
code { background: #f6f6f6; padding: 0 0.25em; }
.muted { color: #777; font-size: 0.9em; }
"""


def _row(cells: List[str], numeric_from: int = 1) -> str:
    parts = []
    for index, cell in enumerate(cells):
        css = ' class="num"' if index >= numeric_from else ""
        parts.append(f"<td{css}>{cell}</td>")
    return "<tr>" + "".join(parts) + "</tr>"


def _counter_table(counters: Dict[str, int]) -> str:
    rows = "".join(
        _row([html.escape(name), str(counters[name])])
        for name in sorted(counters)
    )
    return (
        "<table><tr><th>counter</th><th>value</th></tr>" + rows + "</table>"
    )


def _jobs_table(jobs: List[Dict]) -> str:
    if not jobs:
        return '<p class="muted">no jobs accepted yet</p>'
    rows = []
    for job in jobs:
        state = html.escape(str(job["state"]))
        duration = ""
        if job.get("started") is not None and job.get("finished") is not None:
            duration = f"{job['finished'] - job['started']:.2f}s"
        provenance = ", ".join(
            f"{name}: {count}"
            for name, count in sorted(job.get("provenance", {}).items())
        )
        rows.append(
            "<tr>"
            f"<td><code>{html.escape(str(job['id']))}</code></td>"
            f"<td>{html.escape(str(job['kind']))}</td>"
            f'<td class="state-{state}">{state}</td>'
            f'<td class="num">{duration}</td>'
            f"<td>{html.escape(provenance)}</td>"
            f"<td>{html.escape(', '.join(job.get('artifacts', [])))}</td>"
            "</tr>"
        )
    return (
        "<table><tr><th>job</th><th>kind</th><th>state</th>"
        "<th>duration</th><th>provenance</th><th>artifacts</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _shard_table(store: Dict) -> str:
    counts = store["shard_counts"]
    start = store.get("shard_counts_at_start", [0] * len(counts))
    growth = store.get(
        "shard_growth", [now - then for now, then in zip(counts, start)]
    )
    rows = "".join(
        _row([f"shard {index}", str(counts[index]), f"+{growth[index]}"])
        for index in range(len(counts))
    )
    rows += _row(["total", str(store["results"]), f"+{sum(growth)}"])
    return (
        "<table><tr><th>shard</th><th>results</th><th>since start</th></tr>"
        + rows
        + "</table>"
    )


def render_status_page(app) -> str:
    """Render the whole status page from a live :class:`ServeApp`."""
    stats = app.stats_payload()
    jobs = app.jobs_index()["jobs"]
    scheduler = stats["scheduler"]
    store = stats["store"]
    live = {
        "pending (queue depth)": scheduler["queue_depth"],
        "in flight units": scheduler["in_flight"],
        "in flight batches": scheduler["in_flight_batches"],
    }
    cumulative = {
        name: scheduler[name]
        for name in (
            "units",
            "hits",
            "coalesced",
            "misses",
            "simulated",
            "executor_disk_hits",
            "batches",
            "waiters",
        )
    }
    job_states = ", ".join(
        f"{state}: {count}"
        for state, count in sorted(stats["jobs"]["states"].items())
    ) or "none"
    body = f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>repro.serve status</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>repro.serve — campaign server</h1>
<p>store <code>{html.escape(str(store['root']))}</code>
({store['shards']} shard(s)) &middot;
jobs accepted: {stats['jobs']['accepted']} ({html.escape(job_states)}) &middot;
endpoints: <a href="/v1/stats">/v1/stats</a>,
<a href="/metrics">/metrics</a>, <a href="/v1/jobs">/v1/jobs</a></p>
<h2>Scheduler — live queue</h2>
{_counter_table(live)}
<h2>Scheduler — cumulative (coalescing)</h2>
{_counter_table(cumulative)}
<h2>Store shard census</h2>
{_shard_table(store)}
<h2>Jobs</h2>
{_jobs_table(jobs)}
<p class="muted">auto-refreshes every 5 s &middot; numbers match
<code>GET /v1/stats</code> exactly</p>
</body>
</html>
"""
    return body
