"""Simulation-as-a-service: the async campaign server (`repro.serve`).

The CLIs answer one invocation at a time; this package turns the same
cached runner stack into a long-lived, multi-user service. Three ideas,
all riding on the content-addressed result store:

* **request coalescing** — every unit of work is keyed on the store's
  ``result_key`` fingerprint, so N concurrent askers of the same
  (config, profile, scale, kernel) share one execution and warm keys are
  answered with zero simulations (:mod:`repro.serve.scheduler`);
* **batched execution** — compatible pending units fold into one
  ``run_many`` campaign per tick, fanned out over a process pool off the
  event loop;
* **jobs over HTTP** — simulation, figure-campaign and exploration
  requests are JSON jobs with status, a chunked progress stream carrying
  per-unit cache/coalescing provenance, and artifacts byte-identical to
  the CLI outputs (:mod:`repro.serve.jobs`, :mod:`repro.serve.http`).

Start it with ``python -m repro.serve --port 8642 --cache-dir DIR
--workers 4``; see :mod:`repro.serve.__main__` for the endpoint map.
"""

from __future__ import annotations

from repro.serve.app import ServeApp
from repro.serve.jobs import Job, JobError, JobService
from repro.serve.scheduler import (
    CoalescingScheduler,
    ScheduledRunner,
    SchedulerShutdown,
    ServeCounters,
)
from repro.serve.units import (
    PROVENANCE_COALESCED,
    PROVENANCE_SIMULATED,
    PROVENANCE_STORE,
    UnitOutcome,
    WorkUnit,
)

__all__ = [
    "ServeApp",
    "Job",
    "JobError",
    "JobService",
    "CoalescingScheduler",
    "ScheduledRunner",
    "SchedulerShutdown",
    "ServeCounters",
    "WorkUnit",
    "UnitOutcome",
    "PROVENANCE_STORE",
    "PROVENANCE_COALESCED",
    "PROVENANCE_SIMULATED",
]
