"""Request coalescing and batched execution for the campaign server.

:class:`CoalescingScheduler` is the single chokepoint every serve-side
simulation goes through. For each :class:`~repro.serve.units.WorkUnit`
it answers, in order of preference:

1. **warm store** — the unit's ``result_key`` is already on disk: answer
   immediately, zero simulations (the Nth user asking for a popular
   figure costs one cache read);
2. **coalesce** — an identical unit is in flight: subscribe to its
   future, zero *extra* simulations (N concurrent askers → one
   execution, N waiters);
3. **schedule** — enqueue the unit; the ticker folds every compatible
   pending unit into one :meth:`ExperimentRunner.run_many` batch per
   tick and runs it in a worker thread, off the event loop (the batch
   itself fans out across a ``multiprocessing`` pool when the service
   was started with ``--workers N > 1``).

Everything downstream of the scheduler is the *existing* cached runner
stack, so serve-side results are bit-identical to CLI results by
construction — same code, same store, same keys.

:class:`ScheduledRunner` is the bridge for request kinds that cannot
pre-declare their unit set (exploration refinement rounds depend on
earlier scores): a drop-in :class:`ExperimentRunner` whose cache misses
are routed through the scheduler from a worker thread, so even adaptive
workloads coalesce with every other in-flight request.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.common.errors import SimulationError
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import ResultStore
from repro.serve.units import (
    PROVENANCE_COALESCED,
    PROVENANCE_SIMULATED,
    PROVENANCE_STORE,
    UnitOutcome,
    WorkUnit,
)

__all__ = [
    "CoalescingScheduler",
    "ScheduledRunner",
    "SchedulerShutdown",
    "ServeCounters",
    "DEFAULT_BATCH_INTERVAL",
]

#: Seconds the ticker waits between batch launches. Long enough for a
#: burst of concurrent requests to land in the same batch, short enough
#: to be invisible next to even one tiny simulation.
DEFAULT_BATCH_INTERVAL = 0.05


class SchedulerShutdown(RuntimeError):
    """The scheduler is shutting down; queued work will not run."""


@dataclass
class ServeCounters:
    """Cumulative scheduler telemetry, exposed at ``GET /v1/stats``."""

    units: int = 0        #: work units submitted, all provenances
    hits: int = 0         #: answered straight from the warm store
    coalesced: int = 0    #: subscribed to an identical in-flight unit
    misses: int = 0       #: scheduled for execution (first asker)
    simulated: int = 0    #: actual simulations run by batch executors
    executor_disk_hits: int = 0  #: batch-side disk hits (external warmers)
    batches: int = 0      #: run_many batches launched

    def as_dict(self) -> Dict[str, int]:
        return {
            "units": self.units,
            "hits": self.hits,
            "coalesced": self.coalesced,
            "misses": self.misses,
            "simulated": self.simulated,
            "executor_disk_hits": self.executor_disk_hits,
            "batches": self.batches,
        }

    def count(self, field: str, amount: int = 1) -> None:
        """Increment one counter, mirrored into the obs registry."""
        setattr(self, field, getattr(self, field) + amount)
        obs.counter(f"repro_serve_{field}_total").inc(amount)


class CoalescingScheduler:
    """Key-addressed coalescing + batching over the cached runner stack.

    Single-loop discipline: every method except :meth:`resolve_sync` must
    be called on the event loop that :meth:`start` ran on. Batch
    execution happens in ``executor`` (a dedicated thread pool) so the
    loop stays responsive while simulations run.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 0,
        batch_interval: float = DEFAULT_BATCH_INTERVAL,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> None:
        self.store = store
        self.workers = workers
        self.batch_interval = batch_interval
        self.counters = ServeCounters()
        self._executor = executor or ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="serve-batch"
        )
        self._owns_executor = executor is None
        self._inflight: Dict[str, asyncio.Future] = {}
        #: Pending units grouped by batch signature, with their keys.
        self._pending: Dict[Tuple, List[Tuple[str, WorkUnit]]] = {}
        self._batch_tasks: set = set()
        self._ticker: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind to the running loop and start the batch ticker."""
        self._loop = asyncio.get_running_loop()
        self._ticker = asyncio.create_task(self._tick_forever())

    async def close(self) -> None:
        """Graceful shutdown: drain in-flight batches, fail queued units.

        Units already batched (their ``run_many`` is running in a worker
        thread) are *drained* — the batch completes and its waiters get
        real results. Units still pending get :class:`SchedulerShutdown`
        so their jobs fail with a clear status instead of hanging.
        """
        self._closed = True
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
        # Fail everything that never made it into a batch.
        for __, items in sorted(self._pending.items()):
            for key, __unit in items:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(
                        SchedulerShutdown("server shutting down")
                    )
        self._pending.clear()
        # Drain batches already running in worker threads.
        if self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    @property
    def in_flight(self) -> int:
        """Units currently awaiting execution (batched or pending)."""
        return len(self._inflight)

    @property
    def pending(self) -> int:
        """Units queued but not yet folded into a batch."""
        return sum(len(items) for items in self._pending.values())

    @property
    def in_flight_batches(self) -> int:
        """``run_many`` batches currently executing in worker threads."""
        return len(self._batch_tasks)

    def stats_payload(self) -> Dict[str, int]:
        payload = self.counters.as_dict()
        payload["in_flight"] = self.in_flight
        payload["pending"] = self.pending
        payload["queue_depth"] = self.pending
        payload["in_flight_batches"] = self.in_flight_batches
        # Every request that parked on a future — first askers plus the
        # coalesced riders behind them.
        payload["waiters"] = self.counters.misses + self.counters.coalesced
        return payload

    def update_gauges(self) -> None:
        """Refresh the obs gauges from the live queue state."""
        obs.gauge("repro_serve_pending").set(self.pending)
        obs.gauge("repro_serve_in_flight").set(self.in_flight)
        obs.gauge("repro_serve_in_flight_batches").set(self.in_flight_batches)

    # ------------------------------------------------------------------
    # Resolution.
    # ------------------------------------------------------------------

    async def resolve(self, units: Sequence[WorkUnit]) -> List[UnitOutcome]:
        """Answer every unit; outcomes in input order, with provenance.

        Identical units — within this call, across concurrent calls, or
        against the in-flight set — share one execution. Warm keys never
        touch the queue at all.
        """
        if self._closed:
            raise SchedulerShutdown("server shutting down")
        loop = asyncio.get_running_loop()
        outcomes: List[Optional[UnitOutcome]] = [None] * len(units)
        waiters: List[Tuple[int, WorkUnit, str, asyncio.Future, str]] = []
        for index, unit in enumerate(units):
            key = unit.key()
            self.counters.count("units")
            future = self._inflight.get(key)
            if future is not None:
                self.counters.count("coalesced")
                waiters.append((index, unit, key, future, PROVENANCE_COALESCED))
                continue
            # The check-inflight -> check-store -> register-future sequence
            # must be atomic on the event loop: an await between the
            # in-flight probe and the future registration would let a
            # duplicate key slip past coalescing and simulate twice.  The
            # store read is one small JSON file; correctness of N-askers ->
            # 1-simulation depends on it staying inline.
            stats = self.store.load(key)  # repro: allow[serve-async-hygiene]
            if stats is not None:
                self.counters.count("hits")
                outcomes[index] = UnitOutcome(unit, key, PROVENANCE_STORE, stats)
                continue
            future = loop.create_future()
            self._inflight[key] = future
            self._pending.setdefault(unit.batch_signature(), []).append(
                (key, unit)
            )
            self.counters.count("misses")
            waiters.append((index, unit, key, future, PROVENANCE_SIMULATED))
        for index, unit, key, future, provenance in waiters:
            # shield(): the future is shared by every coalesced waiter —
            # one cancelled request must not tear down the execution the
            # others are still waiting on.
            stats = await asyncio.shield(future)
            outcomes[index] = UnitOutcome(unit, key, provenance, stats)
        return outcomes  # type: ignore[return-value]

    def resolve_sync(
        self, units: Sequence[WorkUnit], timeout: Optional[float] = None
    ) -> List[UnitOutcome]:
        """Thread-side bridge to :meth:`resolve`.

        For job bodies running in worker threads (exploration drivers,
        figure assembly). Never call this on the event-loop thread — it
        blocks until the loop has answered, which would deadlock.
        """
        if self._loop is None:
            raise SchedulerShutdown("scheduler not started")
        return asyncio.run_coroutine_threadsafe(
            self.resolve(list(units)), self._loop
        ).result(timeout)

    # ------------------------------------------------------------------
    # Batching.
    # ------------------------------------------------------------------

    async def _tick_forever(self) -> None:
        while True:
            await asyncio.sleep(self.batch_interval)
            self._launch_pending_batches()

    def _launch_pending_batches(self) -> None:
        """Fold each compatible pending group into one batch task."""
        pending, self._pending = self._pending, {}
        for __, items in sorted(pending.items()):
            task = asyncio.ensure_future(self._run_batch(items))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, items: List[Tuple[str, WorkUnit]]) -> None:
        """Execute one compatible group via ``run_many``, off the loop.

        All units in ``items`` share a batch signature, so one
        :class:`ExperimentRunner` (same scale / kernel / sampling) covers
        the whole group; its ``run_many`` fans out across processes when
        the service has workers configured. Results reach waiters through
        their futures; the runner has already filed them in the store.
        """
        self.counters.count("batches")
        first = items[0][1]
        runner = ExperimentRunner(
            first.scale,
            store=self.store,
            workers=self.workers,
            kernel=first.kernel,
            sampling=first.sampling,
        )
        pairs = [(unit.benchmark, unit.scheme) for __, unit in items]
        loop = asyncio.get_running_loop()
        try:
            with obs.span("serve.batch", units=len(items)):
                results = await loop.run_in_executor(
                    self._executor, runner.run_many, pairs
                )
        except BaseException as exc:  # noqa: BLE001 — forwarded to waiters
            for key, __ in items:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(
                        SimulationError(f"batch execution failed: {exc}")
                    )
            return
        telemetry = runner.cache_stats()
        self.counters.count("simulated", telemetry["simulations"])
        self.counters.count("executor_disk_hits", telemetry["disk_hits"])
        for (key, __), stats in zip(items, results):
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_result(stats)


class ScheduledRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` whose misses go through the scheduler.

    Memory and disk layers behave exactly as in the base class; only the
    execution layer changes — instead of simulating locally, pending
    pairs are submitted to the shared :class:`CoalescingScheduler`, so
    an adaptive caller (the exploration driver) dedupes against every
    other in-flight request and the warm store. Once the scheduler
    answers, results are re-read through the normal disk-hit path, which
    also rebuilds sampled estimate records — so ``sampled_result`` and
    telemetry keep working unchanged.

    Thread discipline: use only from worker threads (the scheduler
    bridge blocks on the event loop).
    """

    def __init__(
        self,
        scheduler: CoalescingScheduler,
        *,
        scale,
        kernel: Optional[str] = None,
        sampling=None,
        on_outcome=None,
    ) -> None:
        super().__init__(
            scale,
            store=scheduler.store,
            workers=0,
            kernel=kernel,
            sampling=sampling,
        )
        self._scheduler = scheduler
        self._on_outcome = on_outcome

    def run_many(self, pairs, workers=None):
        misses = self.pending_pairs(pairs)
        if misses:
            outcomes = self._scheduler.resolve_sync(
                [
                    WorkUnit(
                        benchmark=benchmark,
                        scheme=scheme,
                        scale=self.scale,
                        kernel=self.kernel,
                        sampling=self.sampling,
                    )
                    for benchmark, scheme in misses
                ]
            )
            for (benchmark, scheme), outcome in zip(misses, outcomes):
                if self._on_outcome is not None:
                    self._on_outcome(outcome)
                if self._lookup(benchmark, scheme) is None:
                    # The scheduler's executor files every result in the
                    # shared store before resolving the future; a miss
                    # here means the store was yanked out from under us.
                    raise SimulationError(
                        f"scheduler resolved ({benchmark!r}, ...) but the "
                        f"result is not readable from {self.store!r}"
                    )
        return [self._result_cache[(b, s)] for b, s in pairs]

    def run(self, benchmark, scheme):
        if self._lookup(benchmark, scheme) is None:
            self.run_many([(benchmark, scheme)])
        return self._result_cache[(benchmark, scheme)]
