"""The scheduler's unit of work: one content-addressed simulation.

Every request the service accepts — a single pair, a figure campaign's
whole matrix, an exploration round — decomposes into :class:`WorkUnit`\\ s,
and every unit is identified by the *same* ``result_key`` fingerprint the
disk store uses. That shared address is what makes coalescing sound: two
requests whose units hash alike are, by the store's own contract, asking
for bit-identical results, so one execution can answer both.

The simulation kernel is deliberately *not* part of the key (all kernels
are bit-identical by contract, and the config fingerprint excludes the
knob), but it *is* part of the batch signature: a batch maps onto one
``ExperimentRunner.run_many`` call, which takes a single scale / kernel /
sampling plan for the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.config import stable_fingerprint
from repro.experiments.runner import RunScale, SchemeOrConfig, resolve_config
from repro.experiments.store import result_key
from repro.workloads.suites import get_profile

__all__ = [
    "WorkUnit",
    "UnitOutcome",
    "PROVENANCE_STORE",
    "PROVENANCE_COALESCED",
    "PROVENANCE_SIMULATED",
]

#: The unit was answered from the warm result store — zero simulations.
PROVENANCE_STORE = "store"
#: The unit joined an identical in-flight unit — zero *extra* simulations.
PROVENANCE_COALESCED = "coalesced"
#: The unit was the first asker and triggered the execution.
PROVENANCE_SIMULATED = "simulated"


@dataclass(frozen=True)
class WorkUnit:
    """One (benchmark, scheme-or-config) simulation at a given scale."""

    benchmark: str
    scheme: SchemeOrConfig
    scale: RunScale
    kernel: Optional[str] = None
    sampling: Optional[object] = None

    def key(self) -> str:
        """The unit's content address — identical to the store's key."""
        return result_key(
            resolve_config(self.scheme),
            get_profile(self.benchmark),
            self.scale,
            sampling=self.sampling,
        )

    def batch_signature(self) -> Tuple[str, str, str]:
        """Units sharing this signature fold into one ``run_many`` call."""
        return (
            stable_fingerprint(self.scale),
            self.kernel or "",
            stable_fingerprint(self.sampling) if self.sampling is not None else "",
        )


@dataclass(frozen=True)
class UnitOutcome:
    """How one unit was answered: its result plus provenance."""

    unit: WorkUnit
    key: str
    provenance: str
    stats: object  # SimulationStats

    def event_payload(self) -> dict:
        """The per-unit provenance record streamed to job watchers."""
        from repro.common.config import scheme_name, IssueSchemeConfig

        scheme = self.unit.scheme
        return {
            "benchmark": self.unit.benchmark,
            "scheme": (
                scheme_name(scheme)
                if isinstance(scheme, IssueSchemeConfig)
                else stable_fingerprint(scheme)[:12]
            ),
            "key": self.key,
            "provenance": self.provenance,
        }
