"""Command-line entry point for the campaign server.

Command line::

    python -m repro.serve [--host HOST] [--port PORT]
        [--cache-dir DIR] [--shards N] [--workers N]
        [--batch-interval SECONDS] [--job-threads N] [--trace-out DIR]

Starts a long-lived asyncio HTTP service over the content-addressed
result store. Clients POST JSON job specs to ``/v1/jobs``::

    {"type": "simulation", "benchmark": "gzip", "scheme": "IQ_64_64",
     "scale": 2000, "seed": 11}
    {"type": "figures", "figures": [2], "scale": 2000, "format": "json"}
    {"type": "exploration", "samples": 8, "rounds": 1,
     "benchmarks": "stress", "scale": 1500}

and follow progress via ``GET /v1/jobs/<id>`` (status),
``/v1/jobs/<id>/events`` (chunked NDJSON stream) and
``/v1/jobs/<id>/artifact`` (the same byte-identical JSON/CSV artifacts
the CLIs emit). ``/v1/stats`` exposes coalescing and shard counters;
``/v1/version`` mirrors ``campaign --version-tag``. ``GET /metrics``
serves the observability registry in Prometheus text format and
``GET /`` a self-contained HTML status page; ``--trace-out DIR`` (or
``REPRO_TRACE=DIR``) additionally writes Chrome ``trace_event`` JSON
and NDJSON event sidecars — artifacts stay byte-identical either way.

``--workers`` sizes the per-batch ``multiprocessing`` fan-out (0 = run
batches serially in the executor thread); ``--shards`` partitions the
store layout by key prefix. SIGINT/SIGTERM shut down gracefully:
in-flight batches drain, queued jobs fail with a clear status, orphaned
temp files are swept.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional

from repro import obs
from repro.experiments.store import MAX_SHARDS, ResultStore, default_cache_dir
from repro.serve.app import ServeApp
from repro.serve.scheduler import DEFAULT_BATCH_INTERVAL


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--host", type=str, default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 = ephemeral; default 8642)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result-store directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-abella04)")
    parser.add_argument("--shards", type=int, default=4,
                        help=f"key-prefix shards of the store layout "
                             f"(1..{MAX_SHARDS}; default 4; a sharded "
                             f"store still reads unsharded CLI caches)")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation processes per batch (0 = serial "
                             "in-thread execution; default 2)")
    parser.add_argument("--batch-interval", type=float,
                        default=DEFAULT_BATCH_INTERVAL, metavar="SECONDS",
                        help="how long requests pool before a batch "
                             f"launches (default {DEFAULT_BATCH_INTERVAL})")
    parser.add_argument("--job-threads", type=int, default=4,
                        help="concurrent job bodies (figure assembly, "
                             "exploration drivers; default 4)")
    parser.add_argument("--trace-out", type=str, default=None, metavar="DIR",
                        help="write observability sidecar files (Chrome "
                             "trace_event JSON, NDJSON event log, Prometheus "
                             "metrics snapshot) under DIR; artifacts stay "
                             "byte-identical (equivalent: REPRO_TRACE=DIR)")
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error("--workers cannot be negative")
    if args.batch_interval <= 0:
        parser.error("--batch-interval must be positive")
    if args.job_threads < 1:
        parser.error("--job-threads must be at least 1")
    try:
        store = ResultStore(
            args.cache_dir if args.cache_dir else default_cache_dir(),
            shards=args.shards,
        )
    except ValueError as exc:
        parser.error(f"--shards: {exc}")
    app = ServeApp(
        store,
        workers=args.workers,
        batch_interval=args.batch_interval,
        job_threads=args.job_threads,
    )
    if args.trace_out:
        obs.configure(args.trace_out)
    try:
        asyncio.run(app.serve_forever(args.host, args.port))
    finally:
        obs.flush()


if __name__ == "__main__":
    main()
