"""A small, stdlib-only asyncio HTTP/1.1 front-end for the service.

The dependency rule for this repo is "nothing the container doesn't
already have", so instead of a web framework this is a deliberately
minimal HTTP implementation over ``asyncio`` streams: parse one request,
route it, answer it, close the connection. Every response carries
``Connection: close`` — connection reuse buys nothing for a campaign
API whose cheap calls are dwarfed by its expensive ones.

Endpoints::

    GET  /                        self-contained HTML status page
    GET  /metrics                 Prometheus text-format metrics
    POST /v1/jobs                 accept a job spec, returns 202 + job id
    GET  /v1/jobs                 job index (most recent first)
    GET  /v1/jobs/<id>            job status
    GET  /v1/jobs/<id>/events     chunked NDJSON progress stream
    GET  /v1/jobs/<id>/artifact   the job's artifact bytes
    GET  /v1/stats                scheduler / job / store counters
    GET  /v1/version              version tags + kernel/backend registry

The events stream uses chunked transfer-encoding and follows the job
live: every event already logged is replayed first, then new ones are
forwarded until the job reaches a terminal state.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = ["HttpFrontend", "MAX_BODY_BYTES"]

#: Largest request body accepted (job specs are small JSON objects).
MAX_BODY_BYTES = 1 << 20
_MAX_HEADER_BYTES = 1 << 16

#: Seconds between liveness polls of a streamed job's event log.
_EVENT_POLL_SECONDS = 0.1

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_CONTENT_TYPES = {
    ".json": "application/json",
    ".csv": "text/csv; charset=utf-8",
}


class _BadRequest(Exception):
    """Malformed HTTP or JSON from the client (HTTP 400/413)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpFrontend:
    """Routes HTTP requests onto a :class:`~repro.serve.app.ServeApp`."""

    def __init__(self, app) -> None:
        self.app = app
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self, host: str, port: int) -> Tuple[str, int]:
        """Listen on ``host:port`` (0 = ephemeral); returns the bound pair."""
        self._server = await asyncio.start_server(
            self._handle_client, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except _BadRequest as exc:
                await self._send_json(
                    writer, exc.status, {"error": str(exc)}
                )
                return
            try:
                await self._route(method, path, query, body, writer)
            except _BadRequest as exc:
                await self._send_json(writer, exc.status, {"error": str(exc)})
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # noqa: BLE001 — a 500, not a crash
                await self._send_json(
                    writer,
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as exc:
            raise _BadRequest(413, "headers too large") from exc
        if len(header_blob) > _MAX_HEADER_BYTES:
            raise _BadRequest(413, "headers too large")
        head, *header_lines = header_blob.decode("latin-1").split("\r\n")
        parts = head.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(400, f"malformed request line: {head!r}")
        method, target, __ = parts
        split = urlsplit(target)
        query = {
            name: values[-1]
            for name, values in parse_qs(split.query).items()
        }
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            body_length = int(length)
        except ValueError as exc:
            raise _BadRequest(400, f"bad Content-Length: {length!r}") from exc
        if body_length > MAX_BODY_BYTES:
            raise _BadRequest(413, "request body too large")
        body = await reader.readexactly(body_length) if body_length else b""
        return method, split.path, query, body

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------

    async def _route(self, method, path, query, body, writer) -> None:
        segments = [segment for segment in path.split("/") if segment]
        if segments == [] and method == "GET":
            await self._send_raw(
                writer,
                200,
                self.app.status_html().encode("utf-8"),
                "text/html; charset=utf-8",
            )
            return
        if segments == ["metrics"] and method == "GET":
            await self._send_raw(
                writer,
                200,
                self.app.metrics_text().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if segments[:1] != ["v1"]:
            raise _BadRequest(404, f"unknown path {path!r}")
        rest = segments[1:]
        if rest == ["version"] and method == "GET":
            await self._send_json(writer, 200, self.app.version_payload())
        elif rest == ["stats"] and method == "GET":
            await self._send_json(writer, 200, self.app.stats_payload())
        elif rest == ["jobs"]:
            if method == "POST":
                await self._post_job(body, writer)
            elif method == "GET":
                await self._send_json(writer, 200, self.app.jobs_index())
            else:
                raise _BadRequest(405, f"{method} not allowed on /v1/jobs")
        elif len(rest) >= 2 and rest[0] == "jobs" and method == "GET":
            job = self.app.jobs.jobs.get(rest[1])
            if job is None:
                raise _BadRequest(404, f"no such job {rest[1]!r}")
            if len(rest) == 2:
                await self._send_json(writer, 200, job.summary())
            elif rest[2:] == ["events"]:
                await self._stream_events(job, writer)
            elif rest[2:] == ["artifact"]:
                await self._send_artifact(job, query, writer)
            else:
                raise _BadRequest(404, f"unknown path {path!r}")
        else:
            raise _BadRequest(404, f"unknown path {path!r}")

    async def _post_job(self, body: bytes, writer) -> None:
        from repro.serve.jobs import JobError
        from repro.serve.scheduler import SchedulerShutdown

        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(400, f"body is not valid JSON: {exc}") from exc
        try:
            job = self.app.jobs.submit(payload)
        except JobError as exc:
            raise _BadRequest(400, str(exc)) from exc
        except SchedulerShutdown as exc:
            await self._send_json(writer, 503, {"error": str(exc)})
            return
        await self._send_json(
            writer, 202, {"job": job.id, "state": job.state}
        )

    async def _send_artifact(self, job, query, writer) -> None:
        if not job.artifacts:
            if job.terminal:
                raise _BadRequest(404, f"job {job.id} has no artifact")
            raise _BadRequest(
                404, f"job {job.id} is {job.state}; artifact not ready"
            )
        name = query.get("name")
        if name is None:
            # Primary artifact: frontier.json for explorations, the only
            # artifact otherwise; deterministic pick either way.
            name = (
                "frontier.json"
                if "frontier.json" in job.artifacts
                else sorted(job.artifacts)[0]
            )
        path = job.artifacts.get(name)
        if path is None:
            raise _BadRequest(
                404,
                f"no artifact {name!r}; available: {sorted(job.artifacts)}",
            )
        data = await asyncio.get_running_loop().run_in_executor(
            None, path.read_bytes
        )
        content_type = _CONTENT_TYPES.get(path.suffix, "application/octet-stream")
        await self._send_raw(writer, 200, data, content_type)

    async def _stream_events(self, job, writer) -> None:
        headers = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(headers.encode("latin-1"))
        await writer.drain()
        sent = 0
        while True:
            while sent < len(job.events):
                line = json.dumps(job.events[sent], sort_keys=True) + "\n"
                data = line.encode("utf-8")
                writer.write(f"{len(data):x}\r\n".encode("latin-1"))
                writer.write(data + b"\r\n")
                sent += 1
            await writer.drain()
            if job.terminal and sent == len(job.events):
                break
            await asyncio.sleep(_EVENT_POLL_SECONDS)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # Responses.
    # ------------------------------------------------------------------

    async def _send_json(self, writer, status: int, payload) -> None:
        data = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode(
            "utf-8"
        )
        await self._send_raw(writer, status, data, "application/json")

    @staticmethod
    async def _send_raw(writer, status: int, data: bytes, content_type: str) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        await writer.drain()
