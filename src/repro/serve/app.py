"""Service assembly: store + scheduler + jobs + HTTP, one lifecycle.

:class:`ServeApp` owns every long-lived component of the campaign server
and sequences the one thing that is easy to get wrong in an async
service: shutdown. On SIGINT/SIGTERM (or :meth:`shutdown`):

1. the HTTP listener stops accepting connections and ``POST /v1/jobs``
   answers 503;
2. the scheduler drains — batches already executing in worker threads
   run to completion (their waiters get real results), while units still
   queued fail with a clear "server shutting down" status;
3. every job task is awaited, so each job ends ``done`` or ``failed``,
   never dangling;
4. orphaned atomic-write temp files under the cache root are swept
   (age threshold zero — with all writers drained, any ``*.tmp`` left is
   garbage by definition).
"""

from __future__ import annotations

import asyncio
import signal
from pathlib import Path
from typing import Dict, Optional

from repro import obs
from repro.experiments.campaign import version_payload
from repro.experiments.store import ResultStore, sweep_stale_tmp
from repro.serve.jobs import JobService
from repro.serve.scheduler import DEFAULT_BATCH_INTERVAL, CoalescingScheduler

__all__ = ["ServeApp"]


class ServeApp:
    """The campaign server: one store, one scheduler, one job index."""

    def __init__(
        self,
        store: ResultStore,
        workers: int = 0,
        batch_interval: float = DEFAULT_BATCH_INTERVAL,
        job_threads: int = 4,
    ) -> None:
        self.store = store
        self.scheduler = CoalescingScheduler(
            store, workers=workers, batch_interval=batch_interval
        )
        self.jobs = JobService(
            store,
            self.scheduler,
            artifact_root=Path(store.root) / "serve",
            job_threads=job_threads,
        )
        from repro.serve.http import HttpFrontend

        self.http = HttpFrontend(self)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        # Shard census at startup: /v1/stats and the status page report
        # per-shard growth since the server came up, not just totals.
        self._start_shard_counts = store.shard_counts()
        self._shutdown_started = False
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Payloads shared by the HTTP front-end.
    # ------------------------------------------------------------------

    def version_payload(self) -> Dict:
        """``GET /v1/version`` — byte-identical to ``campaign --version-tag``."""
        return version_payload()

    def stats_payload(self) -> Dict:
        """``GET /v1/stats`` — scheduler, job and store-shard counters."""
        states: Dict[str, int] = {}
        for job in self.jobs.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        shard_counts = self.store.shard_counts()
        start = self._start_shard_counts
        return {
            "scheduler": self.scheduler.stats_payload(),
            "jobs": {"accepted": len(self.jobs.jobs), "states": states},
            "store": {
                "root": str(self.store.root),
                "shards": self.store.shards,
                "shard_counts": shard_counts,
                "shard_counts_at_start": list(start),
                "shard_growth": [
                    now - then for now, then in zip(shard_counts, start)
                ],
                "results": len(self.store),
            },
        }

    def metrics_text(self) -> str:
        """``GET /metrics`` — the obs registry in Prometheus text format."""
        self.scheduler.update_gauges()
        return obs.get_registry().render_prometheus()

    def status_html(self) -> str:
        """``GET /`` — a self-contained HTML status page."""
        from repro.serve.status import render_status_page

        return render_status_page(self)

    def jobs_index(self) -> Dict:
        """``GET /v1/jobs`` — newest first, summaries only."""
        ordered = sorted(
            self.jobs.jobs.values(), key=lambda job: job.created, reverse=True
        )
        return {"jobs": [job.summary() for job in ordered]}

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Start scheduler and listener; returns the bound port."""
        await self.scheduler.start()
        self.host, self.port = await self.http.start(host, port)
        return self.port

    async def shutdown(self) -> None:
        """Graceful stop; safe to call more than once."""
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        self.jobs.accepting = False
        await self.scheduler.close()
        await self.jobs.shutdown()
        await self.http.close()
        # All writers are drained: any temp file still staged under the
        # cache tree is an orphan, whatever its age.  The sweep walks the
        # store tree on disk, so it runs on the loop's default executor —
        # late job-failure statuses keep streaming while it scans.
        loop = asyncio.get_running_loop()
        swept = await loop.run_in_executor(
            None, lambda: sweep_stale_tmp(self.store.root, max_age=0.0)
        )
        if swept:
            print(f"serve: swept {swept} orphaned temp file(s)")
        self._stopped.set()

    async def serve_forever(self, host: str, port: int) -> None:
        """Run until SIGINT/SIGTERM, then shut down gracefully."""
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        bound_port = await self.start(host, port)
        print(
            f"repro.serve: listening on http://{self.host}:{bound_port} "
            f"(store {self.store.root}, {self.store.shards} shard(s), "
            f"workers {self.scheduler.workers})",
            flush=True,
        )
        try:
            await stop.wait()
        finally:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(signum)
            print("repro.serve: shutting down (draining in-flight batches)")
            await self.shutdown()
            print("repro.serve: stopped")
