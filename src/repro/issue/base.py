"""Common interface between the pipeline and the issue-queue schemes.

The pipeline is scheme-agnostic: at dispatch it offers instructions in
program order via :meth:`IssueScheme.try_dispatch` (a ``False`` return
stalls dispatch, which is exactly the paper's dispatch-stall condition),
and each cycle it asks the scheme to :meth:`IssueScheme.select_and_issue`
through an :class:`IssueContext` that centralizes the checks every scheme
shares: operand readiness, functional-unit availability, issue-width
budgets, memory-port budget and load disambiguation gating.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.config import ProcessorConfig
from repro.common.stats import StatCounters
from repro.core.functional_units import FuPool
from repro.core.lsq import LoadStoreQueue
from repro.core.scoreboard import Scoreboard
from repro.core.uop import InFlight
from repro.isa.opcodes import latency_for

__all__ = ["IssueContext", "IssueScheme", "SideIdleCountersMixin"]


class IssueContext:
    """Per-cycle issue resources and checks.

    ``issue`` performs every check and, on success, reserves the
    resources and asks the pipeline (via ``complete_fn``) to schedule the
    instruction's completion. Schemes only decide *which* instructions to
    offer and in what order.
    """

    def __init__(
        self,
        cycle: int,
        config: ProcessorConfig,
        scoreboard: Scoreboard,
        fu_pool: FuPool,
        lsq: LoadStoreQueue,
        complete_fn: Callable[[InFlight, int], None],
    ) -> None:
        self.cycle = cycle
        self.config = config
        self.scoreboard = scoreboard
        self.fu_pool = fu_pool
        self.lsq = lsq
        self._complete_fn = complete_fn
        self.int_budget = config.int_issue_width
        self.fp_budget = config.fp_issue_width
        self.memory_budget = config.dcache.ports
        self.issued: List[InFlight] = []

    def operands_ready(self, uop: InFlight) -> bool:
        """All issue-relevant operands available to an instruction issuing now.

        For stores this is the address operands only — the data is read
        at commit (Section 3.1 splits stores into address computation
        and memory access).
        """
        return self.scoreboard.all_ready(uop.issue_srcs, self.cycle)

    def load_gated(self, uop: InFlight) -> bool:
        """True if a load must wait on older stores.

        Two conditions gate a load: every older store must have issued
        (so addresses are known for disambiguation), and any older store
        it would forward from must have its data availability scheduled.
        """
        if not uop.op.is_load:
            return False
        if not self.lsq.can_issue_load(uop.seq):
            return True
        return self.lsq.load_blocked_on_store_data(uop, self.scoreboard)

    def _budget_ok(self, uop: InFlight) -> bool:
        side_budget = self.fp_budget if uop.op.is_fp else self.int_budget
        if side_budget <= 0:
            return False
        if uop.op.is_memory and self.memory_budget <= 0:
            return False
        return True

    def can_issue(self, uop: InFlight, queue_index: Optional[int] = None) -> bool:
        """All checks except FU reservation (non-destructive)."""
        return (
            self._budget_ok(uop)
            and self.operands_ready(uop)
            and not self.load_gated(uop)
        )

    def issue(self, uop: InFlight, queue_index: Optional[int] = None) -> bool:
        """Try to issue ``uop`` now; reserves resources on success."""
        if not self.can_issue(uop, queue_index):
            return False
        latency = latency_for(uop.op, self.config.fus)
        if not self.fu_pool.try_allocate(uop.fu_type, uop.op, latency, self.cycle, queue_index):
            return False
        if uop.op.is_fp:
            self.fp_budget -= 1
        else:
            self.int_budget -= 1
        if uop.op.is_memory:
            self.memory_budget -= 1
        uop.issue_cycle = self.cycle
        self._complete_fn(uop, self.cycle)
        self.issued.append(uop)
        return True


class SideIdleCountersMixin:
    """Idle-counter plumbing for schemes built from two side objects.

    Assumes ``int_side`` / ``fp_side`` attributes each exposing
    ``idle_counters()`` / ``apply_idle_counters(before, n)`` (see
    :class:`~repro.issue.fifo_side.FifoSide`).
    """

    def idle_counters(self) -> Dict[str, dict]:
        return {
            "int": self.int_side.idle_counters(),
            "fp": self.fp_side.idle_counters(),
        }

    def apply_idle_counters(self, before: Dict[str, dict], n_cycles: int) -> None:
        self.int_side.apply_idle_counters(before["int"], n_cycles)
        self.fp_side.apply_idle_counters(before["fp"], n_cycles)

    def next_wakeup_cycle(self, cycle: int, scoreboard) -> Optional[int]:
        """Earliest waiting-instruction wakeup across both sides."""
        earliest: Optional[int] = None
        for side in (self.int_side, self.fp_side):
            when = side.next_wakeup_cycle(cycle, scoreboard)
            if when is not None and (earliest is None or when < earliest):
                earliest = when
        return earliest


class IssueScheme:
    """Base class for the four issue-queue organizations."""

    name = "abstract"

    def __init__(self, config: ProcessorConfig, events: StatCounters) -> None:
        self.config = config
        self.events = events

    # -- dispatch ----------------------------------------------------
    def try_dispatch(self, uop: InFlight, cycle: int) -> bool:
        """Place ``uop``; return False to stall dispatch this cycle."""
        raise NotImplementedError

    # -- issue -------------------------------------------------------
    def select_and_issue(self, ctx: IssueContext) -> List[InFlight]:
        """Issue instructions for this cycle; returns those issued."""
        raise NotImplementedError

    # -- notifications -----------------------------------------------
    def on_result_broadcast(self, cycle: int, broadcasts: int) -> None:
        """``broadcasts`` results completed this cycle (wakeup energy)."""

    def on_mispredict_resolved(self) -> None:
        """A mispredicted branch resolved; clear register→queue tables.

        The paper observes that clearing (rather than repairing) the
        mapping table costs no significant performance and simplifies the
        hardware; we model the clear.
        """

    def on_cycle_end(self, cycle: int) -> None:
        """Per-cycle energy bookkeeping hook.

        Skip-safety contract: implementations may only move counters as
        a pure function of frozen scheme state (the skipping kernel
        replays a measured quiescent cycle's counter delta in closed
        form); they must not make cycle-number-dependent decisions
        unless those boundaries are reported by
        :meth:`next_activity_cycle`.
        """

    # -- skipping-kernel contract ------------------------------------
    def next_activity_cycle(self, cycle: int) -> Optional[int]:
        """Next cycle at which the scheme's *issue-side* behaviour could
        change without any pipeline activity occurring first.

        Most schemes are purely event-driven: operand readiness changes
        arrive with result broadcasts and queue contents change only on
        issue/dispatch, so the default is ``None``. MixBUFF overrides
        this with its chain-latency code boundaries, whose 2-bit
        compression is a function of the cycle number.
        """
        return None

    def next_dispatch_activity_cycle(self, inst, cycle: int) -> Optional[int]:
        """Next cycle at which placing ``inst`` (the instruction dispatch
        is currently stalled on) could succeed, absent other activity.

        ``None`` means placement can only be unblocked by activity the
        event wheel already tracks (an issue draining a queue, a commit
        freeing the ROB). LatFIFO overrides this: its FP placement
        compares a dispatch-time *estimate* that grows with the cycle
        number, so a stalled placement can unstick by itself.
        """
        return None

    def next_wakeup_cycle(self, cycle: int, scoreboard) -> Optional[int]:
        """Earliest cycle ``>= cycle`` a waiting instruction wakes up.

        The minimum, over every resident instruction the scheme could
        offer for issue, of the cycle at which all of its issue operands
        become ready — ``None`` when no such transition is scheduled.
        Instructions whose producers have not issued contribute nothing
        (the producer's issue is pipeline activity), and transitions
        before ``cycle`` contribute nothing (an already-ready
        instruction that did not issue on the measured quiescent cycle
        is pinned by a condition the wheel tracks elsewhere: a busy
        functional unit, a budget, load disambiguation).

        This is the deferral bound for pure-broadcast drain spans: the
        skipping kernel may jump over result broadcasts strictly before
        this cycle and replay their wakeup accounting in closed form.
        The base implementation returns ``cycle`` — "assume a wakeup
        immediately", which disables the optimization and is always
        sound for schemes that have not audited their selection logic
        against it.
        """
        return cycle

    def idle_counters(self) -> Dict[str, int]:
        """Snapshot of scheme-internal diagnostic counters a quiescent
        cycle can move (dispatch-stall tallies and the like). Paired
        with :meth:`apply_idle_counters` for interval-form accounting."""
        return {}

    def apply_idle_counters(self, before: Dict[str, int], n_cycles: int) -> None:
        """Replay the counter delta since ``before`` ``n_cycles`` times
        (the closed-form accounting for a skipped quiescent span)."""

    # -- introspection -----------------------------------------------
    def occupancy(self) -> int:
        """Instructions currently waiting in the issue queue(s)."""
        raise NotImplementedError

    def queue_count_for_side(self, is_fp: bool) -> int:
        """Number of queues on one side (1 for the conventional scheme)."""
        return 1
