"""MixBUFF: the paper's proposed FP issue organization (Section 3.2).

FP instructions live in RAM *buffers* (not FIFOs): placement follows
dependence chains as in IssueFIFO, but each queue may hold several
independent chains, instructions need not be issued in the order they
were placed, and each queue's tiny selection logic picks **one**
instruction per cycle using the chain-latency table plus age priority
(see :mod:`repro.issue.selection`). No wakeup logic exists anywhere: a
selected instruction simply checks its operands' ready bits; if the check
fails (its producer was a cache-missing load or lives in another queue),
it stays and is marked *delayed*, losing priority to first-time
candidates.

The integer side is a plain IssueFIFO side, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.config import ProcessorConfig
from repro.common.stats import StatCounters
from repro.core.scoreboard import NEVER
from repro.core.uop import InFlight
from repro.isa.opcodes import latency_for
from repro.issue.base import IssueContext, IssueScheme, SideIdleCountersMixin
from repro.issue.fifo_side import FifoSide
from repro.issue.mapping import ChainRenameTable
from repro.issue.selection import SelectableEntry, select_entry

__all__ = ["MixBuffScheme", "MixBuffSide"]

_FAR_FUTURE = 1 << 20  # chain not ready: reads as "2 or more cycles"


class _Chain:
    """Bookkeeping for one live chain inside a queue.

    ``starter`` is the chain's first instruction while it has not issued
    yet. A chain head's operands come from outside the queue (a load or
    another queue's chain), so until the starter's operands have a known
    availability cycle the chain reads as *not ready* in the latency
    table — the ready bits that drive this are the same regs_ready
    information the scheme already reads each cycle.
    """

    __slots__ = ("chain_id", "pending", "completion_cycle", "starter")

    def __init__(self, chain_id: int) -> None:
        self.chain_id = chain_id
        self.pending = 0  # instructions of this chain still in the queue
        self.completion_cycle = 0  # last issued instruction's finish cycle
        self.starter: Optional[InFlight] = None


class MixBuffSide:
    """The FP buffers of MixBUFF."""

    def __init__(
        self,
        num_queues: int,
        entries_per_queue: int,
        max_chains: Optional[int],
        config: ProcessorConfig,
        events: StatCounters,
    ) -> None:
        self.num_queues = num_queues
        self.entries_per_queue = entries_per_queue
        self.max_chains = max_chains
        self.config = config
        self.events = events
        self.table = ChainRenameTable(events, "qrename")
        self.queues: List[List[InFlight]] = [[] for __ in range(num_queues)]
        self.chains: List[Dict[int, _Chain]] = [{} for __ in range(num_queues)]
        self.dispatch_stalls = 0
        self._load_value_latency = (
            config.fus.address_latency + config.dcache.hit_latency
        )

    # -- placement ----------------------------------------------------
    def _queue_full(self, index: int) -> bool:
        return len(self.queues[index]) >= self.entries_per_queue

    def _lowest_free_chain(self) -> Optional[Tuple[int, int]]:
        """Free (queue, chain) with the paper's balancing priority.

        Chains are scanned in the order chain 0 of queue 0, chain 0 of
        queue 1, ..., chain 1 of queue 0, ... so busy chains spread
        evenly across the queues. With unbounded chains the scan always
        terminates at the first chain id not used by some non-full queue.
        """
        limit = self.max_chains if self.max_chains is not None else self.entries_per_queue
        for chain_id in range(limit):
            for queue_index in range(self.num_queues):
                if self._queue_full(queue_index):
                    continue
                if chain_id not in self.chains[queue_index]:
                    return queue_index, chain_id
        return None

    def try_place(self, uop: InFlight, cycle: int) -> bool:
        """Chain-extending placement, else lowest free chain, else stall."""
        # Prefer extending the chain of a source operand whose producer
        # is that chain's last dispatched instruction.
        for ref in uop.inst.srcs:
            qc = self.table.chain_of(ref)
            if qc is None:
                continue
            queue_index, chain_id = qc
            if self._queue_full(queue_index):
                continue
            chain = self.chains[queue_index].get(chain_id)
            if chain is None:
                continue
            self._append(uop, queue_index, chain)
            return True
        free = self._lowest_free_chain()
        if free is None:
            self.dispatch_stalls += 1
            return False
        queue_index, chain_id = free
        chain = _Chain(chain_id)
        chain.starter = uop
        self.chains[queue_index][chain_id] = chain
        self._append(uop, queue_index, chain)
        return True

    def _append(self, uop: InFlight, queue_index: int, chain: _Chain) -> None:
        uop.queue_index = queue_index
        uop.chain_id = chain.chain_id
        chain.pending += 1
        self.queues[queue_index].append(uop)
        self.table.set_tail(queue_index, chain.chain_id, uop.inst.dest)
        self.events.add("mb_buff_write")

    # -- issue ----------------------------------------------------------
    def issue_one_per_queue(self, ctx: IssueContext, distributed: bool) -> List[InFlight]:
        """Run each queue's selector and try to issue its pick."""
        issued: List[InFlight] = []
        for queue_index, queue in enumerate(self.queues):
            if not queue:
                continue
            # Per-cycle energy: the chain-latency table is fully read and
            # written, and the selection logic runs.
            self.events.add("chains_read")
            self.events.add("chains_write")
            self.events.add("mb_select_cycles")
            completion = {
                chain_id: self._chain_completion(chain, ctx)
                for chain_id, chain in self.chains[queue_index].items()
            }
            queue_arg_probe = queue_index if distributed else None
            entries = [
                SelectableEntry(uop.chain_id, uop.age, uop.delayed, uop)
                for uop in queue
                # The selector sits next to this queue's functional
                # units; it never picks an instruction whose unit cannot
                # accept work this cycle.
                if ctx.fu_pool.can_allocate(uop.fu_type, ctx.cycle, queue_arg_probe)
            ]
            pick = select_entry(entries, completion, ctx.cycle)
            if pick is None:
                continue
            uop: InFlight = pick.payload
            self.events.add("mb_reg_write")  # latch the selected instruction
            self.events.add("regs_ready_read", len(uop.src_phys))
            queue_arg = queue_index if distributed else None
            if ctx.issue(uop, queue_arg):
                self._remove_issued(uop, ctx.cycle)
                issued.append(uop)
            else:
                uop.delayed = True
        return issued

    def _chain_completion(self, chain: _Chain, ctx: IssueContext) -> int:
        """Effective completion cycle of a chain's last producer.

        While the chain's starter has not issued, readiness is governed
        by the starter's own operands: unknown availability reads as
        "2 or more cycles" (code 11); a known availability cycle behaves
        like a chain predecessor finishing then.
        """
        starter = chain.starter
        if starter is None:
            return chain.completion_cycle
        latest = chain.completion_cycle
        for phys in starter.issue_srcs:
            if not ctx.scoreboard.is_scheduled(phys):
                return ctx.cycle + _FAR_FUTURE
            ready = ctx.scoreboard.ready_cycle(phys)
            if ready > latest:
                latest = ready
        return latest

    def _remove_issued(self, uop: InFlight, cycle: int) -> None:
        queue_index = uop.queue_index
        self.queues[queue_index].remove(uop)
        self.events.add("mb_buff_read")
        chain = self.chains[queue_index][uop.chain_id]
        if chain.starter is uop:
            chain.starter = None
        chain.pending -= 1
        chain.completion_cycle = cycle + self._estimated_value_latency(uop)
        if chain.pending == 0:
            # Chain drained: free its identifier and retire its mapping
            # so later consumers start fresh chains.
            del self.chains[queue_index][uop.chain_id]
            self.table.chain_retired(queue_index, uop.chain_id)

    def _estimated_value_latency(self, uop: InFlight) -> int:
        if uop.op.is_load:
            return self._load_value_latency
        return latency_for(uop.op, self.config.fus)

    # -- skipping-kernel support ------------------------------------------
    def idle_counters(self) -> dict:
        return {"dispatch_stalls": self.dispatch_stalls}

    def apply_idle_counters(self, before: dict, n_cycles: int) -> None:
        self.dispatch_stalls += n_cycles * (
            self.dispatch_stalls - before["dispatch_stalls"]
        )

    def next_code_boundary(self, cycle: int, scoreboard) -> Optional[int]:
        """Next cycle a chain's 2-bit latency code can change by itself.

        The selector compresses ``completion - cycle`` into the codes
        ``not-ready`` / ``finishes-next-cycle`` / ``finished``, so with
        frozen state a queue's selection outcome can still change at the
        cycles ``completion - 1`` and ``completion`` of any live chain.
        Chains whose starter has an unscheduled operand read as
        not-ready at *every* cycle (the far-future sentinel) and
        contribute no boundary; their transition is a broadcast or issue
        event the wheel already tracks.
        """
        earliest: Optional[int] = None
        for queue_index, queue in enumerate(self.queues):
            if not queue:
                continue
            for chain in self.chains[queue_index].values():
                completion = chain.completion_cycle
                starter = chain.starter
                if starter is not None:
                    if not all(
                        scoreboard.is_scheduled(phys) for phys in starter.issue_srcs
                    ):
                        continue  # reads as not-ready regardless of cycle
                    for phys in starter.issue_srcs:
                        ready = scoreboard.ready_cycle(phys)
                        if ready > completion:
                            completion = ready
                for boundary in (completion - 1, completion):
                    if boundary >= cycle and (earliest is None or boundary < earliest):
                        earliest = boundary
        return earliest

    def next_wakeup_cycle(self, cycle: int, scoreboard) -> Optional[int]:
        """Earliest scheduled all-operands-ready cycle among residents.

        MixBUFF's selector considers *every* resident instruction (not
        just FIFO heads), so any resident becoming ready is a potential
        wake; producers not yet issued read as ``NEVER`` and contribute
        nothing. Chain-code timing is a separate boundary reported by
        :meth:`next_code_boundary`.
        """
        earliest: Optional[int] = None
        for queue in self.queues:
            for uop in queue:
                ready = scoreboard.operands_ready_cycle(uop.issue_srcs)
                if cycle <= ready < NEVER and (earliest is None or ready < earliest):
                    earliest = ready
        return earliest

    # -- misc -------------------------------------------------------------
    def occupancy(self) -> int:
        return sum(map(len, self.queues))  # hot path: called every cycle

    def live_chains(self) -> int:
        return sum(len(chains) for chains in self.chains)

    def clear_mapping(self) -> None:
        self.table.clear()


class MixBuffScheme(SideIdleCountersMixin, IssueScheme):
    """IssueFIFO integer side + MixBUFF FP buffers."""

    name = "mixbuff"

    def __init__(self, config: ProcessorConfig, events: StatCounters) -> None:
        super().__init__(config, events)
        scheme = config.scheme
        self.int_side = FifoSide(
            False, scheme.int_queues, scheme.int_queue_entries, events
        )
        self.fp_side = MixBuffSide(
            scheme.fp_queues,
            scheme.fp_queue_entries,
            scheme.max_chains_per_queue,
            config,
            events,
        )
        self._distributed = scheme.distributed_fus
        self._scoreboard = None

    def bind_scoreboard(self, scoreboard) -> None:
        """Scoreboard access for chain-code boundary prediction."""
        self._scoreboard = scoreboard

    def try_dispatch(self, uop: InFlight, cycle: int) -> bool:
        if uop.op.is_fp:
            return self.fp_side.try_place(uop, cycle)
        return self.int_side.try_place(uop, cycle)

    def select_and_issue(self, ctx: IssueContext) -> List[InFlight]:
        issued = self.int_side.issue_heads(ctx, self._distributed)
        issued += self.fp_side.issue_one_per_queue(ctx, self._distributed)
        return issued

    def on_result_broadcast(self, cycle: int, broadcasts: int) -> None:
        self.events.add("regs_ready_write", broadcasts)

    def on_mispredict_resolved(self) -> None:
        self.int_side.clear_mapping()
        self.fp_side.clear_mapping()

    def next_activity_cycle(self, cycle: int) -> Optional[int]:
        """Chain-latency code boundaries (see ``next_code_boundary``)."""
        if self._scoreboard is None:
            return cycle  # unbound (tests): never skip, always exact
        return self.fp_side.next_code_boundary(cycle, self._scoreboard)

    def occupancy(self) -> int:
        return self.int_side.occupancy() + self.fp_side.occupancy()

    def queue_count_for_side(self, is_fp: bool) -> int:
        return self.fp_side.num_queues if is_fp else self.int_side.num_queues
