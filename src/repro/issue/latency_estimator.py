"""Dispatch-time issue-cycle estimation (Section 3.1).

Implements the paper's recurrence verbatim::

    IssueCycle = MAX(current_cycle + 1, OpLeftCycle, OpRightCycle)
    if inst is load:  IssueCycle = MAX(IssueCycle, AllStoreAddr)
    if inst is store: AllStoreAddr = MAX(AllStoreAddr,
                                         IssueCycle + AddressLatency)
    if inst has dest: DestCycle = IssueCycle + InstructionLatency

``OpLeftCycle`` / ``OpRightCycle`` are the estimated availability cycles
of the operands (``DestCycle`` of their most recent producer, 0 for
live-in values). The L1 hit latency is assumed for loads — the paper
verified that knowing the exact memory latency does not change the
results. The computation is assumed to fit in one cycle (the paper notes
this may be optimistic; it is the same assumption for every scheme that
uses the estimator).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.config import ProcessorConfig
from repro.isa.instructions import Instruction
from repro.isa.opcodes import OpClass, latency_for

__all__ = ["IssueTimeEstimator"]


class IssueTimeEstimator:
    """Tracks estimated operand availability per logical register."""

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self._dest_cycle: Dict[Tuple[bool, int], int] = {}
        self._all_store_addr = 0
        self._load_value_latency = (
            config.fus.address_latency + config.dcache.hit_latency
        )

    def operand_cycle(self, ref) -> int:
        """Estimated cycle when ``ref``'s value is available (0 = ready)."""
        return self._dest_cycle.get((ref.is_fp, ref.index), 0)

    def value_latency(self, op: OpClass) -> int:
        """Estimated cycles from issue to value availability for ``op``."""
        if op.is_load:
            return self._load_value_latency
        return latency_for(op, self.config.fus)

    def estimate(self, inst: Instruction, cycle: int) -> int:
        """Estimated issue cycle of ``inst`` dispatched at ``cycle``.

        Updates the estimator state (DestCycle / AllStoreAddr), so call
        exactly once per dispatched instruction, in program order.
        """
        issue = cycle + 1
        # Stores issue their address computation; the data operand
        # (srcs[0] by trace convention) does not gate issue.
        srcs = inst.srcs[1:] if inst.op.is_store and len(inst.srcs) > 1 else inst.srcs
        for ref in srcs:
            operand = self.operand_cycle(ref)
            if operand > issue:
                issue = operand
        if inst.op.is_load and self._all_store_addr > issue:
            issue = self._all_store_addr
        if inst.op.is_store:
            addr_known = issue + self.config.fus.address_latency
            if addr_known > self._all_store_addr:
                self._all_store_addr = addr_known
        if inst.dest is not None:
            self._dest_cycle[(inst.dest.is_fp, inst.dest.index)] = (
                issue + self.value_latency(inst.op)
            )
        return issue

    def reset(self) -> None:
        """Forget all state (used by tests between programs)."""
        self._dest_cycle.clear()
        self._all_store_addr = 0
