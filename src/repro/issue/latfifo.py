"""LatFIFO: FIFO queues with latency-based placement (Section 3.1).

Identical to IssueFIFO on the integer side. On the FP side, instructions
are placed by *estimated issue time*: a queue qualifies if it is not full
and its last instruction's estimated issue time is at least one cycle
earlier than the incoming instruction's; among qualifying queues the one
whose last instruction issues *latest* is chosen (leaving the most room
for younger instructions); otherwise an empty queue; otherwise dispatch
stalls.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import ProcessorConfig
from repro.common.stats import StatCounters
from repro.core.uop import InFlight
from repro.issue.base import IssueContext, IssueScheme, SideIdleCountersMixin
from repro.issue.fifo_side import FifoSide
from repro.issue.latency_estimator import IssueTimeEstimator

__all__ = ["LatFifoScheme", "LatencyPlacedFifoSide"]

_EMPTY_TAIL = -(1 << 60)


class LatencyPlacedFifoSide(FifoSide):
    """FIFO side whose placement uses estimated issue times."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._tail_est: List[int] = [_EMPTY_TAIL] * self.num_queues

    def place_by_estimate(self, uop: InFlight, est_issue: int) -> bool:
        """Latency-based placement; returns False on dispatch stall."""
        best: Optional[int] = None
        best_tail = _EMPTY_TAIL
        for index, queue in enumerate(self.queues):
            if len(queue) >= self.entries_per_queue:
                continue
            tail_est = self._tail_est[index] if queue else _EMPTY_TAIL
            if tail_est <= est_issue - 1 and (best is None or tail_est > best_tail):
                best = index
                best_tail = tail_est
        if best is None:
            self.dispatch_stalls += 1
            return False
        uop.est_issue_cycle = est_issue
        self._append(uop, best)
        self._tail_est[best] = est_issue
        self.events.add("latfifo_estimator_ops")
        return True


class LatFifoScheme(SideIdleCountersMixin, IssueScheme):
    """IssueFIFO integer side + latency-placed FP side."""

    name = "latfifo"

    def __init__(self, config: ProcessorConfig, events: StatCounters) -> None:
        super().__init__(config, events)
        scheme = config.scheme
        self.int_side = FifoSide(
            False, scheme.int_queues, scheme.int_queue_entries, events
        )
        self.fp_side = LatencyPlacedFifoSide(
            True, scheme.fp_queues, scheme.fp_queue_entries, events
        )
        self.estimator = IssueTimeEstimator(config)
        self._distributed = scheme.distributed_fus

    def try_dispatch(self, uop: InFlight, cycle: int) -> bool:
        if not uop.op.is_fp:
            if not self.int_side.try_place(uop, cycle):
                return False
            # Keep the estimator coherent: integer instructions update
            # DestCycle/AllStoreAddr too, since FP instructions consume
            # values produced by loads and integer ops.
            self.estimator.estimate(uop.inst, cycle)
            return True
        est_issue = self.estimator.estimate(uop.inst, cycle)
        return self.fp_side.place_by_estimate(uop, est_issue)

    def select_and_issue(self, ctx: IssueContext) -> List[InFlight]:
        issued = self.int_side.issue_heads(ctx, self._distributed)
        issued += self.fp_side.issue_heads(ctx, self._distributed)
        return issued

    def on_result_broadcast(self, cycle: int, broadcasts: int) -> None:
        self.events.add("regs_ready_write", broadcasts)

    def on_mispredict_resolved(self) -> None:
        self.int_side.clear_mapping()
        self.fp_side.clear_mapping()

    def next_dispatch_activity_cycle(self, inst, cycle: int) -> Optional[int]:
        """Skipping-kernel contract: when a stalled FP placement unsticks.

        FP placement compares the stalled instruction's *estimated* issue
        cycle — ``max(cycle + 1, operand estimates)`` — against each
        non-full queue's tail estimate, so a stall can dissolve purely by
        the cycle number advancing. With frozen estimator state the
        estimate's cycle term first beats a tail estimate ``T`` at cycle
        ``T`` exactly, hence the earliest tail estimate over non-full
        queues is the wake cycle.

        Two cases cannot be predicted and fall back conservatively:

        * a self-referential instruction (its destination is also a
          source): the naive kernel re-runs the estimator every retry,
          compounding the operand estimate, so we decline to skip
          (``cycle + 1``);
        * every queue full: placement then frees only via an issue,
          which the event wheel already tracks (``None``).
        """
        if not inst.op.is_fp:
            return None  # integer side is plain FIFO placement
        if inst.dest is not None and inst.dest in inst.srcs:
            return cycle  # re-estimated every retry: never skip
        side = self.fp_side
        tails = [
            side._tail_est[index] if queue else _EMPTY_TAIL
            for index, queue in enumerate(side.queues)
            if len(queue) < side.entries_per_queue
        ]
        if not tails:
            return None
        earliest = min(tails)
        return earliest if earliest >= cycle else cycle

    def occupancy(self) -> int:
        return self.int_side.occupancy() + self.fp_side.occupancy()

    def queue_count_for_side(self, is_fp: bool) -> int:
        return self.fp_side.num_queues if is_fp else self.int_side.num_queues
