"""Conventional CAM/RAM issue queue (the paper's baseline).

One out-of-order queue per side (integer / FP), as in the P6 family: any
instruction whose operands are ready may issue, oldest first, up to the
issue width. Readiness in real hardware comes from CAM tag broadcast
("wakeup"); the simulator gets identical timing from the scoreboard and
*accounts* the CAM activity for the energy model, assuming the
Folegnani-González optimization (only unready operand slots are woken)
and the 8-bank implementation whose empty banks are disabled.

With ``unbounded=True`` each side holds as many instructions as the ROB,
the Section 3 reference configuration; the Section 4 baseline is the
bounded ``IQ_64_64``.
"""

from __future__ import annotations

from typing import List

from repro.common.config import ProcessorConfig
from repro.common.stats import StatCounters
from repro.core.uop import InFlight
from repro.issue.base import IssueContext, IssueScheme

__all__ = ["ConventionalIssueQueue"]


class ConventionalIssueQueue(IssueScheme):
    """CAM/RAM baseline, bounded or unbounded.

    Skipping-kernel notes: selection scans age order and issues on
    operand readiness alone, and readiness transitions always ride the
    broadcast schedule, so the scheme needs no wake timers (base-class
    ``next_activity_cycle`` of ``None``) and has no per-cycle stall
    diagnostics of its own (empty ``idle_counters``); the per-cycle
    ``iq_select_cycles`` energy accrual is captured by the kernel's
    measured-delta interval accounting.
    """

    name = "conventional"

    def __init__(self, config: ProcessorConfig, events: StatCounters) -> None:
        super().__init__(config, events)
        scheme = config.scheme
        if scheme.unbounded:
            self._int_capacity = config.rob_entries
            self._fp_capacity = config.rob_entries
        else:
            self._int_capacity = scheme.int_queue_entries
            self._fp_capacity = scheme.fp_queue_entries
        # Entries stay in age order because dispatch is in order and we
        # only ever append.
        self._int_queue: List[InFlight] = []
        self._fp_queue: List[InFlight] = []

    # -- dispatch ----------------------------------------------------
    def try_dispatch(self, uop: InFlight, cycle: int) -> bool:
        queue, capacity = (
            (self._fp_queue, self._fp_capacity)
            if uop.op.is_fp
            else (self._int_queue, self._int_capacity)
        )
        if len(queue) >= capacity:
            return False
        queue.append(uop)
        self.events.add("iq_buff_write")
        return True

    # -- issue -------------------------------------------------------
    def select_and_issue(self, ctx: IssueContext) -> List[InFlight]:
        issued: List[InFlight] = []
        for queue in (self._int_queue, self._fp_queue):
            if not queue:
                continue
            self.events.add("iq_select_cycles")
            taken_indices: List[int] = []
            for i, uop in enumerate(queue):
                if ctx.issue(uop):
                    taken_indices.append(i)
                    issued.append(uop)
            for i in reversed(taken_indices):
                queue.pop(i)
            self.events.add("iq_buff_read", len(taken_indices))
        return issued

    # -- energy ------------------------------------------------------
    def on_result_broadcast(self, cycle: int, broadcasts: int) -> None:
        """Each completing result broadcasts its tag to every *unready*
        source operand slot (ready slots and empty banks are disabled)."""
        if broadcasts == 0:
            return
        self.events.add("iq_wakeup_broadcasts", broadcasts)
        unready = 0
        for queue in (self._int_queue, self._fp_queue):
            for uop in queue:
                for phys in uop.src_phys:
                    if not self._scoreboard.is_ready(phys, cycle):
                        unready += 1
        self.events.add("iq_wakeup_comparisons", broadcasts * unready)

    def bind_scoreboard(self, scoreboard) -> None:
        """Give the scheme scoreboard access for wakeup accounting."""
        self._scoreboard = scoreboard

    # -- introspection -----------------------------------------------
    def occupancy(self) -> int:
        return len(self._int_queue) + len(self._fp_queue)

    def side_occupancy(self, is_fp: bool) -> int:
        return len(self._fp_queue if is_fp else self._int_queue)
