"""Conventional CAM/RAM issue queue (the paper's baseline).

One out-of-order queue per side (integer / FP), as in the P6 family: any
instruction whose operands are ready may issue, oldest first, up to the
issue width. Readiness in real hardware comes from CAM tag broadcast
("wakeup"); the simulator gets identical timing from the scoreboard and
*accounts* the CAM activity for the energy model, assuming the
Folegnani-González optimization (only unready operand slots are woken)
and the 8-bank implementation whose empty banks are disabled.

With ``unbounded=True`` each side holds as many instructions as the ROB,
the Section 3 reference configuration; the Section 4 baseline is the
bounded ``IQ_64_64``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.config import ProcessorConfig
from repro.common.stats import StatCounters
from repro.core.scoreboard import NEVER
from repro.core.uop import InFlight
from repro.issue.base import IssueContext, IssueScheme

__all__ = ["ConventionalIssueQueue"]


class ConventionalIssueQueue(IssueScheme):
    """CAM/RAM baseline, bounded or unbounded.

    Skipping-kernel notes: selection scans age order and issues on
    operand readiness alone, and readiness transitions always ride the
    broadcast schedule, so the scheme needs no wake timers (base-class
    ``next_activity_cycle`` of ``None``) and has no per-cycle stall
    diagnostics of its own (empty ``idle_counters``); the per-cycle
    ``iq_select_cycles`` energy accrual is captured by the kernel's
    measured-delta interval accounting.

    Ready-bound short-circuit: the full-queue selection scan is skipped
    while it provably cannot issue anything. Each side caches the
    earliest cycle at which *any* resident entry could have all issue
    operands ready; the bound stays exact until the queue's membership
    or the scoreboard's readiness state changes (tracked by revision
    counters), so cycles before the bound take an O(1) check instead of
    an O(entries) scan. A skipped scan is observationally identical to
    one that issues nothing — ``ctx.issue`` has no side effects on
    failure and the selection energy accrues either way — which the
    kernel-equivalence net pins (``_scan_shortcircuit`` toggles the
    optimization off for the differential run).
    """

    name = "conventional"

    #: Class-level kill switch for the ready-bound short-circuit, used by
    #: the equivalence tests to prove the optimized and plain scans are
    #: bit-identical.
    _scan_shortcircuit = True

    def __init__(self, config: ProcessorConfig, events: StatCounters) -> None:
        super().__init__(config, events)
        scheme = config.scheme
        if scheme.unbounded:
            self._int_capacity = config.rob_entries
            self._fp_capacity = config.rob_entries
        else:
            self._int_capacity = scheme.int_queue_entries
            self._fp_capacity = scheme.fp_queue_entries
        # Entries stay in age order because dispatch is in order and we
        # only ever append.
        self._int_queue: List[InFlight] = []
        self._fp_queue: List[InFlight] = []
        # Ready-bound cache per side: (scoreboard version, queue revision,
        # earliest possible all-operands-ready cycle). The revision bumps
        # on every membership change (append/pop).
        self._queue_rev = [0, 0]
        self._ready_bound: List[Optional[tuple]] = [None, None]

    # -- dispatch ----------------------------------------------------
    def try_dispatch(self, uop: InFlight, cycle: int) -> bool:
        side = 1 if uop.op.is_fp else 0
        queue, capacity = (
            (self._fp_queue, self._fp_capacity)
            if side
            else (self._int_queue, self._int_capacity)
        )
        if len(queue) >= capacity:
            return False
        queue.append(uop)
        self._queue_rev[side] += 1
        self.events.add("iq_buff_write")
        return True

    # -- issue -------------------------------------------------------
    def _scan_may_issue(self, side: int, queue: List[InFlight], cycle: int) -> bool:
        """False only if no resident entry can pass ``operands_ready``.

        The cached bound is the minimum over entries of the cycle at
        which all issue operands become available (``NEVER`` while any
        producer is unissued). Readiness cycles only move via the
        scoreboard, and membership only via this scheme, so a version/
        revision match proves the bound still holds.
        """
        scoreboard = self._scoreboard
        cached = self._ready_bound[side]
        version, rev = scoreboard.version, self._queue_rev[side]
        if cached is not None and cached[0] == version and cached[1] == rev:
            bound = cached[2]
        else:
            bound = NEVER
            ready_cycle = scoreboard.ready_cycle
            for uop in queue:
                latest = 0
                for phys in uop.issue_srcs:
                    r = ready_cycle(phys)
                    if r > latest:
                        latest = r
                if latest < bound:
                    bound = latest
                    if bound == 0:
                        break
            self._ready_bound[side] = (version, rev, bound)
        return bound <= cycle

    def select_and_issue(self, ctx: IssueContext) -> List[InFlight]:
        issued: List[InFlight] = []
        for side, queue in enumerate((self._int_queue, self._fp_queue)):
            if not queue:
                continue
            self.events.add("iq_select_cycles")
            if self._scan_shortcircuit and not self._scan_may_issue(
                side, queue, ctx.cycle
            ):
                continue
            taken_indices: List[int] = []
            for i, uop in enumerate(queue):
                if ctx.issue(uop):
                    taken_indices.append(i)
                    issued.append(uop)
            if taken_indices:
                for i in reversed(taken_indices):
                    queue.pop(i)
                self._queue_rev[side] += 1
            self.events.add("iq_buff_read", len(taken_indices))
        return issued

    # -- energy ------------------------------------------------------
    def on_result_broadcast(self, cycle: int, broadcasts: int) -> None:
        """Each completing result broadcasts its tag to every *unready*
        source operand slot (ready slots and empty banks are disabled)."""
        if broadcasts == 0:
            return
        self.events.add("iq_wakeup_broadcasts", broadcasts)
        unready = 0
        for queue in (self._int_queue, self._fp_queue):
            for uop in queue:
                for phys in uop.src_phys:
                    if not self._scoreboard.is_ready(phys, cycle):
                        unready += 1
        self.events.add("iq_wakeup_comparisons", broadcasts * unready)

    def bind_scoreboard(self, scoreboard) -> None:
        """Give the scheme scoreboard access for wakeup accounting."""
        self._scoreboard = scoreboard

    def next_wakeup_cycle(self, cycle: int, scoreboard) -> Optional[int]:
        """Earliest scheduled all-operands-ready cycle among residents.

        Any resident of the out-of-order queue may issue the cycle its
        last operand becomes ready, so this is the minimum over *all*
        entries of their scheduled readiness cycle, restricted to
        ``>= cycle`` (an already-ready resident that did not issue is
        pinned by functional units or budgets, which the wheel tracks)
        and to scheduled producers (``NEVER`` rides the issue activity
        of the producer itself). Distinct from the ready-bound cache of
        :meth:`_scan_may_issue`, which wants the *unrestricted* minimum.
        """
        earliest: Optional[int] = None
        for queue in (self._int_queue, self._fp_queue):
            for uop in queue:
                ready = scoreboard.operands_ready_cycle(uop.issue_srcs)
                if cycle <= ready < NEVER and (earliest is None or ready < earliest):
                    earliest = ready
        return earliest

    # -- introspection -----------------------------------------------
    def occupancy(self) -> int:
        return len(self._int_queue) + len(self._fp_queue)

    def side_occupancy(self, is_fp: bool) -> int:
        return len(self._fp_queue if is_fp else self._int_queue)
