"""Issue-queue organizations: the paper's contribution and its baselines."""

from repro.common.config import (
    SCHEME_CONVENTIONAL,
    SCHEME_ISSUEFIFO,
    SCHEME_LATFIFO,
    SCHEME_MIXBUFF,
    ProcessorConfig,
)
from repro.common.stats import StatCounters
from repro.issue.base import IssueContext, IssueScheme
from repro.issue.conventional import ConventionalIssueQueue
from repro.issue.fifo_side import FifoSide
from repro.issue.issuefifo import IssueFifoScheme
from repro.issue.latency_estimator import IssueTimeEstimator
from repro.issue.latfifo import LatencyPlacedFifoSide, LatFifoScheme
from repro.issue.mapping import ChainRenameTable, QueueRenameTable
from repro.issue.mixbuff import MixBuffScheme, MixBuffSide
from repro.issue.selection import (
    CODE_FINISHED,
    CODE_FINISHES_NEXT_CYCLE,
    CODE_NOT_READY,
    SelectableEntry,
    latency_code,
    select_entry,
    selection_key,
)

__all__ = [
    "CODE_FINISHED",
    "CODE_FINISHES_NEXT_CYCLE",
    "CODE_NOT_READY",
    "ChainRenameTable",
    "ConventionalIssueQueue",
    "FifoSide",
    "IssueContext",
    "IssueFifoScheme",
    "IssueScheme",
    "IssueTimeEstimator",
    "LatFifoScheme",
    "LatencyPlacedFifoSide",
    "MixBuffScheme",
    "MixBuffSide",
    "QueueRenameTable",
    "SelectableEntry",
    "build_scheme",
    "latency_code",
    "select_entry",
    "selection_key",
]


def build_scheme(config: ProcessorConfig, events: StatCounters) -> IssueScheme:
    """Instantiate the issue scheme named by ``config.scheme.kind``."""
    kind = config.scheme.kind
    if kind == SCHEME_CONVENTIONAL:
        return ConventionalIssueQueue(config, events)
    if kind == SCHEME_ISSUEFIFO:
        return IssueFifoScheme(config, events)
    if kind == SCHEME_LATFIFO:
        return LatFifoScheme(config, events)
    if kind == SCHEME_MIXBUFF:
        return MixBuffScheme(config, events)
    raise ValueError(f"unknown scheme kind {kind!r}")
