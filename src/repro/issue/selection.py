"""MixBUFF per-queue selection logic (Section 3.2.1, Figure 5).

Every cycle each queue's chain-latency table is read, each entry's count
is compressed to two bits —

* ``00`` — the chain's last issued instruction finishes *next* cycle
  (its dependent is being considered for the first time, back-to-back),
* ``01`` — it has already finished,
* ``11`` — it needs two or more cycles,

— and each queue entry concatenates its chain's pair of bits with its age
identifier. The selection logic picks the minimum, i.e. the oldest
instruction in the highest priority class; ``11`` entries are not
candidates. First-time-ready instructions (code ``00`` — their chain
predecessor finishes next cycle, so this is their first chance) thereby
beat instructions whose issue was already delayed (code ``01``), the
paper's anti-starvation heuristic. The key is exactly the concatenation
the paper's Figure 5 shows: ``(code, age)`` — no additional state.

The module is pure (no pipeline dependencies) so the Figure 5 worked
example can be reproduced directly in tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

__all__ = ["latency_code", "selection_key", "select_entry", "SelectableEntry"]

CODE_FINISHES_NEXT_CYCLE = 0b00
CODE_FINISHED = 0b01
CODE_NOT_READY = 0b11


class SelectableEntry:
    """Minimal view of a queue entry the selector needs."""

    __slots__ = ("chain", "age", "delayed", "payload")

    def __init__(self, chain: int, age: int, delayed: bool = False, payload=None) -> None:
        self.chain = chain
        self.age = age
        self.delayed = delayed
        self.payload = payload


def latency_code(chain_completion_cycle: int, cycle: int) -> int:
    """Compress a chain's completion cycle into the paper's 2-bit code.

    ``chain_completion_cycle`` is the cycle at which the chain's last
    issued instruction's result is available; ``cycle`` is the current
    cycle. The hardware stores a down-counter; comparing absolute cycles
    is equivalent.
    """
    remaining = chain_completion_cycle - cycle
    if remaining <= 0:
        return CODE_FINISHED
    if remaining == 1:
        return CODE_FINISHES_NEXT_CYCLE
    return CODE_NOT_READY


def selection_key(code: int, age: int) -> Tuple[int, int]:
    """Priority key: smaller wins.

    The 2-bit code orders ``00 < 01 < 11`` (finishing-next-cycle
    first-timers beat already-finished/delayed entries); the age
    identifier breaks ties, oldest first. This is the bit concatenation
    of the paper's Figure 5.
    """
    return (code, age)


def select_entry(
    entries: Iterable[SelectableEntry],
    chain_completion: Dict[int, int],
    cycle: int,
) -> Optional[SelectableEntry]:
    """Pick the entry to issue from one queue, or None.

    ``chain_completion`` maps chain id → absolute completion cycle of the
    chain's last issued instruction (0 if none issued yet).
    """
    best: Optional[SelectableEntry] = None
    best_key: Optional[Tuple[int, int]] = None
    for entry in entries:
        code = latency_code(chain_completion.get(entry.chain, 0), cycle)
        if code == CODE_NOT_READY:
            continue
        key = selection_key(code, entry.age)
        if best_key is None or key < best_key:
            best = entry
            best_key = key
    return best
