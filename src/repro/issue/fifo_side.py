"""One side (integer or FP) of a Palacharla-style FIFO issue organization.

Dispatch placement implements the three heuristics of Section 2.2
(quoted from the paper):

1. if a queue's tail produces the instruction's first operand, place it
   there — if that queue is full and the instruction has only one source
   operand, dispatch stalls;
2. else if a queue's tail produces the second operand, place it there —
   if that queue is full, dispatch stalls;
3. otherwise place it in an empty FIFO — if none is empty, dispatch
   stalls.

Only FIFO heads are considered for issue; a head checks its operands in
the ready-register table (``regs_ready``) every cycle. Heads are issued
oldest first across the queues of the side.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.common.stats import StatCounters
from repro.core.scoreboard import NEVER
from repro.core.uop import InFlight
from repro.issue.base import IssueContext
from repro.issue.mapping import QueueRenameTable

__all__ = ["FifoSide"]


class FifoSide:
    """A bank of FIFO queues for one register side."""

    def __init__(
        self,
        is_fp: bool,
        num_queues: int,
        entries_per_queue: int,
        events: StatCounters,
        event_prefix: str = "fifo",
        qrename_prefix: str = "qrename",
    ) -> None:
        self.is_fp = is_fp
        self.num_queues = num_queues
        self.entries_per_queue = entries_per_queue
        self.queues: List[Deque[InFlight]] = [deque() for __ in range(num_queues)]
        self.events = events
        self._event_prefix = event_prefix
        self.table = QueueRenameTable(events, qrename_prefix)
        self.dispatch_stalls = 0
        # Stall attribution (diagnostics): which placement rule failed.
        self.stalls_rule1_full = 0
        self.stalls_rule2_full = 0
        self.stalls_no_empty = 0

    # -- placement ----------------------------------------------------
    def _queue_full(self, index: int) -> bool:
        return len(self.queues[index]) >= self.entries_per_queue

    def _producer_queue(self, uop: InFlight, src_index: int) -> Optional[int]:
        """Queue whose tail produces source ``src_index``, if any."""
        srcs = uop.inst.srcs
        if src_index >= len(srcs):
            return None
        return self.table.queue_of(srcs[src_index])

    def try_place(self, uop: InFlight, cycle: int) -> bool:
        """Apply the dispatch heuristics; returns False on stall."""
        queue_index = self._choose_queue(uop)
        if queue_index is None:
            self.dispatch_stalls += 1
            return False
        self._append(uop, queue_index)
        return True

    def _choose_queue(self, uop: InFlight) -> Optional[int]:
        first = self._producer_queue(uop, 0)
        if first is not None:
            if not self._queue_full(first):
                return first
            if len(uop.inst.srcs) == 1:
                self.stalls_rule1_full += 1
                return None  # rule 1: producer queue full, single operand
        second = self._producer_queue(uop, 1)
        if second is not None:
            if not self._queue_full(second):
                return second
            self.stalls_rule2_full += 1
            return None  # rule 2: producer queue full
        for index, queue in enumerate(self.queues):
            if not queue:
                return index
        self.stalls_no_empty += 1
        return None  # rule 3: no empty FIFO

    def _append(self, uop: InFlight, queue_index: int) -> None:
        self.queues[queue_index].append(uop)
        uop.queue_index = queue_index
        self.table.set_tail(queue_index, uop.inst.dest)
        self.events.add(f"{self._event_prefix}_write")

    # -- issue ---------------------------------------------------------
    def issue_heads(self, ctx: IssueContext, distributed: bool) -> List[InFlight]:
        """Issue ready FIFO heads, oldest first."""
        heads = [(queue[0].age, index) for index, queue in enumerate(self.queues) if queue]
        # Every head reads its operands' ready bits this cycle.
        for __, index in heads:
            self.events.add("regs_ready_read", len(self.queues[index][0].src_phys))
        issued: List[InFlight] = []
        for __, index in sorted(heads):
            head = self.queues[index][0]
            queue_arg = index if distributed else None
            if ctx.issue(head, queue_arg):
                self.queues[index].popleft()
                self.events.add(f"{self._event_prefix}_read")
                issued.append(head)
        return issued

    # -- skipping-kernel support ----------------------------------------
    def idle_counters(self) -> dict:
        """Diagnostic counters a quiescent (stalled-dispatch) cycle moves."""
        return {
            "dispatch_stalls": self.dispatch_stalls,
            "stalls_rule1_full": self.stalls_rule1_full,
            "stalls_rule2_full": self.stalls_rule2_full,
            "stalls_no_empty": self.stalls_no_empty,
        }

    def apply_idle_counters(self, before: dict, n_cycles: int) -> None:
        """Replay the per-cycle counter delta for a skipped idle span."""
        self.dispatch_stalls += n_cycles * (
            self.dispatch_stalls - before["dispatch_stalls"]
        )
        self.stalls_rule1_full += n_cycles * (
            self.stalls_rule1_full - before["stalls_rule1_full"]
        )
        self.stalls_rule2_full += n_cycles * (
            self.stalls_rule2_full - before["stalls_rule2_full"]
        )
        self.stalls_no_empty += n_cycles * (
            self.stalls_no_empty - before["stalls_no_empty"]
        )

    def next_wakeup_cycle(self, cycle: int, scoreboard) -> Optional[int]:
        """Earliest scheduled all-operands-ready cycle among the heads.

        Only FIFO heads are candidates for issue, so only a *head*
        becoming ready can turn a quiescent cycle live. Heads whose
        producers have not issued are excluded (``NEVER``): the
        producer's issue is activity the kernel never skips over.
        """
        earliest: Optional[int] = None
        for queue in self.queues:
            if not queue:
                continue
            ready = scoreboard.operands_ready_cycle(queue[0].issue_srcs)
            if cycle <= ready < NEVER and (earliest is None or ready < earliest):
                earliest = ready
        return earliest

    # -- misc -----------------------------------------------------------
    def occupancy(self) -> int:
        return sum(map(len, self.queues))  # map beats a genexpr here: hot path

    def clear_mapping(self) -> None:
        """Branch misprediction recovery: clear the register→queue table."""
        self.table.clear()

    def queue_lengths(self) -> List[int]:
        return [len(queue) for queue in self.queues]
