"""Register → queue mapping tables (the "Qrename" structures).

Both FIFO schemes and MixBUFF steer a dispatched instruction to the queue
holding its producer. The hardware is a small RAM indexed by logical
register: the FIFO schemes store a queue identifier, MixBUFF stores a
(queue, chain) pair. An entry is only *valid* while its producer is still
the tail of that queue/chain; rather than invalidating every register
entry when a queue's tail changes (expensive), each queue/chain remembers
which register its tail produces and validity is the agreement of the two
— exactly the generation-check trick hardware uses.

The table is indexed by *logical* register and is simply cleared on a
branch misprediction (the paper found regeneration unnecessary).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.common.stats import StatCounters
from repro.isa.instructions import RegisterRef

__all__ = ["QueueRenameTable", "ChainRenameTable"]


def _key(ref: RegisterRef) -> Tuple[bool, int]:
    return (ref.is_fp, ref.index)


class QueueRenameTable:
    """Logical register → FIFO queue holding its producer at the tail."""

    def __init__(self, events: StatCounters, event_prefix: str = "qrename") -> None:
        self._map: Dict[Tuple[bool, int], int] = {}
        self._tail_reg: Dict[int, Optional[Tuple[bool, int]]] = {}
        self.events = events
        self._read_event = f"{event_prefix}_read"
        self._write_event = f"{event_prefix}_write"

    def queue_of(self, ref: RegisterRef) -> Optional[int]:
        """Queue whose tail produces ``ref``, or None."""
        self.events.add(self._read_event)
        key = _key(ref)
        queue = self._map.get(key)
        if queue is None:
            return None
        if self._tail_reg.get(queue) != key:
            return None  # someone else is the tail now
        return queue

    def set_tail(self, queue: int, dest: Optional[RegisterRef]) -> None:
        """Instruction dispatched to ``queue``; it is the new tail.

        Instructions without a destination (stores, branches) write
        nothing into the table — the hardware table is indexed by
        destination register, so a dest-less tail leaves the previous
        producer's entry in place. A consumer placed behind it still
        follows its producer in queue order, so the dependence-order
        guarantee is preserved.
        """
        if dest is None:
            return
        self.events.add(self._write_event)
        key = _key(dest)
        self._map[key] = queue
        self._tail_reg[queue] = key

    def queue_emptied(self, queue: int) -> None:
        """Queue drained completely; its tail marker goes away."""
        self._tail_reg[queue] = None

    def clear(self) -> None:
        """Branch misprediction: wipe the whole table."""
        self._map.clear()
        self._tail_reg.clear()


class ChainRenameTable:
    """Logical register → (queue, chain) for MixBUFF.

    Each chain remembers the register its *last dispatched* instruction
    produces; an instruction extends a chain only if one of its sources
    is that register (Section 3.2.1: "an instruction is placed in the
    same queue as its predecessor only if it is the last instruction of
    the chain").
    """

    def __init__(self, events: StatCounters, event_prefix: str = "chainmap") -> None:
        self._map: Dict[Tuple[bool, int], Tuple[int, int]] = {}
        self._tail_reg: Dict[Tuple[int, int], Optional[Tuple[bool, int]]] = {}
        self.events = events
        self._read_event = f"{event_prefix}_read"
        self._write_event = f"{event_prefix}_write"

    def chain_of(self, ref: RegisterRef) -> Optional[Tuple[int, int]]:
        """(queue, chain) whose last instruction produces ``ref``."""
        self.events.add(self._read_event)
        key = _key(ref)
        qc = self._map.get(key)
        if qc is None:
            return None
        if self._tail_reg.get(qc) != key:
            return None
        return qc

    def set_tail(self, queue: int, chain: int, dest: Optional[RegisterRef]) -> None:
        """Instruction dispatched to (queue, chain); it is the new tail.

        As in :class:`QueueRenameTable`, dest-less instructions leave the
        previous producer's entry valid.
        """
        if dest is None:
            return
        self.events.add(self._write_event)
        qc = (queue, chain)
        key = _key(dest)
        self._map[key] = qc
        self._tail_reg[qc] = key

    def chain_retired(self, queue: int, chain: int) -> None:
        """Chain has no instructions left in the queue; forget its tail."""
        self._tail_reg.pop((queue, chain), None)

    def clear(self) -> None:
        """Branch misprediction: wipe the whole table."""
        self._map.clear()
        self._tail_reg.clear()
