"""IssueFIFO: Palacharla-style dependence-based FIFO queues on both sides.

The organization the paper evaluates as ``IssueFIFO_AxB_CxD`` and, with
distributed functional units (Section 3.3), as ``IF_distr``. No wakeup
logic exists: FIFO heads poll the ready-register table each cycle.
"""

from __future__ import annotations

from typing import List

from repro.common.config import ProcessorConfig
from repro.common.stats import StatCounters
from repro.core.uop import InFlight
from repro.issue.base import IssueContext, IssueScheme, SideIdleCountersMixin
from repro.issue.fifo_side import FifoSide

__all__ = ["IssueFifoScheme"]


class IssueFifoScheme(SideIdleCountersMixin, IssueScheme):
    """Dependence-based FIFOs for both the integer and FP sides.

    Skipping-kernel notes: placement and head-issue decisions depend
    only on queue contents, the mapping table and operand readiness —
    all event-driven — so the scheme needs no wake timers of its own
    (the base-class ``next_activity_cycle`` contract of ``None``).
    """

    name = "issuefifo"

    def __init__(self, config: ProcessorConfig, events: StatCounters) -> None:
        super().__init__(config, events)
        scheme = config.scheme
        self.int_side = FifoSide(
            False, scheme.int_queues, scheme.int_queue_entries, events
        )
        self.fp_side = FifoSide(
            True, scheme.fp_queues, scheme.fp_queue_entries, events
        )
        self._distributed = scheme.distributed_fus

    def _side_for(self, uop: InFlight) -> FifoSide:
        return self.fp_side if uop.op.is_fp else self.int_side

    def try_dispatch(self, uop: InFlight, cycle: int) -> bool:
        return self._side_for(uop).try_place(uop, cycle)

    def select_and_issue(self, ctx: IssueContext) -> List[InFlight]:
        issued = self.int_side.issue_heads(ctx, self._distributed)
        issued += self.fp_side.issue_heads(ctx, self._distributed)
        return issued

    def on_result_broadcast(self, cycle: int, broadcasts: int) -> None:
        # Completing results set their ready bit in the regs_ready table.
        self.events.add("regs_ready_write", broadcasts)

    def on_mispredict_resolved(self) -> None:
        self.int_side.clear_mapping()
        self.fp_side.clear_mapping()

    def occupancy(self) -> int:
        return self.int_side.occupancy() + self.fp_side.occupancy()

    def queue_count_for_side(self, is_fp: bool) -> int:
        return self.fp_side.num_queues if is_fp else self.int_side.num_queues
