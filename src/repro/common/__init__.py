"""Shared infrastructure: configuration, statistics, errors, RNG streams."""

from repro.common.config import (
    BranchPredictorConfig,
    CacheConfig,
    FunctionalUnitConfig,
    IssueSchemeConfig,
    MemoryConfig,
    ProcessorConfig,
    default_config,
    scheme_name,
)
from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
    UnknownBenchmarkError,
)
from repro.common.rng import derive_seed, make_rng
from repro.common.stats import SimulationStats, StatCounters, harmonic_mean

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "ConfigurationError",
    "FunctionalUnitConfig",
    "IssueSchemeConfig",
    "MemoryConfig",
    "ProcessorConfig",
    "ReproError",
    "SimulationError",
    "SimulationStats",
    "StatCounters",
    "TraceError",
    "UnknownBenchmarkError",
    "default_config",
    "derive_seed",
    "harmonic_mean",
    "make_rng",
    "scheme_name",
]
