"""Exception hierarchy for the repro package.

All package-specific errors derive from :class:`ReproError` so callers can
catch everything raised by the simulator with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent.

    Raised by the ``validate`` methods of the config dataclasses, e.g. a
    cache whose size is not a multiple of ``associativity * line_size``,
    or an issue scheme with zero queues.
    """


class SimulationError(ReproError):
    """The simulator reached an impossible state.

    This always indicates a bug in the simulator (or a hand-built trace
    that violates the instruction-stream invariants), never a property of
    the simulated program.
    """


class TraceError(ReproError):
    """An instruction trace violates the stream invariants.

    Examples: a source register that was never written and is not an
    initial live-in, a load without an address, or a branch without an
    outcome.
    """


class UnknownBenchmarkError(ReproError):
    """A benchmark name was requested that no suite defines."""
