"""Deterministic random-number helpers.

Every stochastic component of the simulator (workload generation, address
streams, branch behaviour) draws from a :class:`random.Random` seeded from
a master seed plus a component-specific *stream label*. This guarantees
that (a) the same configuration always produces the same simulation, and
(b) changing one component's consumption pattern does not perturb the
streams seen by the others.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "make_rng"]


def derive_seed(master_seed: int, label: str) -> int:
    """Derive a child seed from ``master_seed`` and a stream ``label``.

    The derivation is a SHA-256 hash, so distinct labels yield
    statistically independent child seeds and the mapping is stable
    across Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{master_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(master_seed: int, label: str) -> random.Random:
    """Return a :class:`random.Random` seeded for the given stream label."""
    return random.Random(derive_seed(master_seed, label))
