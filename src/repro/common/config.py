"""Processor and scheme configuration objects.

:class:`ProcessorConfig` encodes Table 1 of the paper; the issue-scheme
configs encode the ``IssueFIFO_AxB_CxD`` style naming used throughout
Section 3 (A integer queues of B entries, C FP queues of D entries).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, is_dataclass, replace
from typing import Optional

from repro.common.errors import ConfigurationError

__all__ = [
    "CacheConfig",
    "MemoryConfig",
    "BranchPredictorConfig",
    "FunctionalUnitConfig",
    "IssueSchemeConfig",
    "ProcessorConfig",
    "KERNEL_NAIVE",
    "KERNEL_SKIP",
    "KERNEL_VECTORIZED",
    "KERNEL_SPECIALIZED",
    "VALID_KERNELS",
    "default_config",
    "scheme_name",
    "stable_fingerprint",
]


def stable_fingerprint(obj) -> str:
    """Canonical JSON rendering of a (possibly nested) config dataclass.

    Field order is normalized by sorting keys, so the fingerprint — and
    anything hashed from it — is stable across processes and Python
    versions. Every config field is a str/int/float/bool/None, which JSON
    renders deterministically.

    Fields named in the class's ``_FINGERPRINT_EXCLUDE`` tuple are left
    out: they select an execution strategy (e.g. the simulation kernel)
    whose results are bit-identical by contract, so they must not split
    the content-addressed result cache.
    """
    if not is_dataclass(obj):
        raise TypeError(f"can only fingerprint dataclasses, got {type(obj).__name__}")
    payload = {"__type__": type(obj).__name__, **asdict(obj)}
    for name in getattr(type(obj), "_FINGERPRINT_EXCLUDE", ()):
        payload.pop(name, None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class _Fingerprinted:
    """Mixin giving every config dataclass a content-addressed key."""

    def cache_key(self) -> str:
        """SHA-256 over the canonical field rendering of this config.

        Two configs share a key iff every (nested) field is equal, so the
        key is safe to use as an on-disk cache address: changing any knob
        — queue geometry, latencies, scheme kind, ... — changes the key.
        """
        return hashlib.sha256(stable_fingerprint(self).encode("ascii")).hexdigest()


@dataclass(frozen=True)
class CacheConfig(_Fingerprinted):
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int
    ports: int = 1

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on an inconsistent geometry."""
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ConfigurationError(f"{self.name}: sizes must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigurationError(
                f"{self.name}: size must be a multiple of associativity * line size"
            )
        sets = self.num_sets
        if sets & (sets - 1):
            raise ConfigurationError(f"{self.name}: number of sets must be a power of two")
        if self.hit_latency < 1:
            raise ConfigurationError(f"{self.name}: hit latency must be >= 1 cycle")
        if self.ports < 1:
            raise ConfigurationError(f"{self.name}: needs at least one port")

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class MemoryConfig(_Fingerprinted):
    """Main-memory timing: 100 cycles for the first chunk, 2 inter-chunk."""

    first_chunk_latency: int = 100
    inter_chunk_latency: int = 2
    chunk_bytes: int = 64

    def validate(self) -> None:
        if self.first_chunk_latency < 1 or self.inter_chunk_latency < 0:
            raise ConfigurationError("memory latencies must be positive")
        if self.chunk_bytes < 1:
            raise ConfigurationError("memory chunk size must be positive")

    def access_latency(self, bytes_needed: int) -> int:
        """Latency to transfer ``bytes_needed`` bytes from main memory."""
        if bytes_needed <= 0:
            raise ConfigurationError("bytes_needed must be positive")
        extra_chunks = (bytes_needed - 1) // self.chunk_bytes
        return self.first_chunk_latency + extra_chunks * self.inter_chunk_latency


@dataclass(frozen=True)
class BranchPredictorConfig(_Fingerprinted):
    """Hybrid predictor: 2K gshare + 2K bimodal + 1K selector, 2048x4 BTB."""

    gshare_entries: int = 2048
    bimodal_entries: int = 2048
    selector_entries: int = 1024
    btb_entries: int = 2048
    btb_associativity: int = 4
    history_bits: int = 11

    def validate(self) -> None:
        for label, value in (
            ("gshare_entries", self.gshare_entries),
            ("bimodal_entries", self.bimodal_entries),
            ("selector_entries", self.selector_entries),
            ("btb_entries", self.btb_entries),
        ):
            if value <= 0 or value & (value - 1):
                raise ConfigurationError(f"{label} must be a positive power of two")
        if self.btb_entries % self.btb_associativity:
            raise ConfigurationError("btb_entries must be divisible by associativity")
        if not 1 <= self.history_bits <= 30:
            raise ConfigurationError("history_bits out of range")


@dataclass(frozen=True)
class FunctionalUnitConfig(_Fingerprinted):
    """Counts and latencies of the functional units (Table 1).

    Multiplies are pipelined; divides occupy their unit for the full
    latency (unpipelined), which is the conventional SimpleScalar model.
    """

    int_alu_count: int = 8
    int_muldiv_count: int = 4
    fp_alu_count: int = 4
    fp_muldiv_count: int = 4

    int_alu_latency: int = 1
    int_mul_latency: int = 3
    int_div_latency: int = 20
    fp_alu_latency: int = 2
    fp_mul_latency: int = 4
    fp_div_latency: int = 12
    address_latency: int = 1

    def validate(self) -> None:
        counts = (
            self.int_alu_count,
            self.int_muldiv_count,
            self.fp_alu_count,
            self.fp_muldiv_count,
        )
        if any(c < 1 for c in counts):
            raise ConfigurationError("all functional-unit counts must be >= 1")
        latencies = (
            self.int_alu_latency,
            self.int_mul_latency,
            self.int_div_latency,
            self.fp_alu_latency,
            self.fp_mul_latency,
            self.fp_div_latency,
            self.address_latency,
        )
        if any(latency < 1 for latency in latencies):
            raise ConfigurationError("all latencies must be >= 1 cycle")


# Simulation-kernel constants (see repro.core.engine and repro.backends).
# The kernel is an execution strategy, not simulated behaviour: every
# kernel must produce bit-identical SimulationStats for every input.
# ``naive``/``skip`` are the built-in engine loops; ``vectorized`` and
# ``specialized`` are the detailed-path backends of :mod:`repro.backends`
# (numpy structure-of-arrays batching and per-config generated kernels).
KERNEL_NAIVE = "naive"
KERNEL_SKIP = "skip"
KERNEL_VECTORIZED = "vectorized"
KERNEL_SPECIALIZED = "specialized"
VALID_KERNELS = (KERNEL_NAIVE, KERNEL_SKIP, KERNEL_VECTORIZED, KERNEL_SPECIALIZED)

# Scheme kind constants (strings keep configs printable and hashable).
SCHEME_CONVENTIONAL = "conventional"
SCHEME_ISSUEFIFO = "issuefifo"
SCHEME_LATFIFO = "latfifo"
SCHEME_MIXBUFF = "mixbuff"

_VALID_KINDS = (
    SCHEME_CONVENTIONAL,
    SCHEME_ISSUEFIFO,
    SCHEME_LATFIFO,
    SCHEME_MIXBUFF,
)


@dataclass(frozen=True)
class IssueSchemeConfig(_Fingerprinted):
    """Which issue organization to simulate, and its geometry.

    For the multi-queue schemes the geometry follows the paper's
    ``<kind>_AxB_CxD`` naming: ``int_queues`` x ``int_queue_entries`` for
    the integer side and ``fp_queues`` x ``fp_queue_entries`` for the FP
    side. For the conventional scheme only ``int_queue_entries`` /
    ``fp_queue_entries`` matter (one queue per side); ``unbounded=True``
    gives each side as many entries as the reorder buffer, which is the
    Section 3 baseline.

    ``distributed_fus`` binds functional units to queues per Section 3.3:
    one integer ALU per integer queue, one integer mul/div per *pair* of
    integer queues, and one FP adder plus one FP mul/div per pair of FP
    queues. ``max_chains_per_queue`` only applies to MixBUFF (``None``
    means unbounded chains, as in the Section 3.2 study).
    """

    kind: str = SCHEME_CONVENTIONAL
    int_queues: int = 1
    int_queue_entries: int = 64
    fp_queues: int = 1
    fp_queue_entries: int = 64
    unbounded: bool = False
    distributed_fus: bool = False
    max_chains_per_queue: Optional[int] = None
    # Integer side of LatFIFO and MixBUFF behaves exactly like IssueFIFO
    # (the paper's proposals only change the FP side).

    def validate(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ConfigurationError(f"unknown issue scheme kind: {self.kind!r}")
        if self.int_queues < 1 or self.fp_queues < 1:
            raise ConfigurationError("need at least one queue per side")
        if self.int_queue_entries < 1 or self.fp_queue_entries < 1:
            raise ConfigurationError("queues need at least one entry")
        if self.kind == SCHEME_CONVENTIONAL and (self.int_queues != 1 or self.fp_queues != 1):
            raise ConfigurationError("conventional scheme has one queue per side")
        if self.max_chains_per_queue is not None:
            if self.kind != SCHEME_MIXBUFF:
                raise ConfigurationError("max_chains_per_queue only applies to MixBUFF")
            if self.max_chains_per_queue < 1:
                raise ConfigurationError("max_chains_per_queue must be >= 1")
        if self.distributed_fus and self.kind == SCHEME_CONVENTIONAL:
            raise ConfigurationError("distributed FUs require multiple queues")


def scheme_name(cfg: IssueSchemeConfig) -> str:
    """Render a scheme config in the paper's naming convention.

    >>> scheme_name(IssueSchemeConfig(kind="issuefifo", int_queues=8,
    ...     int_queue_entries=8, fp_queues=16, fp_queue_entries=16))
    'IssueFIFO_8x8_16x16'
    """
    pretty = {
        SCHEME_CONVENTIONAL: "IQ",
        SCHEME_ISSUEFIFO: "IssueFIFO",
        SCHEME_LATFIFO: "LatFIFO",
        SCHEME_MIXBUFF: "MixBUFF",
    }[cfg.kind]
    if cfg.kind == SCHEME_CONVENTIONAL:
        if cfg.unbounded:
            return "IQ_unbounded"
        return f"IQ_{cfg.int_queue_entries}_{cfg.fp_queue_entries}"
    name = (
        f"{pretty}_{cfg.int_queues}x{cfg.int_queue_entries}"
        f"_{cfg.fp_queues}x{cfg.fp_queue_entries}"
    )
    if cfg.distributed_fus:
        name += "_distr"
    return name


@dataclass(frozen=True)
class ProcessorConfig(_Fingerprinted):
    """Full processor configuration (Table 1 of the paper)."""

    fetch_width: int = 8
    decode_width: int = 8
    commit_width: int = 8
    int_issue_width: int = 8
    fp_issue_width: int = 8
    fetch_queue_entries: int = 64
    rob_entries: int = 256
    int_phys_regs: int = 160
    fp_phys_regs: int = 160
    num_arch_int_regs: int = 32
    num_arch_fp_regs: int = 32
    mispredict_redirect_penalty: int = 1

    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 64 * 1024, 2, 32, 1)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * 1024, 4, 32, 2, ports=4)
    )
    l2cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 512 * 1024, 4, 64, 10)
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    fus: FunctionalUnitConfig = field(default_factory=FunctionalUnitConfig)
    scheme: IssueSchemeConfig = field(default_factory=IssueSchemeConfig)
    technology_um: float = 0.10
    #: Simulation kernel: "skip" (event-driven cycle skipping, the
    #: default) or "naive" (tick every cycle). Both are bit-identical in
    #: every reported statistic — the knob only trades wall-clock time —
    #: so the field is excluded from cache fingerprints below.
    kernel: str = KERNEL_SKIP

    # Execution-strategy fields that must not split the result cache.
    _FINGERPRINT_EXCLUDE = ("kernel",)

    def validate(self) -> None:
        """Validate every nested configuration object."""
        widths = (
            self.fetch_width,
            self.decode_width,
            self.commit_width,
            self.int_issue_width,
            self.fp_issue_width,
        )
        if any(w < 1 for w in widths):
            raise ConfigurationError("pipeline widths must be >= 1")
        if self.fetch_queue_entries < self.fetch_width:
            raise ConfigurationError("fetch queue must hold at least one fetch group")
        if self.rob_entries < self.commit_width:
            raise ConfigurationError("ROB must hold at least one commit group")
        if self.int_phys_regs <= self.num_arch_int_regs:
            raise ConfigurationError("need more INT physical than architectural registers")
        if self.fp_phys_regs <= self.num_arch_fp_regs:
            raise ConfigurationError("need more FP physical than architectural registers")
        if self.mispredict_redirect_penalty < 0:
            raise ConfigurationError("redirect penalty cannot be negative")
        if self.kernel not in VALID_KERNELS:
            raise ConfigurationError(
                f"unknown simulation kernel {self.kernel!r}; valid: {VALID_KERNELS}"
            )
        if not 0.01 <= self.technology_um <= 1.0:
            raise ConfigurationError("technology node out of supported range")
        self.icache.validate()
        self.dcache.validate()
        self.l2cache.validate()
        self.memory.validate()
        self.branch.validate()
        self.fus.validate()
        self.scheme.validate()

    def with_scheme(self, scheme: IssueSchemeConfig) -> "ProcessorConfig":
        """Return a copy of this config with a different issue scheme."""
        return replace(self, scheme=scheme)

    def with_kernel(self, kernel: str) -> "ProcessorConfig":
        """Return a copy of this config with a different simulation kernel."""
        return replace(self, kernel=kernel)


def default_config(scheme: Optional[IssueSchemeConfig] = None) -> ProcessorConfig:
    """Return the Table 1 configuration, optionally with a given scheme."""
    cfg = ProcessorConfig()
    if scheme is not None:
        cfg = cfg.with_scheme(scheme)
    cfg.validate()
    return cfg
