"""Statistics counters shared by the simulator components.

:class:`StatCounters` is a thin named-counter bag with helpers for rates
and merging; :class:`SimulationStats` is the structured result a
:class:`~repro.core.processor.Processor` run produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping

__all__ = ["StatCounters", "SimulationStats", "harmonic_mean"]


class StatCounters:
    """A bag of named integer counters.

    Missing counters read as zero, so callers can increment freely without
    pre-registering names. Iterating yields ``(name, value)`` sorted by
    name so reports are deterministic.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (which may be zero)."""
        if amount:
            self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def merge(self, other: "StatCounters") -> None:
        """Add every counter of ``other`` into this bag."""
        for name, value in other._counts.items():
            self.add(name, value)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters as a plain dict."""
        return dict(self._counts)

    @classmethod
    def from_dict(cls, counts: Mapping[str, int]) -> "StatCounters":
        """Rebuild a counter bag from an :meth:`as_dict` snapshot."""
        bag = cls()
        for name, value in counts.items():
            if not isinstance(name, str) or not isinstance(value, int):
                raise TypeError(f"counter {name!r}={value!r} is not a str->int pair")
            bag.add(name, value)
        return bag

    def __iter__(self):
        return iter(sorted(self._counts.items()))

    def __len__(self) -> int:
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatCounters):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"StatCounters({inner})"


@dataclass
class SimulationStats:
    """Results of one simulation run.

    ``events`` holds every raw activity counter (cache accesses, issue
    queue reads, wakeup comparisons, ...) used later by the energy model.
    """

    cycles: int = 0
    committed_instructions: int = 0
    fetched_instructions: int = 0
    dispatch_stall_cycles: int = 0
    branch_predictions: int = 0
    branch_mispredictions: int = 0
    events: StatCounters = field(default_factory=StatCounters)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed_instructions / self.cycles

    @property
    def mispredict_rate(self) -> float:
        """Fraction of dynamic branches mispredicted."""
        if self.branch_predictions == 0:
            return 0.0
        return self.branch_mispredictions / self.branch_predictions

    def summary(self) -> Mapping[str, float]:
        """Headline numbers, useful for quick printing."""
        return {
            "cycles": float(self.cycles),
            "instructions": float(self.committed_instructions),
            "ipc": self.ipc,
            "mispredict_rate": self.mispredict_rate,
            "dispatch_stall_cycles": float(self.dispatch_stall_cycles),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot; inverse of :meth:`from_dict`.

        Every field is an integer (events included), so the round trip
        through JSON is exact — a cached result is bit-identical to the
        simulation that produced it.
        """
        return {
            "cycles": self.cycles,
            "committed_instructions": self.committed_instructions,
            "fetched_instructions": self.fetched_instructions,
            "dispatch_stall_cycles": self.dispatch_stall_cycles,
            "branch_predictions": self.branch_predictions,
            "branch_mispredictions": self.branch_mispredictions,
            "events": self.events.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationStats":
        """Rebuild stats from a :meth:`to_dict` snapshot.

        Raises ``KeyError``/``TypeError`` on malformed payloads, which the
        result store treats as a cache miss.
        """
        scalars = {}
        for name in (
            "cycles",
            "committed_instructions",
            "fetched_instructions",
            "dispatch_stall_cycles",
            "branch_predictions",
            "branch_mispredictions",
        ):
            value = payload[name]
            if not isinstance(value, int):
                raise TypeError(f"stats field {name!r} must be an int, got {value!r}")
            scalars[name] = value
        return cls(events=StatCounters.from_dict(payload["events"]), **scalars)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, the average the paper uses for IPC bars.

    Zero or negative entries are rejected because a zero IPC would make
    the harmonic mean meaningless (and signals a broken run).
    """
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)
