"""Deliberate, named contract faults for the discovery subsystem.

The divergence-discovery campaigns (:mod:`repro.discover`) prove their
own sensitivity by hunting a *known* bug: a fault listed here is a
small, well-understood violation of a simulator contract that stays
dormant until explicitly armed. Faults are test-only by design — nothing
arms one except the discovery CLI's ``--inject`` flag and the test
suite — but arming is runtime state, not a code edit, so the simulator
version tag cannot see it. The result-cache key therefore folds the
active fault set into its material (see
:func:`repro.experiments.store.result_key`): results computed under a
fault can never alias, or be served as, clean results.

Activation is carried in the ``REPRO_FAULTS`` environment variable (a
comma-separated list of fault names) so multiprocessing workers inherit
the same fault state as the parent — a parallel run under a fault stays
bit-identical to the serial one, which keeps the serial-vs-parallel
oracle honest.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

__all__ = [
    "ENV_VAR",
    "KNOWN_FAULTS",
    "SKIP_IDLE_UNDERCOUNT",
    "active_faults",
    "is_active",
    "activate",
]

ENV_VAR = "REPRO_FAULTS"

#: The skipping kernel replays one quiescent cycle's accounting delta
#: ``span`` times; this fault replays long spans one cycle short, so
#: per-cycle counters (dispatch stalls, occupancy, selection energy)
#: silently undercount relative to the naive kernel — exactly the class
#: of contract bug the kernel-equivalence oracle exists to catch. The
#: ``span > 8`` guard keeps short spans clean, which makes the bug
#: workload-dependent: it only fires on memory-bound traces with long
#: quiescent stretches, so discovery has to actually *search* for it.
SKIP_IDLE_UNDERCOUNT = "skip-idle-undercount"

KNOWN_FAULTS = {
    SKIP_IDLE_UNDERCOUNT: (
        "skipping kernel replays quiescent spans longer than 8 cycles "
        "one replay short (per-cycle accounting undercounts)"
    ),
}


@lru_cache(maxsize=None)
def _parse(raw: str) -> Tuple[str, ...]:
    """Validated, sorted fault names from one env-var rendering."""
    names = sorted({name.strip() for name in raw.split(",") if name.strip()})
    unknown = [name for name in names if name not in KNOWN_FAULTS]
    if unknown:
        raise ConfigurationError(
            f"unknown fault(s) {unknown} in ${ENV_VAR}; known: "
            f"{sorted(KNOWN_FAULTS)}"
        )
    return tuple(names)


def active_faults() -> Tuple[str, ...]:
    """The armed fault names, sorted (empty tuple when none)."""
    return _parse(os.environ.get(ENV_VAR, ""))


def is_active(name: str) -> bool:
    """Is the named fault armed in this process?"""
    return name in active_faults()


def activate(names: Optional[Sequence[str]]) -> Tuple[str, ...]:
    """Arm exactly ``names`` (``None``/empty disarms everything).

    Writes ``$REPRO_FAULTS`` so spawned workers inherit the state;
    raises :class:`ConfigurationError` on unknown names without
    changing anything. Returns the armed set.
    """
    if not names:
        os.environ.pop(ENV_VAR, None)
        return ()
    armed = _parse(",".join(names))
    os.environ[ENV_VAR] = ",".join(armed)
    return armed
