"""Functional fast-forward between detailed measurement slices.

Between slices a sampled run does not need cycle-accurate timing — it
needs the *state* a long-running program would have accumulated: cache
tag/LRU contents and branch-predictor tables. :class:`FunctionalWarmer`
replays the trace's architectural event stream (instruction lines,
branch outcomes, memory addresses) through a private
:class:`~repro.memory.hierarchy.MemoryHierarchy` and
:class:`~repro.frontend.branch_predictor.HybridBranchPredictor` without
touching the pipeline, which is an order of magnitude cheaper per
instruction than detailed simulation.

The warmer's state at any position is a pure function of (config, trace,
position) — the I-cache line tracker included — so positions can be
checkpointed (:mod:`repro.sampling.checkpoints`) and restored in any
later process without perturbing a single statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.common.config import ProcessorConfig
from repro.common.errors import SimulationError
from repro.frontend.branch_predictor import HybridBranchPredictor
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.prewarm import prewarm
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import Trace

__all__ = ["WarmState", "FunctionalWarmer", "slice_trace"]


@dataclass
class WarmState:
    """Snapshot of functionally-warmed state at one trace position."""

    position: int
    hierarchy: tuple
    predictor: dict
    #: I-cache line the front end is presumed to be streaming from
    #: (``None`` after a taken branch), part of the state because it
    #: decides which future instruction fetches touch the I-cache.
    line: Optional[int]


def slice_trace(trace: Trace, start: int, end: int) -> Trace:
    """A re-sequenced sub-trace covering ``[start, end)``.

    Sequence numbers are re-based to zero (the pipeline requires dense
    sequences); everything else is untouched, so the slice replays the
    exact dynamic stream of the full trace's window.
    """
    if not 0 <= start < end <= len(trace):
        raise SimulationError(
            f"slice [{start}, {end}) out of range for trace of {len(trace)}"
        )
    instructions = [
        replace(inst, seq=index)
        for index, inst in enumerate(trace.instructions[start:end])
    ]
    return Trace(
        name=f"{trace.name}[{start}:{end}]",
        instructions=instructions,
        profile_name=trace.profile_name,
        seed=trace.seed,
    )


class FunctionalWarmer:
    """Streams a trace through caches and predictor, front to back.

    ``profile`` (with the trace's generation seed) enables the standard
    pre-warm walk before position 0, exactly like a full detailed run;
    without it the caches start cold. ``checkpoints`` is an optional
    :class:`~repro.sampling.checkpoints.CheckpointStore`: exact-position
    snapshots are loaded instead of replayed and saved after every
    fast-forward leg, so later runs — same plan, or any plan sharing
    slice positions, under *any* issue scheme — resume instead of
    re-warming.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        profile: Optional[WorkloadProfile] = None,
        prewarm_seed: Optional[int] = None,
        checkpoints=None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.profile = profile
        self.prewarm_seed = prewarm_seed
        self.checkpoints = checkpoints
        self.hierarchy = MemoryHierarchy(config)
        self.predictor = HybridBranchPredictor(config.branch)
        if profile is not None and prewarm_seed is not None:
            prewarm(self.hierarchy, profile, prewarm_seed)
        self._position = 0
        self._line: Optional[int] = None
        self._line_bytes = config.icache.line_bytes

    def _advance(self, end: int) -> None:
        """Functionally execute ``[position, end)`` of the trace."""
        hierarchy = self.hierarchy
        predictor = self.predictor
        line_bytes = self._line_bytes
        line = self._line
        for inst in self.trace.instructions[self._position:end]:
            pc_line = inst.pc // line_bytes
            if pc_line != line:
                hierarchy.instruction_fetch_latency(inst.pc)
                line = pc_line
            op = inst.op
            if op.is_memory:
                hierarchy.data_access_latency(inst.mem_addr, is_store=op.is_store)
            if op.is_branch:
                predictor.predict_and_update(inst.pc, bool(inst.taken), inst.target)
                if inst.taken:
                    # A taken branch redirects the front end's line
                    # tracker, same as the detailed fetch engine.
                    line = None
        self._line = line
        self._position = end

    def state_at(self, position: int) -> WarmState:
        """Warm state at ``position``, fast-forwarding (or resuming) to it.

        Positions must be requested in non-decreasing order — the warmer
        streams forward only (slice windows come pre-sorted from the
        plan).
        """
        if position < self._position:
            raise SimulationError(
                f"cannot rewind functional warming from {self._position} "
                f"to {position}; request positions in trace order"
            )
        if position > self._position:
            restored = None
            if self.checkpoints is not None:
                restored = self.checkpoints.load(self, position)
            if restored is not None:
                self.restore(restored)
            else:
                self._advance(position)
                if self.checkpoints is not None:
                    self.checkpoints.save(self, self.snapshot())
        return self.snapshot()

    def snapshot(self) -> WarmState:
        return WarmState(
            position=self._position,
            hierarchy=self.hierarchy.state_snapshot(),
            predictor=self.predictor.state_snapshot(),
            line=self._line,
        )

    def restore(self, state: WarmState) -> None:
        self.hierarchy.restore_state(state.hierarchy)
        self.predictor.restore_state(state.predictor)
        self._line = state.line
        self._position = state.position
