"""Content-addressed checkpoints of functionally-warmed state.

Fast-forwarding is the dominant cost of a *warm-cache-miss* sampled run
(every detailed slice is short by design), and the warmed state at a
position depends only on the trace, the cache/predictor geometry and the
pre-warm inputs — **not** on the issue scheme or pipeline widths. A
checkpoint computed while sampling one design point is therefore
reusable by every other point that shares the memory-side configuration:
an exploration sweeping hundreds of schemes over one benchmark pays the
fast-forward once.

Checkpoints live next to the result cache (``<store root>/checkpoints/
<key[:2]>/<key>.json``) and follow the same rules: atomic writes, a
simulator-version tag in both the key and the payload, and *any*
unreadable, truncated, corrupt or mis-typed file reads as a miss — the
leg is simply replayed and the checkpoint rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.common.config import stable_fingerprint

__all__ = ["CheckpointStore", "checkpoint_key"]


def checkpoint_key(warmer, position: int) -> str:
    """Content address of the warmed state at ``position``.

    Includes everything the state is a function of — the simulator
    version tag *and* the sampling-sources tag (the fast-forward walk
    itself lives in ``repro.sampling``, so editing it must orphan stale
    checkpoints exactly like it orphans sampled results), the
    memory-side geometry (caches, predictor), the trace identity
    (profile, length, generation seed) and the pre-warm inputs — and
    deliberately excludes the issue scheme and pipeline widths, so
    design-space sweeps share checkpoints across points.

    The version tags are coarser than strictly necessary (an edit to
    the issue schemes or the estimator also rotates them, orphaning
    checkpoints the warm state does not depend on). That is a chosen
    trade-off: checkpoints cost one fast-forward leg to rebuild, while
    a stale one silently skews every estimate derived from it — safety
    wins over reuse here.
    """
    from repro.experiments.store import SAMPLING_VERSION_TAG, SIMULATOR_VERSION_TAG

    config = warmer.config
    trace = warmer.trace
    material = json.dumps(
        {
            "version": SIMULATOR_VERSION_TAG,
            "sampling_version": SAMPLING_VERSION_TAG,
            "icache": stable_fingerprint(config.icache),
            "dcache": stable_fingerprint(config.dcache),
            "l2cache": stable_fingerprint(config.l2cache),
            "memory": stable_fingerprint(config.memory),
            "branch": stable_fingerprint(config.branch),
            "profile": (
                stable_fingerprint(warmer.profile)
                if warmer.profile is not None
                else None
            ),
            "trace": [trace.name, len(trace), trace.seed],
            "prewarm_seed": warmer.prewarm_seed,
            "position": position,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Directory of warmed-state snapshots, content-addressed."""

    def __init__(self, root: os.PathLike) -> None:
        from repro.experiments.store import sweep_stale_tmp

        self.root = Path(root)
        # Reap temp files orphaned by SIGKILLed workers (a standalone
        # checkpoint dir is not covered by a ResultStore's init sweep);
        # best-effort and age-gated, so live writers are never raced.
        sweep_stale_tmp(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, warmer, position: int):
        """Warmed state for ``warmer`` at ``position``, or ``None``.

        Returns a :class:`~repro.sampling.ffwd.WarmState`; every failure
        mode — missing file, truncated JSON, wrong version, mis-typed
        payload — is a miss, never an exception.
        """
        from repro.experiments.store import record_cache_event

        state = self._load_validated(warmer, position)
        record_cache_event(
            "checkpoints", "hit" if state is not None else "miss"
        )
        return state

    def _load_validated(self, warmer, position: int):
        from repro.experiments.store import SIMULATOR_VERSION_TAG
        from repro.sampling.ffwd import WarmState

        try:
            with open(self._path(checkpoint_key(warmer, position)),
                      "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if not isinstance(payload, dict):
                return None
            if payload.get("version") != SIMULATOR_VERSION_TAG:
                return None
            if payload["position"] != position:
                return None
            hierarchy = payload["hierarchy"]
            icache, dcache, l2 = hierarchy  # shape check
            predictor = payload["predictor"]
            line = payload["line"]
            if line is not None:
                line = int(line)
            state = WarmState(
                position=int(payload["position"]),
                hierarchy=(icache, dcache, l2),
                predictor=dict(predictor),
                line=line,
            )
            # Validate values AND geometry against the warmer's config:
            # a parseable-but-damaged payload (shortened table, wrong
            # set count) must read as a miss here, never crash with an
            # IndexError deep inside a later simulation.
            config = warmer.config
            for level, cache_config in (
                (icache, config.icache),
                (dcache, config.dcache),
                (l2, config.l2cache),
            ):
                if len(level) != cache_config.num_sets:
                    return None
                for ways in level:
                    if len(ways) > cache_config.associativity:
                        return None
                    if not all(isinstance(tag, int) for tag in ways):
                        return None
            branch = config.branch
            for bank, entries in (
                ("gshare", branch.gshare_entries),
                ("bimodal", branch.bimodal_entries),
                ("selector", branch.selector_entries),
            ):
                values = state.predictor[bank]
                if len(values) != entries:
                    return None
                if not all(isinstance(v, int) and 0 <= v <= 3 for v in values):
                    return None
            btb = state.predictor["btb"]
            if len(btb) != branch.btb_entries // branch.btb_associativity:
                return None
            for ways in btb:
                if len(ways) > branch.btb_associativity:
                    return None
                for entry in ways:
                    if len(entry) != 2 or not all(
                        isinstance(v, int) for v in entry
                    ):
                        return None
            int(state.predictor["history"])
            return state
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None

    def save(self, warmer, state) -> Path:
        """Atomically persist ``state``; returns the file path."""
        from repro.experiments.store import (
            SIMULATOR_VERSION_TAG,
            atomic_write_json,
            record_cache_event,
        )

        key = checkpoint_key(warmer, state.position)
        payload = {
            "version": SIMULATOR_VERSION_TAG,
            "key": key,
            "position": state.position,
            "line": state.line,
            "hierarchy": [list(level) for level in state.hierarchy],
            "predictor": state.predictor,
        }
        path = atomic_write_json(self._path(key), payload)
        record_cache_event("checkpoints", "write")
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        # Cardinality only: every element contributes 1 regardless of the
        # order the filesystem yields them, so the unsorted walk cannot
        # leak host iteration order into any result.
        return sum(1 for __ in self.root.glob("*/*.json"))  # repro: allow[determinism]

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.root)!r})"
