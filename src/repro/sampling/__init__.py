"""Checkpointed statistical sampling (SMARTS-style sampled simulation).

Full detailed simulation pays cycle-accurate cost for every committed
instruction; this subsystem measures only systematically (or seeded-
randomly) chosen slices, keeps architectural state warm between them
with functional fast-forward, checkpoints the warmed state in the
content-addressed store, and reports whole-run statistics as point
estimates with explicit confidence intervals:

* :mod:`repro.sampling.plan` — the declarative :class:`SamplingPlan`
  (slice selection, lengths, confidence, error bound) and its CLI spec
  parser;
* :mod:`repro.sampling.ffwd` — functional fast-forward of caches and
  branch predictor between slices;
* :mod:`repro.sampling.checkpoints` — content-addressed warm-state
  snapshots, shared across issue schemes and plans;
* :mod:`repro.sampling.estimator` — Student-t interval estimation and
  the synthesized whole-run stats downstream consumers score from.

The execution loop itself is :func:`repro.core.engine.run_sampled`; the
experiments layer plumbs plans through
:class:`~repro.experiments.runner.ExperimentRunner` (``sampling=...``),
the campaign CLI (``--sampling``) and exploration
(:class:`~repro.explore.drivers.ExplorationSettings`).
"""

from repro.sampling.checkpoints import CheckpointStore, checkpoint_key
from repro.sampling.estimator import (
    ESTIMATED_METRICS,
    MetricEstimate,
    SampledStats,
    estimate_sampled,
    student_t_critical,
)
from repro.sampling.ffwd import FunctionalWarmer, WarmState, slice_trace
from repro.sampling.plan import (
    MODE_RANDOM,
    MODE_SYSTEMATIC,
    SUPPORTED_CONFIDENCES,
    VALID_SAMPLING_MODES,
    SamplingPlan,
    SliceWindow,
)

__all__ = [
    "SamplingPlan",
    "SliceWindow",
    "MODE_SYSTEMATIC",
    "MODE_RANDOM",
    "VALID_SAMPLING_MODES",
    "SUPPORTED_CONFIDENCES",
    "SampledStats",
    "MetricEstimate",
    "ESTIMATED_METRICS",
    "estimate_sampled",
    "student_t_critical",
    "FunctionalWarmer",
    "WarmState",
    "slice_trace",
    "CheckpointStore",
    "checkpoint_key",
]
