"""Turn per-slice measurements into error-bounded whole-run estimates.

The estimator works in the *per-instruction* domain, where equal-length
slices are identically-sized samples of the run's behaviour: per-slice
CPI (cycles per committed instruction), energy per instruction and the
derived ED / ED² products. Each metric gets a Student-t confidence
interval over the slice samples at the plan's confidence level; the
point estimates are extrapolated to the full measured region.

:class:`SampledStats` also synthesizes a whole-run
:class:`~repro.common.stats.SimulationStats` — committed instructions set
to the full measured region, cycles to ``mean CPI x region`` and every
energy event scaled by the sampling fraction — so everything downstream
(figures, energy models, exploration objectives) can score sampled runs
through the exact same code paths as full runs. The synthesis is
integer-rounded and deterministic, and the whole object round-trips
losslessly through JSON for the content-addressed result store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.errors import ConfigurationError
from repro.common.stats import SimulationStats, StatCounters
from repro.energy.model import EnergyModel
from repro.sampling.plan import SamplingPlan, SliceWindow

__all__ = [
    "ESTIMATED_METRICS",
    "MetricEstimate",
    "SampledStats",
    "student_t_critical",
    "estimate_sampled",
]

#: Metrics the estimator reports intervals for, in report order.
ESTIMATED_METRICS = ("ipc", "cpi", "energy_per_inst", "energy_delay", "energy_delay2")

#: Two-sided Student-t critical values, indexed by confidence level then
#: degrees of freedom (1..30); beyond 30 the normal quantile is used.
#: Values are the standard table to three decimals, which is far inside
#: the noise floor of the estimates themselves.
_T_TABLE: Dict[float, Sequence[float]] = {
    0.90: (6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
           1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
           1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
           1.701, 1.699, 1.697),
    0.95: (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
           2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
           2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
           2.048, 2.045, 2.042),
    0.99: (63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
           3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
           2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
           2.763, 2.756, 2.750),
}

_Z_VALUES = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}

#: Non-sampling error allowance folded into every reported interval, as
#: a fraction of the point estimate. Slices are measured in isolation —
#: warm caches and predictor, but a pipeline refilled from empty and
#: window boundaries that cut dependence chains — which biases
#: per-window rates by a few percent in a way no amount of sampling
#: variance can see. Measured across the full benchmark suite the
#: timing residual is ~2%; the energy-side residual is larger (CAM
#: wakeup and buffer energy scale with the queue backlog, which is the
#: state most sensitive to the slice boundary), hence the split.
MEASUREMENT_BIAS_ALLOWANCE = {
    "ipc": 0.03,
    "cpi": 0.03,
    "energy_per_inst": 0.07,
    "energy_delay": 0.07,
    "energy_delay2": 0.07,
}


def student_t_critical(confidence: float, degrees_of_freedom: int) -> float:
    """Two-sided Student-t critical value for the given confidence."""
    if confidence not in _T_TABLE:
        raise ConfigurationError(
            f"no t-table for confidence {confidence}; supported: "
            f"{sorted(_T_TABLE)}"
        )
    if degrees_of_freedom < 1:
        raise ConfigurationError("need at least one degree of freedom")
    table = _T_TABLE[confidence]
    if degrees_of_freedom <= len(table):
        return table[degrees_of_freedom - 1]
    return _Z_VALUES[confidence]


@dataclass(frozen=True)
class MetricEstimate:
    """Point estimate plus confidence interval for one metric."""

    mean: float
    std_error: float
    ci_low: float
    ci_high: float

    @property
    def halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def relative_halfwidth(self) -> float:
        """Interval halfwidth as a fraction of the point estimate."""
        if self.mean == 0.0:
            return 0.0
        return abs(self.halfwidth / self.mean)

    def contains(self, value: float) -> bool:
        return self.ci_low <= value <= self.ci_high

    def as_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "std_error": self.std_error,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "MetricEstimate":
        return cls(
            mean=float(payload["mean"]),
            std_error=float(payload["std_error"]),
            ci_low=float(payload["ci_low"]),
            ci_high=float(payload["ci_high"]),
        )


def _estimate(samples: Sequence[float], confidence: float) -> MetricEstimate:
    """Student-t interval over per-slice samples, in input order."""
    n = len(samples)
    mean = sum(samples) / n
    if n < 2:
        return MetricEstimate(mean=mean, std_error=0.0, ci_low=mean, ci_high=mean)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(variance / n)
    half = student_t_critical(confidence, n - 1) * sem
    return MetricEstimate(
        mean=mean, std_error=sem, ci_low=mean - half, ci_high=mean + half
    )


@dataclass
class SampledStats:
    """Everything one sampled simulation produced.

    ``stats`` is the synthesized whole-run :class:`SimulationStats` (the
    object the cache stores and every downstream consumer scores from);
    ``estimates`` maps each of :data:`ESTIMATED_METRICS` to its
    :class:`MetricEstimate`; ``slice_ipcs`` keeps the raw per-slice IPC
    samples for reports and the validation table.
    """

    plan: SamplingPlan
    stats: SimulationStats
    estimates: Dict[str, MetricEstimate]
    windows: List[SliceWindow]
    slice_ipcs: List[float]
    total_instructions: int
    detailed_instructions: int = 0
    detailed_cycles: int = 0

    @property
    def ipc(self) -> MetricEstimate:
        return self.estimates["ipc"]

    def within_bound(self, reference_ipc: float) -> bool:
        """Is ``reference_ipc`` inside the plan's relative-error bound?"""
        if reference_ipc == 0.0:
            return False
        err = abs(self.estimates["ipc"].mean - reference_ipc) / reference_ipc
        return err <= self.plan.target_relative_error

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot; inverse of :meth:`from_dict`.

        Floats survive the JSON round trip exactly (``repr``-based), so
        a cache-loaded sampled result is bit-identical to the fresh one
        — the same property the plain stats payloads rely on.
        """
        return {
            "plan": self.plan.as_dict(),
            "estimates": {
                name: est.as_dict() for name, est in self.estimates.items()
            },
            "windows": [window.as_dict() for window in self.windows],
            "slice_ipcs": list(self.slice_ipcs),
            "total_instructions": self.total_instructions,
            "detailed_instructions": self.detailed_instructions,
            "detailed_cycles": self.detailed_cycles,
        }

    @classmethod
    def from_dict(
        cls, payload: Dict[str, object], stats: SimulationStats
    ) -> "SampledStats":
        """Rebuild from a cache payload (raises on malformed input)."""
        return cls(
            plan=SamplingPlan.from_dict(payload["plan"]),
            stats=stats,
            estimates={
                str(name): MetricEstimate.from_dict(est)
                for name, est in payload["estimates"].items()
            },
            windows=[
                SliceWindow(
                    detail_start=int(w["detail_start"]),
                    measure_start=int(w["measure_start"]),
                    detail_end=int(w["detail_end"]),
                )
                for w in payload["windows"]
            ],
            slice_ipcs=[float(x) for x in payload["slice_ipcs"]],
            total_instructions=int(payload["total_instructions"]),
            detailed_instructions=int(payload["detailed_instructions"]),
            detailed_cycles=int(payload["detailed_cycles"]),
        )


def _finite_population(
    estimate: MetricEstimate,
    measured_total: float,
    measured_insts: int,
    total_insts: int,
) -> MetricEstimate:
    """Region-level per-instruction estimate with the measured part exact.

    The slices *measured* ``measured_insts`` of the region's
    ``total_insts`` instructions exactly — ``measured_total`` is their
    summed contribution (cycles, picojoules, ...). Only the unmeasured
    remainder needs the per-slice mean rate, so the region estimate is

        (measured_total + mean_rate x missed) / total

    and the uncertainty scales with the *missed fraction*: a plan
    covering 2/3 of the region has 1/3 of the naive extrapolation
    error. This is the classic finite-population estimator, and it is
    what lets short-region sampled runs hit tight error bounds despite
    violently heterogeneous slice behaviour.
    """
    missed = total_insts - measured_insts
    mean = (measured_total + estimate.mean * missed) / total_insts
    if missed <= 0:
        return MetricEstimate(mean=mean, std_error=0.0, ci_low=mean, ci_high=mean)
    # Only the unmeasured remainder is uncertain. Its mean is predicted
    # by the k-window sample mean, and the remainder itself holds
    # roughly m = missed / slice-length windows' worth of instructions,
    # so the prediction error variance is sigma^2 (1/k + 1/m):
    #   SE(region) = (1 - f) * SE(window-mean) * sqrt(1 + k/m)
    # — the classic two-sample finite-population form. High-coverage
    # plans (f near 1) get tight honest intervals; sparse plans degrade
    # gracefully toward the plain t-interval.
    scale = (missed / total_insts) * math.sqrt(1.0 + measured_insts / missed)
    sem = estimate.std_error * scale
    half = (estimate.ci_high - estimate.ci_low) / 2.0 * scale
    return MetricEstimate(
        mean=mean, std_error=sem, ci_low=mean - half, ci_high=mean + half
    )


def _product(a: MetricEstimate, b: MetricEstimate) -> MetricEstimate:
    """First-order error propagation for a product of two estimates."""
    mean = a.mean * b.mean
    relative = a.relative_halfwidth + b.relative_halfwidth
    half = abs(mean) * relative
    sem = abs(mean) * (
        (abs(a.std_error / a.mean) if a.mean else 0.0)
        + (abs(b.std_error / b.mean) if b.mean else 0.0)
    )
    return MetricEstimate(
        mean=mean, std_error=sem, ci_low=mean - half, ci_high=mean + half
    )


def _widen(name: str, estimate: MetricEstimate) -> MetricEstimate:
    """Fold the non-sampling bias allowance into a reported interval."""
    pad = MEASUREMENT_BIAS_ALLOWANCE[name] * abs(estimate.mean)
    return MetricEstimate(
        mean=estimate.mean,
        std_error=estimate.std_error,
        ci_low=estimate.ci_low - pad,
        ci_high=estimate.ci_high + pad,
    )


def _invert_cpi(cpi: MetricEstimate) -> MetricEstimate:
    """IPC estimate as the reciprocal of the (region) CPI estimate.

    CPI is the extensive quantity (slice cycles accumulate into run
    cycles), so it is the coherent estimation basis — the synthesized
    whole-run stats use it too, which keeps the reported IPC interval
    and the point estimate every downstream consumer sees in agreement.
    The interval maps through the (monotone) reciprocal; the standard
    error via the delta method.
    """
    mean = 1.0 / cpi.mean
    low = 1.0 / cpi.ci_high if cpi.ci_high > 0 else mean
    high = 1.0 / max(cpi.ci_low, 1e-12)
    return MetricEstimate(
        mean=mean,
        std_error=cpi.std_error / (cpi.mean * cpi.mean),
        ci_low=low,
        ci_high=high,
    )


def _synthesize_stats(
    slices: Sequence[SimulationStats], region_cpi: float, total_instructions: int
) -> SimulationStats:
    """Whole-run stats extrapolated from the slice measurements.

    Scalars and events are summed across slices and scaled by the
    sampling fraction — algebraically identical to keeping the measured
    sums exact and filling the unmeasured remainder at the measured
    per-instruction rate (the finite-population form). ``cycles`` comes
    from the region CPI estimate so the synthetic IPC *is* the
    estimator's point estimate up to integer rounding.
    """
    measured = sum(s.committed_instructions for s in slices)
    factor = total_instructions / measured
    cycles = max(1, int(round(region_cpi * total_instructions)))
    events = StatCounters()
    for slice_stats in slices:
        events.merge(slice_stats.events)
    scaled = StatCounters()
    for name, value in events:
        scaled.add(name, int(round(value * factor)))
    # Keep the bookkeeping counters consistent with the scalar fields
    # (the energy model reads them for clocking terms).
    scaled_dict = scaled.as_dict()
    scaled_dict["cycles"] = cycles
    scaled_dict["committed"] = total_instructions
    return SimulationStats(
        cycles=cycles,
        committed_instructions=total_instructions,
        fetched_instructions=int(
            round(sum(s.fetched_instructions for s in slices) * factor)
        ),
        dispatch_stall_cycles=int(
            round(sum(s.dispatch_stall_cycles for s in slices) * factor)
        ),
        branch_predictions=int(
            round(sum(s.branch_predictions for s in slices) * factor)
        ),
        branch_mispredictions=int(
            round(sum(s.branch_mispredictions for s in slices) * factor)
        ),
        events=StatCounters.from_dict(scaled_dict),
    )


def estimate_sampled(
    plan: SamplingPlan,
    config,
    windows: Sequence[SliceWindow],
    slices: Sequence[SimulationStats],
    total_instructions: int,
    detailed_cycles: int = 0,
) -> SampledStats:
    """Build :class:`SampledStats` from per-slice measurements.

    ``config`` is the :class:`~repro.common.config.ProcessorConfig` the
    slices ran under (it prices the energy events); ``total_instructions``
    is the size of the full measured region the estimates extrapolate to.

    The plan is validated here as well as at plan construction: a
    degenerate plan built directly (a single slice has zero degrees of
    freedom for the t-interval; an unsupported confidence level has no
    critical values) must fail with a clear
    :class:`~repro.common.errors.ConfigurationError` at the estimator
    boundary, never as an IndexError or ZeroDivisionError deep in the
    SEM arithmetic.
    """
    plan.validate()
    if not slices:
        raise ConfigurationError("sampled run produced no slices")
    if len(slices) != len(windows):
        raise ConfigurationError("one window per slice required")
    model = EnergyModel(config)
    cpis: List[float] = []
    ipcs: List[float] = []
    epis: List[float] = []
    measured_insts = 0
    measured_cycles = 0
    measured_energy = 0.0
    for slice_stats in slices:
        committed = slice_stats.committed_instructions
        if committed <= 0 or slice_stats.cycles <= 0:
            raise ConfigurationError(
                "a measurement slice committed no instructions; the plan's "
                "slice length is too small for this workload"
            )
        energy = model.energy_pj(slice_stats.events.as_dict())
        measured_insts += committed
        measured_cycles += slice_stats.cycles
        measured_energy += energy
        cpis.append(slice_stats.cycles / committed)
        ipcs.append(committed / slice_stats.cycles)
        epis.append(energy / committed)
    if measured_insts > total_instructions:
        raise ConfigurationError(
            "slices measured more instructions than the region holds"
        )
    confidence = plan.confidence
    # Per-slice (window) estimates carry the sample variance; the
    # finite-population step anchors them on the exactly-measured sums
    # so only the unmeasured remainder is extrapolated. The derived
    # ED / ED² products combine the region estimates by first-order
    # error propagation.
    cpi_estimate = _finite_population(
        _estimate(cpis, confidence),
        measured_cycles, measured_insts, total_instructions,
    )
    epi_estimate = _finite_population(
        _estimate(epis, confidence),
        measured_energy, measured_insts, total_instructions,
    )
    ed_estimate = _product(epi_estimate, cpi_estimate)
    estimates = {
        name: _widen(name, estimate)
        for name, estimate in (
            ("ipc", _invert_cpi(cpi_estimate)),
            ("cpi", cpi_estimate),
            ("energy_per_inst", epi_estimate),
            ("energy_delay", ed_estimate),
            ("energy_delay2", _product(ed_estimate, cpi_estimate)),
        )
    }
    synthetic = _synthesize_stats(
        slices, estimates["cpi"].mean, total_instructions
    )
    return SampledStats(
        plan=plan,
        stats=synthetic,
        estimates=estimates,
        windows=list(windows),
        slice_ipcs=ipcs,
        total_instructions=total_instructions,
        detailed_instructions=sum(
            window.detail_end - window.detail_start for window in windows
        ),
        detailed_cycles=detailed_cycles,
    )
