"""Declarative sampling plans for SMARTS-style sampled simulation.

A :class:`SamplingPlan` says *which* committed-instruction slices of a
run are simulated in detail and how the per-slice measurements are
turned into error-bounded whole-run estimates:

* ``mode`` — ``"systematic"`` places one slice at the start of each of
  ``num_slices`` equal strata over the measured region (the SMARTS
  default); ``"random"`` draws one seeded-uniform start per stratum
  (stratified random sampling, still deterministic in ``seed``).
* ``slice_instructions`` — committed instructions measured in detail per
  slice.
* ``warmup_instructions`` — committed instructions simulated in detail
  *before* each slice and excluded from its statistics (pipeline and
  queue warm-up on top of the functionally warmed caches/predictor).
* ``confidence`` — the two-sided confidence level of the reported
  intervals (Student's t over the per-slice samples).
* ``target_relative_error`` — the relative-error bound the plan is
  designed for; validation modes and the CI gate check sampled-vs-full
  error against it.

Plans are frozen, fingerprinted dataclasses: a plan hashes into the
content-addressed result-cache key exactly like the processor config and
the run scale, so sampled and full results can never alias and a warm
rerun of a sampled campaign replays from cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.config import _Fingerprinted
from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng

__all__ = [
    "MODE_SYSTEMATIC",
    "MODE_RANDOM",
    "VALID_SAMPLING_MODES",
    "SUPPORTED_CONFIDENCES",
    "SliceWindow",
    "SamplingPlan",
]

MODE_SYSTEMATIC = "systematic"
MODE_RANDOM = "random"
VALID_SAMPLING_MODES = (MODE_SYSTEMATIC, MODE_RANDOM)

#: Confidence levels the estimator has Student-t critical values for.
SUPPORTED_CONFIDENCES = (0.90, 0.95, 0.99)


@dataclass(frozen=True)
class SliceWindow:
    """One detailed-measurement window of a sampled run.

    ``detail_start`` is where detailed simulation begins (the functional
    fast-forward stops there), ``measure_start`` where measurement
    begins (``measure_start - detail_start`` committed instructions are
    detailed warm-up, excluded from statistics) and ``detail_end`` where
    the slice stops. All positions are committed-instruction indices
    into the full trace.
    """

    detail_start: int
    measure_start: int
    detail_end: int

    @property
    def warmup(self) -> int:
        return self.measure_start - self.detail_start

    @property
    def measured(self) -> int:
        return self.detail_end - self.measure_start

    def as_dict(self) -> Dict[str, int]:
        return {
            "detail_start": self.detail_start,
            "measure_start": self.measure_start,
            "detail_end": self.detail_end,
        }


@dataclass(frozen=True)
class SamplingPlan(_Fingerprinted):
    """Everything that determines a sampled run (and its cache key)."""

    mode: str = MODE_SYSTEMATIC
    num_slices: int = 8
    slice_instructions: int = 200
    warmup_instructions: int = 150
    confidence: float = 0.95
    seed: int = 17
    target_relative_error: float = 0.10

    def validate(self) -> None:
        if self.mode not in VALID_SAMPLING_MODES:
            raise ConfigurationError(
                f"unknown sampling mode {self.mode!r}; valid: {VALID_SAMPLING_MODES}"
            )
        if self.num_slices < 2:
            raise ConfigurationError(
                "need at least two slices to estimate a confidence interval"
            )
        if self.slice_instructions < 1:
            raise ConfigurationError("slices must measure at least one instruction")
        if self.warmup_instructions < 0:
            raise ConfigurationError("per-slice warm-up cannot be negative")
        if self.confidence not in SUPPORTED_CONFIDENCES:
            raise ConfigurationError(
                f"confidence must be one of {SUPPORTED_CONFIDENCES}, "
                f"got {self.confidence}"
            )
        if not 0.0 < self.target_relative_error < 1.0:
            raise ConfigurationError(
                "target_relative_error must be a fraction in (0, 1)"
            )

    @property
    def detailed_instructions(self) -> int:
        """Committed instructions each sampled run simulates in detail."""
        return self.num_slices * (self.slice_instructions + self.warmup_instructions)

    def slice_windows(self, measure_begin: int, measure_end: int) -> List[SliceWindow]:
        """Detailed windows over the measured region, in trace order.

        The region ``[measure_begin, measure_end)`` (the full run's
        post-warm-up portion) is split into ``num_slices`` equal strata;
        each stratum contributes one slice. Raises
        :class:`ConfigurationError` when the plan measures more than the
        region holds — sampling something larger than the full run is a
        configuration mistake, not an estimate.
        """
        self.validate()
        region = measure_end - measure_begin
        if region < self.num_slices * self.slice_instructions:
            raise ConfigurationError(
                f"sampling plan measures {self.num_slices}x"
                f"{self.slice_instructions} instructions but the measured "
                f"region holds only {region}; shrink the plan or use a "
                "full simulation"
            )
        stride = region // self.num_slices
        rng = make_rng(self.seed, "sampling:starts")
        windows: List[SliceWindow] = []
        for index in range(self.num_slices):
            stratum = measure_begin + index * stride
            if self.mode == MODE_RANDOM:
                slack = stride - self.slice_instructions
                start = stratum + (rng.randrange(slack + 1) if slack > 0 else 0)
            else:
                start = stratum
            start = min(start, measure_end - self.slice_instructions)
            detail_start = max(0, start - self.warmup_instructions)
            windows.append(
                SliceWindow(
                    detail_start=detail_start,
                    measure_start=start,
                    detail_end=start + self.slice_instructions,
                )
            )
        return windows

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering (artifacts, cache payloads)."""
        return {
            "mode": self.mode,
            "num_slices": self.num_slices,
            "slice_instructions": self.slice_instructions,
            "warmup_instructions": self.warmup_instructions,
            "confidence": self.confidence,
            "seed": self.seed,
            "target_relative_error": self.target_relative_error,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SamplingPlan":
        """Inverse of :meth:`as_dict`; validates the result."""
        plan = cls(
            mode=str(payload["mode"]),
            num_slices=int(payload["num_slices"]),
            slice_instructions=int(payload["slice_instructions"]),
            warmup_instructions=int(payload["warmup_instructions"]),
            confidence=float(payload["confidence"]),
            seed=int(payload["seed"]),
            target_relative_error=float(payload["target_relative_error"]),
        )
        plan.validate()
        return plan

    _SPEC_KEYS = {
        "mode": ("mode", str),
        "slices": ("num_slices", int),
        "slice": ("slice_instructions", int),
        "warmup": ("warmup_instructions", int),
        "confidence": ("confidence", float),
        "seed": ("seed", int),
        "error": ("target_relative_error", float),
    }

    @classmethod
    def from_spec(cls, spec: str) -> "SamplingPlan":
        """Parse a CLI plan spec like ``slices=8,slice=150,warmup=75``.

        Keys: ``mode`` (systematic|random), ``slices``, ``slice``,
        ``warmup``, ``confidence``, ``seed``, ``error``. Unset keys keep
        the plan defaults; an empty spec is the default plan.
        """
        kwargs: Dict[str, object] = {}
        for part in filter(None, (piece.strip() for piece in spec.split(","))):
            if "=" not in part:
                raise ConfigurationError(
                    f"bad sampling spec entry {part!r}: expected key=value"
                )
            key, __, raw = part.partition("=")
            key = key.strip()
            if key not in cls._SPEC_KEYS:
                raise ConfigurationError(
                    f"unknown sampling spec key {key!r}; known: "
                    f"{sorted(cls._SPEC_KEYS)}"
                )
            field_name, cast = cls._SPEC_KEYS[key]
            try:
                kwargs[field_name] = cast(raw.strip())
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad sampling spec value for {key!r}: {raw!r}"
                ) from exc
        plan = cls(**kwargs)
        plan.validate()
        return plan
