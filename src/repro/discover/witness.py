"""Content-addressed witness corpus: minimized, replayable failures.

A *witness* is the JSON record of one minimized oracle violation —
everything needed to reproduce it: the oracle name, the design-space
assignment, the run scale, and the fault set that was armed when it was
found. Witnesses are content-addressed by :func:`witness_key` over
exactly those reproduction inputs — deliberately *excluding* the
simulator version tag and the diagnostic detail, so a witness keeps its
identity across simulator fixes (rediscovering the same bug lands on
the same file; a fixed bug's witness replays clean instead of
vanishing).

The corpus lives under ``<result-store root>/witnesses/<key[:2]>/
<key>.json``, next to the result cache whose runs produced it. Saving a
witness there *is* regression registration: :func:`load_corpus` +
:func:`replay_witness` re-check every recorded failure through the
normal cached runner stack, so the test suite and CI replay the corpus
without re-running discovery.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List

from repro.common import faults
from repro.experiments.runner import RunScale
from repro.explore.artifacts import write_json
from repro.explore.space import default_space

__all__ = [
    "WITNESS_FORMAT",
    "witness_key",
    "build_witness",
    "save_witness",
    "load_corpus",
    "replay_witness",
]

WITNESS_FORMAT = 1


def witness_key(payload: Dict[str, object]) -> str:
    """Content address over a witness's reproduction inputs.

    Hashes (oracle, assignment, scale, faults) only — the fields that
    determine what gets re-run on replay. Diagnostic detail and the
    simulator version are provenance, not identity (see module
    docstring).
    """
    material = {
        "oracle": payload["oracle"],
        "assignment": payload["assignment"],
        "scale": payload["scale"],
        "faults": payload["faults"],
    }
    return hashlib.sha256(
        json.dumps(material, sort_keys=True).encode("utf-8")
    ).hexdigest()


def build_witness(
    oracle_name: str,
    point,
    scale: RunScale,
    detail,
    discovered: Dict[str, object],
    generalization: List[Dict[str, object]],
    minimization: Dict[str, object],
) -> Dict[str, object]:
    """Assemble the JSON witness record for one minimized finding.

    Deterministic for a fixed campaign configuration — no wall-clock,
    no cache telemetry — so warm reruns emit byte-identical artifacts.
    """
    from repro.experiments.store import SIMULATOR_VERSION_TAG

    payload: Dict[str, object] = {
        "format": WITNESS_FORMAT,
        "oracle": oracle_name,
        "assignment": dict(point.assignment),
        "benchmark": point.benchmark,
        "label": point.label,
        "point_id": point.point_id,
        "scale": {
            "num_instructions": scale.num_instructions,
            "warmup_instructions": scale.warmup_instructions,
            "seed": scale.seed,
        },
        "faults": list(faults.active_faults()),
        "detail": list(detail),
        "discovered": discovered,
        "generalization": generalization,
        "minimization": minimization,
        # Provenance only — excluded from the key on purpose.
        "simulator_version": SIMULATOR_VERSION_TAG,
    }
    payload["witness_key"] = witness_key(payload)
    return payload


def _corpus_dir(root: os.PathLike) -> Path:
    return Path(root) / "witnesses"


def save_witness(witness: Dict[str, object], root: os.PathLike) -> Path:
    """Persist one witness into the corpus under ``root`` (store root)."""
    key = witness["witness_key"]
    return write_json(_corpus_dir(root) / key[:2] / f"{key}.json", witness)


def load_corpus(root: os.PathLike) -> List[Dict[str, object]]:
    """Every witness under ``root``, ordered by key.

    Unreadable or mis-shaped files are skipped (corpus hygiene mirrors
    the result store: damage is never fatal, only invisible).
    """
    corpus: List[Dict[str, object]] = []
    directory = _corpus_dir(root)
    if not directory.is_dir():
        return corpus
    for path in sorted(directory.glob("*/*.json")):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                witness = json.load(fh)
        except (OSError, ValueError):
            continue
        if (
            isinstance(witness, dict)
            and witness.get("format") == WITNESS_FORMAT
            and isinstance(witness.get("oracle"), str)
        ):
            corpus.append(witness)
    return corpus


def replay_witness(
    witness: Dict[str, object],
    store=False,
    workers: int = 0,
) -> List[str]:
    """Re-check one witness; the violation detail, or ``[]`` if it passes.

    Rebuilds the design point from the recorded assignment, re-runs the
    recorded oracle at the recorded scale through a fresh
    :class:`~repro.discover.campaign.DiscoveryContext` (``store`` as in
    :class:`~repro.experiments.runner.ExperimentRunner`: a
    :class:`~repro.experiments.store.ResultStore`, ``False`` for no disk
    cache), and returns the failure detail. The caller owns the fault
    state: replaying with the witness's recorded faults armed must fail
    until the underlying bug is fixed; replaying disarmed must pass.
    """
    from repro.discover.campaign import DiscoveryContext
    from repro.discover.oracles import ORACLES

    oracle = ORACLES[witness["oracle"]]
    space = default_space([witness["benchmark"]])
    point = space.build_point(witness["assignment"])
    raw = witness["scale"]
    scale = RunScale(
        num_instructions=int(raw["num_instructions"]),
        warmup_instructions=int(raw["warmup_instructions"]),
        seed=int(raw["seed"]),
    )
    ctx = DiscoveryContext(store=store, workers=workers)
    findings = oracle.run(ctx, [point], scale)
    return list(findings[0].detail) if findings else []
