"""The discovery campaign: sample, check, generalize, minimize.

One campaign runs ``rounds`` rounds. Each round draws ``per_round``
random assignments from the discovery design space (seeded, so a fixed
configuration always explores the same points), expands them to unique
design points, and runs every selected oracle over them through one
shared :class:`DiscoveryContext` — all simulations flow through the
normal memory/disk cache stack, so a warm rerun of an identical
campaign replays with **zero** simulations and byte-identical
artifacts.

Every *new* finding (one per (oracle, point)) is then investigated:

* **generalize** — perturb one design dimension at a time
  (:meth:`~repro.explore.space.DesignSpace.neighborhood`) and re-check
  each variant, mapping how far the failure extends;
* **minimize** — bisect the trace length down toward the 500-instruction
  floor (the scale knob is the witness's dominant cost), keeping the
  smallest still-failing scale, then walk each ordinal config dimension
  downward while the failure persists (config shrinking);
* **record** — emit a content-addressed witness
  (:mod:`repro.discover.witness`) into the corpus under the result
  store, which doubles as regression registration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.discover.oracles import ORACLES, Finding, Oracle
from repro.discover.witness import build_witness, save_witness
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.explore.space import DesignSpace, default_space

__all__ = [
    "DISCOVERY_BENCHMARKS",
    "MIN_SCALE",
    "DiscoveryContext",
    "DiscoverySettings",
    "DiscoveryReport",
    "discovery_space",
    "run_discovery",
]

#: Workload axis of the discovery space: the SPEC-profiled traces plus
#: the synthetic stress generators, mixing memory-bound workloads (long
#: quiescent stretches exercise the skipping kernel's idle fast path)
#: with compute-bound ones (deep queue pressure exercises selection).
DISCOVERY_BENCHMARKS = (
    "gzip",
    "mcf",
    "twolf",
    "art",
    "ammp",
    "ptrchase",
    "streampump",
    "phasemix",
)

#: Smallest trace the simulator accepts (RunScale's validated floor).
MIN_SCALE = 500

#: Single-dimension probes per finding during generalization.
_GENERALIZE_LIMIT = 6

#: Bisection stops when the bracket is this fraction of the discovery
#: scale (never below 50 instructions) — enough to show the witness
#: shrank, cheap enough to run per finding.
_BISECT_PROBE_CAP = 12

#: Config-shrinking probes per finding.
_SHRINK_PROBE_CAP = 16

#: Dimensions config shrinking walks downward. Categorical dimensions
#: (kind, benchmark, max_chains) are identity, not size — changing them
#: would be a different witness, not a smaller one.
_SHRINK_DIMENSIONS = (
    "int_queues",
    "int_entries",
    "fp_queues",
    "fp_entries",
    "issue_width",
    "rob_entries",
    "distributed_fus",
)


def discovery_space() -> DesignSpace:
    """The default search space: full design axes x discovery workloads."""
    return default_space(DISCOVERY_BENCHMARKS)


def _scale(num_instructions: int, seed: int) -> RunScale:
    """Discovery run scale: half the trace warms up, half is measured."""
    return RunScale(
        num_instructions=num_instructions,
        warmup_instructions=num_instructions // 2,
        seed=seed,
    )


class DiscoveryContext:
    """Shared runner pool: one cached runner per (scale, leg) variant.

    Every oracle leg — a kernel, an execution mode, a sampling plan, a
    cache-key salt — gets its own :class:`ExperimentRunner`, but all of
    them share one disk store, so re-checks during generalization and
    minimization reuse everything already simulated and warm campaign
    reruns never simulate at all.
    """

    def __init__(self, store=False, workers: int = 0) -> None:
        self.store = store
        self.workers = workers
        self._runners: Dict[tuple, ExperimentRunner] = {}

    def runner(
        self,
        scale: RunScale,
        kernel: Optional[str] = None,
        salt: Optional[str] = None,
        sampling=None,
    ) -> ExperimentRunner:
        key = (scale, kernel, salt, sampling)
        if key not in self._runners:
            self._runners[key] = ExperimentRunner(
                scale=scale,
                store=self.store,
                workers=self.workers,
                kernel=kernel,
                sampling=sampling,
                key_salt=salt,
            )
        return self._runners[key]

    def cache_stats(self) -> Dict[str, int]:
        """Telemetry summed across every runner this context created."""
        totals = {"memory_hits": 0, "disk_hits": 0, "simulations": 0}
        for runner in self._runners.values():
            for name, value in runner.cache_stats().items():
                totals[name] += value
        return totals

    def simulations(self) -> int:
        return self.cache_stats()["simulations"]


@dataclass(frozen=True)
class DiscoverySettings:
    """One campaign's complete configuration (all of it in the artifact)."""

    rounds: int = 2
    per_round: int = 6
    scale: int = 1500
    seed: int = 7
    trace_seed: int = 11
    oracles: Tuple[str, ...] = tuple(ORACLES)

    def validate(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("need at least one discovery round")
        if self.per_round < 1:
            raise ConfigurationError("need at least one point per round")
        _scale(self.scale, self.trace_seed).validate()

    def as_dict(self) -> Dict[str, object]:
        return {
            "rounds": self.rounds,
            "per_round": self.per_round,
            "scale": self.scale,
            "seed": self.seed,
            "trace_seed": self.trace_seed,
            "oracles": list(self.oracles),
        }


@dataclass
class DiscoveryReport:
    """Everything one campaign produced.

    ``witnesses`` are the minimized findings (already persisted to the
    corpus when a store was given); ``payload()`` is the deterministic
    findings artifact — settings, per-round log and witnesses, but no
    telemetry or timing, so cold and warm runs of one campaign write
    byte-identical files. Telemetry lives on ``context`` for stdout.
    """

    settings: DiscoverySettings
    witnesses: List[Dict[str, object]] = field(default_factory=list)
    rounds_log: List[Dict[str, int]] = field(default_factory=list)
    context: Optional[DiscoveryContext] = None

    def payload(self) -> Dict[str, object]:
        return {
            "subsystem": "repro.discover",
            "settings": self.settings.as_dict(),
            "rounds": self.rounds_log,
            "findings": self.witnesses,
        }


def _generalize(
    finding: Finding,
    space: DesignSpace,
    ctx: DiscoveryContext,
    oracle: Oracle,
    seed: int,
) -> List[Dict[str, object]]:
    """Re-check single-dimension perturbations of a failing point."""
    rng = make_rng(
        seed, f"discover.generalize.{finding.oracle}.{finding.point.point_id}"
    )
    original = finding.point.assignment_dict
    records: List[Dict[str, object]] = []
    for variant in space.neighborhood(original, _GENERALIZE_LIMIT, rng):
        try:
            point = space.build_point(variant)
        except ConfigurationError:
            continue
        if point.point_id == finding.point.point_id:
            continue  # the perturbation repaired back onto the witness
        changed = {
            name: value
            for name, value in variant.items()
            if original.get(name) != value
        }
        records.append(
            {
                "changed": changed,
                "still_fails": bool(oracle.run(ctx, [point], finding.scale)),
            }
        )
    return records


def _minimize_scale(
    finding: Finding, ctx: DiscoveryContext, oracle: Oracle
) -> Tuple[RunScale, Tuple[str, ...], int]:
    """Bisect the trace length; smallest still-failing scale found.

    Invariant: ``hi`` always fails (it starts at the discovery scale,
    where the finding was observed). ``lo`` starts just under the
    simulator's 500-instruction floor, standing in for "too small to
    run"; the bracket halves until it is within the granularity or the
    probe budget runs out.
    """
    hi = finding.scale.num_instructions
    lo = MIN_SCALE - 1
    granularity = max(50, hi // 20)
    best_scale = finding.scale
    best_detail = finding.detail
    probes = 0
    while hi - lo > granularity and probes < _BISECT_PROBE_CAP:
        mid = (lo + hi) // 2
        if mid < MIN_SCALE:
            break
        trial = _scale(mid, finding.scale.seed)
        failures = oracle.run(ctx, [finding.point], trial)
        probes += 1
        if failures:
            hi = mid
            best_scale = trial
            best_detail = failures[0].detail
        else:
            lo = mid
    return best_scale, best_detail, probes


def _shrink_config(
    finding: Finding,
    space: DesignSpace,
    ctx: DiscoveryContext,
    oracle: Oracle,
    scale: RunScale,
    detail: Tuple[str, ...],
):
    """Walk size dimensions downward while the failure persists."""
    assignment = dict(finding.point.assignment_dict)
    point = finding.point
    steps: List[Dict[str, object]] = []
    probes = 0
    for dimension in space.dimensions:
        name = dimension.name
        if name not in _SHRINK_DIMENSIONS or name not in assignment:
            continue
        while probes < _SHRINK_PROBE_CAP:
            current = assignment[name]
            if name == "distributed_fus":
                if current is not True:
                    break
                candidate = False
            else:
                try:
                    index = dimension.values.index(current)
                except ValueError:
                    break  # repaired value outside the declared domain
                if index == 0:
                    break
                candidate = dimension.values[index - 1]
            variant = dict(assignment)
            variant[name] = candidate
            try:
                smaller = space.build_point(variant)
            except ConfigurationError:
                break
            if smaller.point_id == point.point_id:
                break  # repair collapsed the step; no progress possible
            failures = oracle.run(ctx, [smaller], scale)
            probes += 1
            if not failures:
                break
            assignment = variant
            point = smaller
            detail = failures[0].detail
            steps.append({"dimension": name, "from": current, "to": candidate})
    return point, detail, steps, probes


def _investigate(
    finding: Finding,
    space: DesignSpace,
    ctx: DiscoveryContext,
    settings: DiscoverySettings,
    round_index: int,
) -> Dict[str, object]:
    """Generalize + minimize one finding into its witness record."""
    oracle = ORACLES[finding.oracle]
    generalization = _generalize(finding, space, ctx, oracle, settings.seed)
    scale, detail, bisect_probes = _minimize_scale(finding, ctx, oracle)
    point, detail, shrink_steps, shrink_probes = _shrink_config(
        finding, space, ctx, oracle, scale, detail
    )
    return build_witness(
        finding.oracle,
        point,
        scale,
        detail,
        discovered={
            "round": round_index + 1,
            "scale": finding.scale.num_instructions,
            "point_id": finding.point.point_id,
        },
        generalization=generalization,
        minimization={
            "scale": scale.num_instructions,
            "bisection_probes": bisect_probes,
            "shrink_probes": shrink_probes,
            "shrunk": shrink_steps,
        },
    )


def run_discovery(
    settings: DiscoverySettings,
    store=False,
    space: Optional[DesignSpace] = None,
    oracles: Optional[Sequence[Oracle]] = None,
    workers: int = 0,
    progress=None,
) -> DiscoveryReport:
    """Run one campaign; returns the report (witnesses already saved).

    ``store`` is the shared disk layer (a
    :class:`~repro.experiments.store.ResultStore` or ``False`` for
    none); witnesses are persisted into its corpus when present.
    ``space``/``oracles`` default to the discovery space and the
    settings' oracle selection — tests narrow both to keep budgets
    small. ``workers`` sizes the parallel-oracle pool and batched runs;
    it is a wall-clock knob only and never reaches the artifact.
    ``progress`` is an optional ``str -> None`` callback (the CLI
    prints; the library stays silent).
    """
    settings.validate()
    if space is None:
        space = discovery_space()
    if oracles is None:
        oracles = [ORACLES[name] for name in settings.oracles]
    say = progress if progress is not None else (lambda message: None)
    ctx = DiscoveryContext(store=store, workers=workers)
    report = DiscoveryReport(settings=settings, context=ctx)
    scale = _scale(settings.scale, settings.trace_seed)
    seen = set()
    witness_keys = set()
    for round_index in range(settings.rounds):
        assignments = space.random_assignments(
            settings.per_round, seed=settings.seed + 1009 * round_index
        )
        points = space.expand(assignments)
        fresh: List[Finding] = []
        for oracle in oracles:
            for finding in oracle.run(ctx, points, scale):
                key = (finding.oracle, finding.point.point_id)
                if key not in seen:
                    seen.add(key)
                    fresh.append(finding)
        say(
            f"round {round_index + 1}: {len(points)} point(s), "
            f"{len(fresh)} new finding(s)"
        )
        for finding in fresh:
            witness = _investigate(finding, space, ctx, settings, round_index)
            if witness["witness_key"] in witness_keys:
                # Distinct discovered points can minimize onto one
                # witness — content addressing collapses them.
                continue
            witness_keys.add(witness["witness_key"])
            if store:
                save_witness(witness, store.root)
            report.witnesses.append(witness)
            say(
                f"  {witness['oracle']} @ {witness['label']}: minimized to "
                f"{witness['minimization']['scale']} instructions "
                f"(witness {witness['witness_key'][:12]})"
            )
        report.rounds_log.append(
            {
                "round": round_index + 1,
                "points": len(points),
                "new_findings": len(fresh),
            }
        )
    return report
