"""CLI for divergence-discovery campaigns: ``python -m repro.discover``.

Runs a budgeted campaign over the discovery design space, prints a
per-round log plus cache telemetry, persists the minimized witness
corpus under the result store, and (with ``--out``) writes the
deterministic ``findings.json`` artifact. Exit status is 1 when the
campaign found divergences and 0 on a clean sweep, so CI can gate on
it directly.

``--inject`` arms a named contract fault (:mod:`repro.common.faults`)
for the duration of the run — the self-test mode: a campaign that
cannot find a deliberately injected bug is not finding real ones
either. Faulty results are cache-keyed separately from clean ones, so
injection never poisons the shared cache.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.common import faults
from repro.common.errors import ConfigurationError
from repro.discover.campaign import DiscoverySettings, run_discovery
from repro.discover.oracles import ORACLES, resolve_oracles
from repro.experiments.store import ResultStore, default_cache_dir
from repro.explore.artifacts import write_json

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.discover",
        description=(
            "Hunt simulator bugs with differential and invariant oracles; "
            "generalize and minimize every divergence into a replayable "
            "witness."
        ),
    )
    parser.add_argument(
        "--rounds", type=int, default=2, help="sampling rounds (default 2)"
    )
    parser.add_argument(
        "--per-round",
        type=int,
        default=6,
        help="random design points sampled per round (default 6)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1500,
        help="instructions per discovery run (default 1500; half warms up)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="campaign sampling seed"
    )
    parser.add_argument(
        "--oracles",
        default=None,
        metavar="A,B",
        help=f"comma-separated oracle filter (default all: {','.join(ORACLES)})",
    )
    parser.add_argument(
        "--list-oracles",
        action="store_true",
        help="print the oracle catalog and exit",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for batched runs (0 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result-store root (default: the shared campaign cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="run without a disk cache (witness corpus is not persisted)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write the findings.json artifact into DIR",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help=(
            "write observability sidecar files (Chrome trace_event JSON, "
            "NDJSON event log, Prometheus metrics snapshot) under DIR; "
            "artifacts stay byte-identical (equivalent: REPRO_TRACE=DIR)"
        ),
    )
    parser.add_argument(
        "--inject",
        default=None,
        metavar="FAULT",
        help=(
            "arm a named contract fault for this run (self-test); known: "
            f"{', '.join(sorted(faults.KNOWN_FAULTS))}"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_oracles:
        print("Discovery oracles:")
        for name, oracle in ORACLES.items():
            print(f"  {name}: {oracle.description}")
        return 0
    if args.no_cache and args.cache_dir:
        parser.error("--no-cache and --cache-dir are mutually exclusive")
    try:
        oracles = resolve_oracles(args.oracles)
        settings = DiscoverySettings(
            rounds=args.rounds,
            per_round=args.per_round,
            scale=args.scale,
            seed=args.seed,
            oracles=tuple(oracle.name for oracle in oracles),
        )
        settings.validate()
    except (ConfigurationError, ValueError) as exc:
        parser.error(str(exc))
    # Fault state is process-global; remember and restore it so in-process
    # callers (the test suite) never leak an armed fault.
    previous_faults = os.environ.get(faults.ENV_VAR)
    try:
        if args.inject is not None:
            try:
                faults.activate([args.inject])
            except ConfigurationError as exc:
                parser.error(str(exc))
        store = (
            False
            if args.no_cache
            else ResultStore(
                Path(args.cache_dir) if args.cache_dir else default_cache_dir()
            )
        )
        armed = faults.active_faults()
        if armed:
            print(f"armed fault(s): {', '.join(armed)}")
        if args.trace_out:
            obs.configure(args.trace_out)
        try:
            with obs.span(
                "discover", rounds=settings.rounds, per_round=settings.per_round
            ):
                report = run_discovery(
                    settings,
                    store=store,
                    oracles=oracles,
                    workers=args.workers,
                    progress=print,
                )
        finally:
            obs.flush()
    finally:
        if previous_faults is None:
            os.environ.pop(faults.ENV_VAR, None)
        else:
            os.environ[faults.ENV_VAR] = previous_faults
    if args.out:
        path = write_json(Path(args.out) / "findings.json", report.payload())
        print(f"wrote {path}")
    telemetry = report.context.cache_stats()
    total_points = sum(entry["points"] for entry in report.rounds_log)
    print(
        f"discover: {settings.rounds} round(s), {total_points} point(s), "
        f"{len(report.witnesses)} finding(s), "
        f"{telemetry['simulations']} simulated, "
        f"{telemetry['disk_hits']} disk hit(s), "
        f"{telemetry['memory_hits']} memory hit(s)"
    )
    return 1 if report.witnesses else 0


if __name__ == "__main__":
    sys.exit(main())
