"""Oracles: executable contracts the simulator must never break.

Each oracle examines one *design point* (a concrete processor config
plus workload, see :class:`~repro.explore.space.DesignPoint`) at one
:class:`~repro.experiments.runner.RunScale` and reports zero or more
:class:`Finding`\\ s. Two families:

* **Differential** oracles run the same point twice along an axis that
  is bit-identical *by contract* — naive vs. each other registered
  kernel (skip and the vectorized/specialized backends), serial vs.
  multiprocessing execution — and diff the full statistics.
  Each leg runs under its own cache-key salt: the processor fingerprint
  deliberately excludes the kernel (the contract says it cannot
  matter), so an unsalted differential would serve the first leg's
  cache entry for the second and be structurally unable to disagree.
* **Invariant** oracles run a point once and check properties every
  honest result must satisfy: structural bounds on a full run's
  statistics (:func:`check_invariants`) and record-level contracts of a
  sampled run's estimate (:func:`check_estimate_record`).

The invariant catalogs are deliberately conservative — every check was
probed against clean runs across the design space before admission, so
a violation is evidence of a bug, not of a loose bound. Notably *not*
invariants (all empirically false for this simulator): committed
instructions equal the configured region (warm-up snapshots overshoot
by the in-flight window) and fetched/issued at least committed
(same boundary effects). The ``sampling_ci`` oracle likewise does not
require the sampled interval to contain the full run's IPC — that is a
*statistical* property with a real miss rate at small scales, checked
by the campaign CLI's ``--sampling-validate`` gate at proper scale, not
a per-point hard contract.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import KERNEL_NAIVE, VALID_KERNELS
from repro.common.errors import ConfigurationError
from repro.common.stats import SimulationStats
from repro.experiments.runner import RunScale
from repro.sampling.estimator import (
    ESTIMATED_METRICS,
    MEASUREMENT_BIAS_ALLOWANCE,
    SampledStats,
)
from repro.sampling.plan import SamplingPlan

__all__ = [
    "Finding",
    "Oracle",
    "ORACLES",
    "plan_for",
    "resolve_oracles",
    "diff_stats",
    "check_invariants",
    "check_estimate_record",
]

#: Most event-counter lines a differential finding keeps; the rest are
#: summarized. Witnesses are for humans first.
_DETAIL_CAP = 8


@dataclass(frozen=True)
class Finding:
    """One oracle violation at one (point, scale).

    ``detail`` is a human-readable description of *how* the contract
    broke — differing fields with both values, or the violated
    invariant — stable across reruns so witness artifacts are
    deterministic.
    """

    oracle: str
    point: object  # DesignPoint; untyped to keep import edges one-way
    scale: RunScale
    detail: Tuple[str, ...]


def plan_for(scale: RunScale) -> SamplingPlan:
    """A sampling plan that fits ``scale``'s measured region.

    The library default plan measures more instructions than a
    discovery-sized region holds, so the sampled oracle derives a
    proportional plan instead: four slices sized to cover about 2/3 of
    the region. Valid for every scale :class:`RunScale` accepts (the
    500-instruction floor gives a 250-instruction region, ≥ the 4×50
    minimum this plan bottoms out at).
    """
    region = scale.num_instructions - scale.warmup_instructions
    slice_instructions = max(50, region // 6)
    return SamplingPlan(
        num_slices=4,
        slice_instructions=slice_instructions,
        warmup_instructions=slice_instructions // 2,
        confidence=0.95,
        seed=17,
        target_relative_error=0.15,
    )


def diff_stats(
    a: SimulationStats,
    b: SimulationStats,
    legs: Tuple[str, str],
) -> List[str]:
    """Human-readable field-level diff of two stats objects.

    Empty when the results are bit-identical. Scalar fields come first,
    then differing event counters (capped at :data:`_DETAIL_CAP` with a
    summary line), all in deterministic order.
    """
    left, right = a.to_dict(), b.to_dict()
    lines: List[str] = []
    for name in sorted(left):
        if name == "events":
            continue
        if left[name] != right[name]:
            lines.append(
                f"{name}: {legs[0]}={left[name]} {legs[1]}={right[name]}"
            )
    events_a, events_b = left["events"], right["events"]
    differing = sorted(
        name
        for name in set(events_a) | set(events_b)
        if events_a.get(name, 0) != events_b.get(name, 0)
    )
    for name in differing[:_DETAIL_CAP]:
        lines.append(
            f"events[{name}]: {legs[0]}={events_a.get(name, 0)} "
            f"{legs[1]}={events_b.get(name, 0)}"
        )
    if len(differing) > _DETAIL_CAP:
        lines.append(
            f"... and {len(differing) - _DETAIL_CAP} more differing event "
            "counter(s)"
        )
    return lines


def check_invariants(stats: SimulationStats, config) -> List[str]:
    """Structural invariants of one full-run result; violations as text.

    ``config`` is the :class:`~repro.common.config.ProcessorConfig` the
    run used (the bounds come from its widths and queue geometry).
    """
    violations: List[str] = []
    events = stats.events.as_dict()
    for name in sorted(events):
        if events[name] < 0:
            violations.append(f"negative event counter {name}={events[name]}")
    if events.get("cycles", 0) != stats.cycles:
        violations.append(
            f"events[cycles]={events.get('cycles', 0)} != "
            f"stats.cycles={stats.cycles}"
        )
    if events.get("committed", 0) != stats.committed_instructions:
        violations.append(
            f"events[committed]={events.get('committed', 0)} != "
            f"committed_instructions={stats.committed_instructions}"
        )
    if stats.cycles <= 0:
        violations.append(f"non-positive cycle count {stats.cycles}")
    if stats.committed_instructions <= 0:
        violations.append(
            f"non-positive committed count {stats.committed_instructions}"
        )
    ipc = stats.ipc
    if ipc > config.commit_width:
        violations.append(
            f"ipc {ipc:.4f} exceeds commit width {config.commit_width}"
        )
    issue_capacity = config.int_issue_width + config.fp_issue_width
    if ipc > issue_capacity:
        violations.append(
            f"ipc {ipc:.4f} exceeds total issue width {issue_capacity}"
        )
    if stats.branch_mispredictions > stats.branch_predictions:
        violations.append(
            f"mispredictions {stats.branch_mispredictions} exceed "
            f"predictions {stats.branch_predictions}"
        )
    # Wakeup activity is bounded by the machine: every issued
    # instruction (plus at most one drain per ROB entry at the end)
    # broadcasts at most once, and a broadcast compares against at most
    # every operand tag of every queue entry. The 4x factor is the
    # safe structural ceiling measured across the design space.
    broadcasts = events.get("iq_wakeup_broadcasts", 0)
    issued = events.get("instructions_issued", 0)
    if broadcasts > issued + config.rob_entries:
        violations.append(
            f"iq_wakeup_broadcasts {broadcasts} exceed issued {issued} "
            f"+ rob {config.rob_entries}"
        )
    scheme = config.scheme
    if scheme.unbounded:
        total_entries = 2 * config.rob_entries
    else:
        total_entries = (
            scheme.int_queues * scheme.int_queue_entries
            + scheme.fp_queues * scheme.fp_queue_entries
        )
    comparisons = events.get("iq_wakeup_comparisons", 0)
    if comparisons > broadcasts * 4 * total_entries:
        violations.append(
            f"iq_wakeup_comparisons {comparisons} exceed "
            f"{broadcasts} broadcasts x 4 x {total_entries} entries"
        )
    return violations


def check_estimate_record(
    sampled: SampledStats, plan: SamplingPlan, scale: RunScale
) -> List[str]:
    """Hard record-level contracts of one sampled estimate; violations as
    text.

    Checks interval well-formedness, the non-sampling bias widening,
    window placement, instruction bookkeeping, coherence between the
    synthesized whole-run stats and the reported intervals, and the
    exact JSON round trip the result cache depends on. Deliberately
    does *not* compare against the full run — see the module docstring.
    """
    violations: List[str] = []
    region = scale.num_instructions - scale.warmup_instructions
    for name in ESTIMATED_METRICS:
        estimate = sampled.estimates.get(name)
        if estimate is None:
            violations.append(f"metric {name} missing from estimates")
            continue
        if not estimate.ci_low <= estimate.mean <= estimate.ci_high:
            violations.append(
                f"{name} interval malformed: "
                f"[{estimate.ci_low}, {estimate.ci_high}] "
                f"does not bracket mean {estimate.mean}"
            )
        if estimate.std_error < 0:
            violations.append(
                f"{name} has negative std_error {estimate.std_error}"
            )
        pad = MEASUREMENT_BIAS_ALLOWANCE[name] * abs(estimate.mean)
        if estimate.halfwidth < pad * (1.0 - 1e-9):
            violations.append(
                f"{name} interval halfwidth {estimate.halfwidth} below "
                f"the bias allowance {pad} (widening not applied)"
            )
    if len(sampled.windows) != plan.num_slices:
        violations.append(
            f"{len(sampled.windows)} windows for a "
            f"{plan.num_slices}-slice plan"
        )
    previous_end = None
    for window in sampled.windows:
        if not window.detail_start <= window.measure_start < window.detail_end:
            violations.append(f"window {window.as_dict()} is malformed")
            continue
        if window.measured != plan.slice_instructions:
            violations.append(
                f"window {window.as_dict()} measures {window.measured} "
                f"instructions, plan says {plan.slice_instructions}"
            )
        if window.detail_end > scale.num_instructions:
            violations.append(
                f"window {window.as_dict()} extends past the "
                f"{scale.num_instructions}-instruction trace"
            )
        if previous_end is not None and window.measure_start < previous_end:
            violations.append(
                f"window {window.as_dict()} overlaps the previous "
                "measured slice"
            )
        previous_end = window.detail_end
    if sampled.total_instructions != region:
        violations.append(
            f"total_instructions {sampled.total_instructions} != "
            f"measured region {region}"
        )
    detailed = sum(w.detail_end - w.detail_start for w in sampled.windows)
    if sampled.detailed_instructions != detailed:
        violations.append(
            f"detailed_instructions {sampled.detailed_instructions} != "
            f"window total {detailed}"
        )
    if len(sampled.slice_ipcs) != plan.num_slices:
        violations.append(
            f"{len(sampled.slice_ipcs)} slice IPC samples for a "
            f"{plan.num_slices}-slice plan"
        )
    for ipc in sampled.slice_ipcs:
        if ipc <= 0:
            violations.append(f"non-positive slice IPC sample {ipc}")
    stats = sampled.stats
    if stats.committed_instructions != region:
        violations.append(
            f"synthesized committed {stats.committed_instructions} != "
            f"region {region}"
        )
    if stats.events.get("cycles") != stats.cycles:
        violations.append(
            "synthesized events[cycles] out of sync with stats.cycles"
        )
    if stats.events.get("committed") != stats.committed_instructions:
        violations.append(
            "synthesized events[committed] out of sync with committed"
        )
    # The synthesized point values must sit inside their own reported
    # intervals: cycles is integer-rounded from the CPI point estimate
    # (error < 1/region, far inside the 3% bias allowance), so a miss
    # here means synthesis and estimation disagree about the run.
    if stats.cycles > 0 and stats.committed_instructions > 0:
        if "ipc" in sampled.estimates and not sampled.estimates[
            "ipc"
        ].contains(stats.ipc):
            violations.append(
                f"synthesized ipc {stats.ipc:.6f} outside its own "
                f"interval [{sampled.estimates['ipc'].ci_low:.6f}, "
                f"{sampled.estimates['ipc'].ci_high:.6f}]"
            )
        cpi = stats.cycles / stats.committed_instructions
        if "cpi" in sampled.estimates and not sampled.estimates[
            "cpi"
        ].contains(cpi):
            violations.append(
                f"synthesized cpi {cpi:.6f} outside its own interval"
            )
    try:
        rebuilt = SampledStats.from_dict(
            json.loads(json.dumps(sampled.to_dict())), sampled.stats
        )
        if rebuilt.to_dict() != sampled.to_dict():
            violations.append("estimate record does not round-trip JSON")
    except (ConfigurationError, KeyError, TypeError, ValueError) as exc:
        violations.append(f"estimate record round trip raised {exc!r}")
    return violations


class Oracle:
    """Interface: check ``points`` at ``scale`` through ``ctx``'s caches.

    ``ctx`` is a :class:`~repro.discover.campaign.DiscoveryContext`; the
    oracle asks it for runners (scale- and leg-specific) so every
    simulation flows through the shared memory/disk cache stack and a
    warm rerun of a whole campaign replays without simulating.
    """

    name: str = ""
    description: str = ""

    def run(self, ctx, points: Sequence, scale: RunScale) -> List[Finding]:
        raise NotImplementedError


class KernelEquivalenceOracle(Oracle):
    name = "kernel_equivalence"
    description = (
        "every simulation kernel (skip and the vectorized/specialized "
        "backends) produces statistics bit-identical to naive"
    )

    def run(self, ctx, points, scale):
        # One salted runner per kernel: each leg gets its own cache-key
        # namespace (see module docstring), and every registered kernel —
        # built-in or backend — is differenced against the naive
        # reference, not pairwise against each other.
        legs = {
            kernel: ctx.runner(
                scale, kernel=kernel, salt=f"discover:kernel={kernel}"
            )
            for kernel in VALID_KERNELS
        }
        naive = legs.pop(KERNEL_NAIVE)
        findings = []
        for point in points:
            reference = naive.run(point.benchmark, point.config)
            for kernel, runner in legs.items():
                detail = diff_stats(
                    reference,
                    runner.run(point.benchmark, point.config),
                    (KERNEL_NAIVE, kernel),
                )
                if detail:
                    findings.append(
                        Finding(self.name, point, scale, tuple(detail))
                    )
        return findings


class SerialParallelOracle(Oracle):
    name = "serial_parallel"
    description = (
        "multiprocessing fan-out produces bit-identical results to serial runs"
    )

    def run(self, ctx, points, scale):
        serial = ctx.runner(scale, salt="discover:exec=serial")
        parallel = ctx.runner(scale, salt="discover:exec=parallel")
        pairs = [(point.benchmark, point.config) for point in points]
        parallel_stats = parallel.run_many(pairs, workers=max(2, ctx.workers))
        findings = []
        for point, from_pool in zip(points, parallel_stats):
            detail = diff_stats(
                serial.run(point.benchmark, point.config),
                from_pool,
                ("serial", "parallel"),
            )
            if detail:
                findings.append(Finding(self.name, point, scale, tuple(detail)))
        return findings


class SchemeInvariantsOracle(Oracle):
    name = "scheme_invariants"
    description = "full-run statistics satisfy structural machine bounds"

    def run(self, ctx, points, scale):
        runner = ctx.runner(scale)
        findings = []
        for point in points:
            stats = runner.run(point.benchmark, point.config)
            detail = check_invariants(stats, point.config)
            if detail:
                findings.append(Finding(self.name, point, scale, tuple(detail)))
        return findings


class SamplingCiOracle(Oracle):
    name = "sampling_ci"
    description = (
        "sampled estimate records honor their structural contracts"
    )

    def run(self, ctx, points, scale):
        plan = plan_for(scale)
        runner = ctx.runner(scale, sampling=plan)
        findings = []
        for point in points:
            sampled = runner.sampled_result(point.benchmark, point.config)
            detail = check_estimate_record(sampled, plan, scale)
            if detail:
                findings.append(Finding(self.name, point, scale, tuple(detail)))
        return findings


class StaticAnalysisOracle(Oracle):
    """Replays the ``repro.analysis`` contract-verification pass.

    A source-level violation (skip-safety, determinism, cache-key
    hygiene, …) is point-independent, so a dirty tree yields exactly
    one finding bound to the first planned point — content addressing
    then collapses every campaign onto a single witness.  The analyzed
    tree defaults to the installed ``repro`` package and can be
    overridden with ``$REPRO_ANALYSIS_ROOT`` (sensitivity tests point
    it at a known-bad tree).  Results are memoized per root for the
    life of the process: sources do not change mid-campaign.
    """

    name = "static_analysis"
    description = (
        "the contract-verification static analysis pass reports zero "
        "unsuppressed findings over the simulator sources"
    )

    def __init__(self) -> None:
        self._memo: Dict[str, Tuple[str, ...]] = {}

    def run(self, ctx, points, scale):
        detail = self._analyze()
        if not detail or not points:
            return []
        return [Finding(self.name, points[0], scale, detail)]

    def _analyze(self) -> Tuple[str, ...]:
        import os
        from pathlib import Path

        from repro.analysis import default_root, run_analysis

        root = Path(os.environ.get("REPRO_ANALYSIS_ROOT") or default_root())
        memo_key = str(root.resolve())
        if memo_key not in self._memo:
            report = run_analysis([root], base=root.parent)
            lines = [
                f"{f.path}:{f.line}: {f.rule}: {f.message}"
                for f in report.findings
            ]
            if len(lines) > _DETAIL_CAP:
                extra = len(lines) - _DETAIL_CAP
                lines = lines[:_DETAIL_CAP] + [
                    f"... and {extra} more static analysis finding(s)"
                ]
            self._memo[memo_key] = tuple(lines)
        return self._memo[memo_key]


#: The oracle catalog, in canonical (and execution) order.
ORACLES: Dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        KernelEquivalenceOracle(),
        SerialParallelOracle(),
        SchemeInvariantsOracle(),
        SamplingCiOracle(),
        StaticAnalysisOracle(),
    )
}


def resolve_oracles(spec: Optional[str]) -> List[Oracle]:
    """Oracles for a CLI spec: comma-separated names, empty = all."""
    if not spec:
        return list(ORACLES.values())
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = sorted(set(names) - set(ORACLES))
    if unknown:
        raise ConfigurationError(
            f"unknown oracle(s) {unknown}; known: {sorted(ORACLES)}"
        )
    # Deduplicate but keep canonical execution order.
    requested = set(names)
    return [oracle for name, oracle in ORACLES.items() if name in requested]
