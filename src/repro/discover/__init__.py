"""Differential divergence-discovery campaigns.

A test suite checks the behaviours someone thought to write down; this
subsystem hunts for the ones nobody did. It samples the design space
(workload x scheme x geometry x kernel), runs every point through
*oracles* — executable contracts like "both simulation kernels are
bit-identical", "parallel equals serial", "statistics respect the
machine's structural bounds", "sampled estimate records are coherent" —
and turns every divergence into a small, replayable, content-addressed
*witness* via automatic generalization (which dimensions matter?) and
minimization (trace-length bisection + config shrinking).

Entry points: ``python -m repro.discover`` (the campaign CLI),
:func:`~repro.discover.campaign.run_discovery` (the library API) and
:func:`~repro.discover.witness.replay_witness` (corpus regression
replay). The subsystem proves its own sensitivity by hunting known
injected faults (:mod:`repro.common.faults`): a discovery loop that
cannot find a planted bug cannot be trusted to find real ones.
"""

from repro.discover.campaign import (
    DISCOVERY_BENCHMARKS,
    DiscoveryContext,
    DiscoveryReport,
    DiscoverySettings,
    discovery_space,
    run_discovery,
)
from repro.discover.oracles import (
    ORACLES,
    Finding,
    Oracle,
    check_estimate_record,
    check_invariants,
    diff_stats,
    plan_for,
    resolve_oracles,
)
from repro.discover.witness import (
    build_witness,
    load_corpus,
    replay_witness,
    save_witness,
    witness_key,
)

__all__ = [
    "DISCOVERY_BENCHMARKS",
    "DiscoveryContext",
    "DiscoveryReport",
    "DiscoverySettings",
    "discovery_space",
    "run_discovery",
    "ORACLES",
    "Finding",
    "Oracle",
    "check_estimate_record",
    "check_invariants",
    "diff_stats",
    "plan_for",
    "resolve_oracles",
    "build_witness",
    "load_corpus",
    "replay_witness",
    "save_witness",
    "witness_key",
]
