"""Experiment runner: simulate (benchmark, scheme) pairs with caching.

Every figure reuses baseline runs, so results are memoized on
``(benchmark, scheme_config, num_instructions, seed)``. Traces are also
cached per ``(benchmark, num_instructions, seed)``.

``RunScale`` controls how big each simulation is; the defaults keep the
full benchmark harness in the minutes range on a laptop. The paper's
100M-instruction runs are out of reach for a pure-Python cycle simulator
— the scale knob is the honest way to trade fidelity for time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.common.config import IssueSchemeConfig, default_config
from repro.common.stats import SimulationStats
from repro.core.processor import Processor
from repro.workloads.generator import generate_trace
from repro.workloads.prewarm import prewarm
from repro.workloads.suites import get_profile
from repro.workloads.trace import Trace

__all__ = ["RunScale", "ExperimentRunner", "DEFAULT_SCALE"]


@dataclass(frozen=True)
class RunScale:
    """Size of one simulation."""

    num_instructions: int = 6000
    warmup_instructions: int = 3000
    seed: int = 11

    def validate(self) -> None:
        if self.num_instructions <= self.warmup_instructions:
            raise ValueError("need more instructions than warm-up")
        if self.num_instructions < 500:
            raise ValueError("runs this short are all warm-up noise")


DEFAULT_SCALE = RunScale()


class ExperimentRunner:
    """Runs and caches simulations for the figure generators."""

    def __init__(self, scale: RunScale = DEFAULT_SCALE) -> None:
        scale.validate()
        self.scale = scale
        self._trace_cache: Dict[str, Trace] = {}
        self._result_cache: Dict[Tuple[str, IssueSchemeConfig], SimulationStats] = {}

    def trace_for(self, benchmark: str) -> Trace:
        """Trace for a benchmark at this runner's scale (cached)."""
        if benchmark not in self._trace_cache:
            self._trace_cache[benchmark] = generate_trace(
                get_profile(benchmark),
                self.scale.num_instructions,
                seed=self.scale.seed,
            )
        return self._trace_cache[benchmark]

    def run(self, benchmark: str, scheme: IssueSchemeConfig) -> SimulationStats:
        """Simulate one (benchmark, scheme) pair (cached)."""
        key = (benchmark, scheme)
        if key not in self._result_cache:
            trace = self.trace_for(benchmark)
            config = default_config(scheme)
            processor = Processor(config, trace)
            prewarm(processor.hierarchy, get_profile(benchmark), self.scale.seed)
            self._result_cache[key] = processor.run(
                warmup_instructions=self.scale.warmup_instructions
            )
        return self._result_cache[key]

    def ipc(self, benchmark: str, scheme: IssueSchemeConfig) -> float:
        return self.run(benchmark, scheme).ipc

    def ipc_loss_pct(
        self, benchmark: str, scheme: IssueSchemeConfig, baseline: IssueSchemeConfig
    ) -> float:
        """IPC loss of ``scheme`` relative to ``baseline``, in percent."""
        base = self.ipc(benchmark, baseline)
        return 100.0 * (base - self.ipc(benchmark, scheme)) / base

    def average_loss_pct(
        self,
        benchmarks: Iterable[str],
        scheme: IssueSchemeConfig,
        baseline: IssueSchemeConfig,
    ) -> float:
        """Arithmetic-mean IPC loss across a suite, in percent."""
        losses: List[float] = [
            self.ipc_loss_pct(b, scheme, baseline) for b in benchmarks
        ]
        return sum(losses) / len(losses)
