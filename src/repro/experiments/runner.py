"""Experiment runner: simulate (benchmark, scheme) pairs with caching.

Every figure reuses baseline runs, so results are resolved through a
three-layer cache::

    memory (this runner)  →  disk (ResultStore)  →  simulation

The memory layer keys on ``(benchmark, scheme_config)`` exactly as
before; the disk layer is content-addressed over the full processor
config, the benchmark profile, the :class:`RunScale` and the simulator
version tag (see :mod:`repro.experiments.store`), so a result computed by
any process at any time is reusable by every later one. Simulations that
do have to run can be fanned out across a ``multiprocessing`` pool
(:mod:`repro.experiments.parallel`) via :meth:`ExperimentRunner.run_many`
— the figure API (``run``/``ipc``/``ipc_loss_pct``) is unchanged and hits
the warmed memory cache.

``RunScale`` controls how big each simulation is; the defaults keep the
full benchmark harness in the minutes range on a laptop. The paper's
100M-instruction runs are out of reach for a pure-Python cycle simulator
— the scale knob is the honest way to trade fidelity for time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.common.config import (
    IssueSchemeConfig,
    ProcessorConfig,
    default_config,
    stable_fingerprint,
)
from repro.common.stats import SimulationStats
from repro.core.processor import Processor
from repro.experiments.store import ResultStore, result_key
from repro.workloads.generator import generate_trace
from repro.workloads.prewarm import prewarm
from repro.workloads.suites import get_profile
from repro.workloads.trace import Trace

__all__ = [
    "RunScale",
    "ExperimentRunner",
    "CacheTelemetry",
    "DEFAULT_SCALE",
    "SchemeOrConfig",
    "resolve_config",
    "scheme_label",
    "simulate_pair",
    "simulate_sampled_pair",
    "clear_trace_memo",
]

#: Everywhere the experiments layer takes "what to simulate", it accepts
#: either a bare issue-scheme config (simulated inside the Table 1
#: processor, the common case) or a full :class:`ProcessorConfig` (the
#: exploration subsystem varies processor knobs too).
SchemeOrConfig = Union[IssueSchemeConfig, ProcessorConfig]


def resolve_config(scheme: SchemeOrConfig) -> ProcessorConfig:
    """Full processor config for a scheme-or-config simulation target."""
    if isinstance(scheme, ProcessorConfig):
        return scheme
    return default_config(scheme)


def scheme_label(scheme: SchemeOrConfig) -> str:
    """Short human label for a simulation target (telemetry only)."""
    if isinstance(scheme, ProcessorConfig):
        scheme = scheme.scheme
    return getattr(scheme, "name", None) or type(scheme).__name__


@dataclass(frozen=True)
class RunScale:
    """Size of one simulation."""

    num_instructions: int = 6000
    warmup_instructions: int = 3000
    seed: int = 11

    def validate(self) -> None:
        if self.num_instructions <= self.warmup_instructions:
            raise ValueError("need more instructions than warm-up")
        if self.num_instructions < 500:
            raise ValueError("runs this short are all warm-up noise")


DEFAULT_SCALE = RunScale()

#: Process-level trace memo, the sibling of the prewarm snapshot memo:
#: trace generation is deterministic in (profile, length, seed) and a
#: benchmark harness spins up many runners over the same few traces, so
#: generation (and the construction-time validation walk) runs once per
#: process. Keyed on the profile *fingerprint*, not its name, so editing
#: or re-registering a profile can never serve a stale stream.
_TRACE_MEMO: Dict[Tuple[str, int, int], Trace] = {}


def clear_trace_memo() -> None:
    """Drop memoized traces (tests that mutate profiles in place use this)."""
    _TRACE_MEMO.clear()


def _memoized_trace(profile, num_instructions: int, seed: int) -> Trace:
    key = (stable_fingerprint(profile), num_instructions, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = generate_trace(profile, num_instructions, seed=seed)
        _TRACE_MEMO[key] = trace
    return trace


@dataclass
class CacheTelemetry:
    """Where this runner's results came from, cumulatively."""

    memory_hits: int = 0
    disk_hits: int = 0
    simulations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "simulations": self.simulations,
        }


def simulate_pair(
    benchmark: str,
    scheme: SchemeOrConfig,
    scale: RunScale,
    trace: Optional[Trace] = None,
    kernel: Optional[str] = None,
) -> Tuple[SimulationStats, Trace]:
    """Simulate one (benchmark, scheme-or-config) pair from scratch.

    This is *the* simulation entry point: the serial runner and the
    multiprocessing workers both call it, so every execution path runs
    identical code. ``scheme`` is an :class:`IssueSchemeConfig` (run
    inside the Table 1 processor) or a full :class:`ProcessorConfig`.
    Pass a previously generated ``trace`` to skip trace generation
    (traces are deterministic in (profile, length, seed), so a reused
    trace is indistinguishable from a fresh one). ``kernel`` overrides
    the config's simulation kernel (``"naive"``/``"skip"``) — a
    wall-clock knob only, results are bit-identical either way.
    Returns the stats together with the trace for reuse.
    """
    profile = get_profile(benchmark)
    if trace is None:
        trace = _memoized_trace(profile, scale.num_instructions, scale.seed)
    config = resolve_config(scheme)
    if kernel is not None:
        config = config.with_kernel(kernel)
    processor = Processor(config, trace)
    prewarm(processor.hierarchy, profile, scale.seed)
    stats = processor.run(warmup_instructions=scale.warmup_instructions)
    return stats, trace


def simulate_sampled_pair(
    benchmark: str,
    scheme: SchemeOrConfig,
    scale: RunScale,
    sampling,
    trace: Optional[Trace] = None,
    kernel: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
):
    """Sampled-mode sibling of :func:`simulate_pair`.

    Runs the :func:`repro.core.engine.run_sampled` execution mode over
    the same trace and measured region a full run would use: detailed
    slices per ``sampling`` (a :class:`~repro.sampling.plan.SamplingPlan`),
    functional fast-forward between them, warm-state checkpoints under
    ``checkpoint_dir`` when given. Returns ``(sampled, trace)`` where
    ``sampled`` is a :class:`~repro.sampling.estimator.SampledStats` —
    its ``.stats`` is the synthesized whole-run statistics object that
    caches and figure generators consume.
    """
    from repro.core import engine
    from repro.sampling.checkpoints import CheckpointStore
    from repro.sampling.estimator import estimate_sampled

    profile = get_profile(benchmark)
    if trace is None:
        trace = _memoized_trace(profile, scale.num_instructions, scale.seed)
    config = resolve_config(scheme)
    if kernel is not None:
        config = config.with_kernel(kernel)
    checkpoints = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    windows, slices, telemetry = engine.run_sampled(
        config,
        trace,
        sampling,
        scale.warmup_instructions,
        scale.num_instructions,
        profile=profile,
        prewarm_seed=scale.seed,
        checkpoints=checkpoints,
    )
    sampled = estimate_sampled(
        sampling,
        config,
        windows,
        slices,
        scale.num_instructions - scale.warmup_instructions,
        telemetry.executed_cycles,
    )
    return sampled, trace


class ExperimentRunner:
    """Runs and caches simulations for the figure generators.

    ``store`` selects the disk layer: a :class:`ResultStore` uses that
    store, ``None`` (the default) uses ``$REPRO_CACHE_DIR`` if set and no
    disk cache otherwise, and ``False`` disables the disk layer outright.
    ``workers`` is the default pool size for :meth:`run_many` (0 = serial;
    individual calls may override it). ``kernel`` pins the simulation
    kernel for every run this runner executes (``None`` = the config
    default); it never affects cache keys because both kernels are
    bit-identical.

    ``sampling`` switches the runner to the sampled execution mode: a
    :class:`~repro.sampling.plan.SamplingPlan` makes every simulation a
    checkpointed sampled run (detailed slices + functional fast-forward)
    whose statistics are error-bounded *estimates*. The plan hashes into
    every disk-cache key, so sampled and full results never alias and
    warm reruns of sampled campaigns replay with zero executions; the
    per-pair estimate record (confidence intervals included) is cached
    alongside the stats and available via :meth:`sampled_result`.
    """

    def __init__(
        self,
        scale: RunScale = DEFAULT_SCALE,
        store: Union[ResultStore, None, bool] = None,
        workers: int = 0,
        kernel: Optional[str] = None,
        sampling=None,
        key_salt: Optional[str] = None,
    ) -> None:
        scale.validate()
        self.scale = scale
        if sampling is not None:
            sampling.validate()
        self.sampling = sampling
        if store is None:
            self.store: Optional[ResultStore] = ResultStore.from_env()
        elif store is False:
            self.store = None
        elif store is True:
            self.store = ResultStore()
        else:
            self.store = store
        self.workers = workers
        self.kernel = kernel
        self.key_salt = key_salt
        self.telemetry = CacheTelemetry()
        #: Resolution provenance of the most recent ``_lookup`` hit
        #: ("memory"/"disk") — telemetry annotation only.
        self._last_source: Optional[str] = None
        self._trace_cache: Dict[str, Trace] = {}
        self._result_cache: Dict[Tuple[str, SchemeOrConfig], SimulationStats] = {}
        #: Estimate records of sampled runs, keyed like the result cache.
        self._sampled_cache: Dict[Tuple[str, SchemeOrConfig], object] = {}

    def _trace_dir(self) -> Optional[str]:
        """Spill directory for worker-shared traces (disk cache root)."""
        if self.store is None:
            return None
        return str(self.store.root / "traces")

    def _checkpoint_dir(self) -> Optional[str]:
        """Warm-state checkpoint directory (disk cache root)."""
        if self.store is None or self.sampling is None:
            return None
        return str(self.store.root / "checkpoints")

    def trace_for(self, benchmark: str) -> Trace:
        """Trace for a benchmark at this runner's scale (cached)."""
        if benchmark not in self._trace_cache:
            self._trace_cache[benchmark] = _memoized_trace(
                get_profile(benchmark),
                self.scale.num_instructions,
                self.scale.seed,
            )
        return self._trace_cache[benchmark]

    def store_key(self, benchmark: str, scheme: SchemeOrConfig) -> str:
        """Content address of this pair's result at this runner's scale.

        With a sampling plan configured the plan is part of the address,
        so sampled estimates and full results occupy disjoint keys; a
        ``key_salt`` partitions this runner's results into their own
        namespace (differential oracles salt each leg so contractually
        bit-identical runs cannot serve each other's cache entries).
        """
        return result_key(
            resolve_config(scheme),
            get_profile(benchmark),
            self.scale,
            sampling=self.sampling,
            salt=self.key_salt,
        )

    def cache_stats(self) -> Dict[str, int]:
        """Cumulative memory-hit / disk-hit / simulation counts."""
        return self.telemetry.as_dict()

    def _lookup(
        self, benchmark: str, scheme: SchemeOrConfig
    ) -> Optional[SimulationStats]:
        """Memory then disk lookup; promotes disk hits into memory."""
        key = (benchmark, scheme)
        stats = self._result_cache.get(key)
        if stats is not None:
            self.telemetry.memory_hits += 1
            self._last_source = "memory"
            obs.counter("repro_runner_memory_hits_total").inc()
            return stats
        if self.store is not None:
            loaded = self.store.load_with_extra(self.store_key(benchmark, scheme))
            if loaded is not None:
                stats, extra = loaded
                if self.sampling is not None:
                    sampled = self._rebuild_sampled(extra, stats)
                    if sampled is None:
                        return None  # damaged estimate record: recompute
                    self._sampled_cache[key] = sampled
                self.telemetry.disk_hits += 1
                self._last_source = "disk"
                obs.counter("repro_runner_disk_hits_total").inc()
                self._result_cache[key] = stats
                return stats
        return None

    def _rebuild_sampled(self, extra, stats: SimulationStats):
        """Reconstruct a cached estimate record; ``None`` if damaged."""
        from repro.common.errors import ConfigurationError
        from repro.sampling.estimator import SampledStats

        if extra is None:
            return None
        try:
            return SampledStats.from_dict(extra, stats)
        except (KeyError, TypeError, ValueError, AttributeError,
                ConfigurationError):
            # ConfigurationError covers records whose embedded plan no
            # longer validates — damage, like the rest: a cache miss.
            return None

    def _record(
        self,
        benchmark: str,
        scheme: SchemeOrConfig,
        stats: SimulationStats,
        sampled=None,
    ) -> None:
        """File a freshly simulated result into memory and disk layers."""
        self.telemetry.simulations += 1
        obs.counter("repro_runner_simulations_total").inc()
        self._result_cache[(benchmark, scheme)] = stats
        if sampled is not None:
            self._sampled_cache[(benchmark, scheme)] = sampled
        if self.store is not None:
            self.store.save(
                self.store_key(benchmark, scheme),
                stats,
                extra=sampled.to_dict() if sampled is not None else None,
            )

    def _simulate(self, benchmark: str, scheme: SchemeOrConfig):
        """One uncached simulation in the configured execution mode.

        Also the registry absorption point for kernel-cycle telemetry:
        the engine (inside the version-tag closure, so barred from
        importing ``repro.obs``) accumulates plain counters in
        ``GLOBAL_TELEMETRY``; this untagged layer measures the growth
        around each run and feeds the per-kernel counters/histograms.
        Attribution is per-run-exact for the serial CLIs; concurrent
        in-process batches (the serve executor threads) may attribute
        overlapping cycles to the wrong span.
        """
        from repro.core import engine

        kernel = self.kernel or resolve_config(scheme).kernel
        mode = "sampled" if self.sampling is not None else "full"
        before = engine.GLOBAL_TELEMETRY.as_dict()
        with obs.span(
            "runner.simulate",
            benchmark=benchmark,
            scheme=scheme_label(scheme),
            kernel=kernel,
            mode=mode,
        ):
            if self.sampling is not None:
                sampled, trace = simulate_sampled_pair(
                    benchmark,
                    scheme,
                    self.scale,
                    self.sampling,
                    trace=self._trace_cache.get(benchmark),
                    kernel=self.kernel,
                    checkpoint_dir=self._checkpoint_dir(),
                )
                result = (sampled.stats, trace, sampled)
            else:
                stats, trace = simulate_pair(
                    benchmark,
                    scheme,
                    self.scale,
                    trace=self._trace_cache.get(benchmark),
                    kernel=self.kernel,
                )
                result = (stats, trace, None)
        after = engine.GLOBAL_TELEMETRY.as_dict()
        obs.record_kernel_delta(
            kernel, {name: after[name] - before[name] for name in after}
        )
        if self.sampling is not None:
            # The ffwd-vs-detailed split: how much of the instruction
            # stream went through functional fast-forward instead of
            # detailed simulation.
            detailed = int(result[2].detailed_instructions)
            obs.counter("repro_sampling_detailed_instructions_total").inc(
                detailed
            )
            obs.counter("repro_sampling_ffwd_instructions_total").inc(
                max(0, self.scale.num_instructions - detailed)
            )
        return result

    def run(self, benchmark: str, scheme: SchemeOrConfig) -> SimulationStats:
        """Simulate one (benchmark, scheme-or-config) pair (cached)."""
        with obs.span(
            "runner.resolve",
            benchmark=benchmark,
            scheme=scheme_label(scheme),
        ) as info:
            stats = self._lookup(benchmark, scheme)
            if stats is not None:
                info["source"] = self._last_source
            else:
                info["source"] = "simulated"
                stats, trace, sampled = self._simulate(benchmark, scheme)
                self._trace_cache[benchmark] = trace
                self._record(benchmark, scheme, stats, sampled)
            if obs.trace_enabled():
                # Per-key provenance: which content address answered.
                info["key"] = self.store_key(benchmark, scheme)
        return stats

    def sampled_result(self, benchmark: str, scheme: SchemeOrConfig):
        """The pair's :class:`SampledStats` estimate record, or ``None``.

        Only populated when the runner has a sampling plan; :meth:`run`
        (or a prefetch) must have resolved the pair first. Cache-loaded
        records are bit-identical to freshly computed ones — floats
        round-trip exactly through the JSON payload.
        """
        if self.sampling is None:
            return None
        key = (benchmark, scheme)
        if key not in self._sampled_cache:
            self.run(benchmark, scheme)
        return self._sampled_cache.get(key)

    def pending_pairs(
        self, pairs: Sequence[Tuple[str, SchemeOrConfig]]
    ) -> List[Tuple[str, SchemeOrConfig]]:
        """Deduplicated pairs not resolvable from memory or disk, in order.

        This is the execution frontier of :meth:`run_many`: everything it
        returns genuinely needs a simulation (and, as a side effect, every
        cached pair has been promoted into the memory layer). The serve
        subsystem's scheduler-backed runner reuses it to route exactly
        these misses through the shared coalescing scheduler.
        """
        misses: List[Tuple[str, SchemeOrConfig]] = []
        for benchmark, scheme in pairs:
            if self._lookup(benchmark, scheme) is None:
                pair = (benchmark, scheme)
                if pair not in misses:
                    misses.append(pair)
        return misses

    def run_many(
        self,
        pairs: Sequence[Tuple[str, SchemeOrConfig]],
        workers: Optional[int] = None,
    ) -> List[SimulationStats]:
        """Resolve many pairs at once; results in input order.

        Cached pairs (memory or disk) never reach the pool. The remaining
        misses run on ``workers`` processes (default: the runner's own
        ``workers`` setting; 0 or 1 means in-process serial execution).
        Results are identical to serial :meth:`run` calls in any case —
        only wall-clock time changes.
        """
        workers = self.workers if workers is None else workers
        misses = self.pending_pairs(pairs)
        if misses:
            if workers and workers > 1:
                from repro.experiments.parallel import simulate_matrix

                results = simulate_matrix(
                    misses,
                    self.scale,
                    workers,
                    kernel=self.kernel,
                    trace_dir=self._trace_dir(),
                    sampling=self.sampling,
                    checkpoint_dir=self._checkpoint_dir(),
                )
                for (benchmark, scheme), result in zip(misses, results):
                    if self.sampling is not None:
                        self._record(benchmark, scheme, result.stats, result)
                    else:
                        self._record(benchmark, scheme, result)
            else:
                for benchmark, scheme in misses:
                    stats, trace, sampled = self._simulate(benchmark, scheme)
                    self._trace_cache[benchmark] = trace
                    self._record(benchmark, scheme, stats, sampled)
        return [self._result_cache[(b, s)] for b, s in pairs]

    def prefetch(
        self,
        pairs: Sequence[Tuple[str, SchemeOrConfig]],
        workers: Optional[int] = None,
    ) -> None:
        """Warm the memory cache for ``pairs`` (parallel when configured).

        After a prefetch, figure generators calling :meth:`run`/:meth:`ipc`
        serially hit the memory layer only.
        """
        self.run_many(pairs, workers=workers)

    def ipc(self, benchmark: str, scheme: SchemeOrConfig) -> float:
        return self.run(benchmark, scheme).ipc

    def ipc_loss_pct(
        self, benchmark: str, scheme: SchemeOrConfig, baseline: SchemeOrConfig
    ) -> float:
        """IPC loss of ``scheme`` relative to ``baseline``, in percent."""
        base = self.ipc(benchmark, baseline)
        return 100.0 * (base - self.ipc(benchmark, scheme)) / base

    def average_loss_pct(
        self,
        benchmarks: Iterable[str],
        scheme: SchemeOrConfig,
        baseline: SchemeOrConfig,
    ) -> float:
        """Arithmetic-mean IPC loss across a suite, in percent."""
        losses: List[float] = [
            self.ipc_loss_pct(b, scheme, baseline) for b in benchmarks
        ]
        return sum(losses) / len(losses)
