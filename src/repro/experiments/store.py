"""Content-addressed on-disk cache for simulation results.

A campaign sweeps the same (benchmark, scheme) matrix over and over —
across pytest invocations, CLI sweeps and figure regenerations — and the
simulator is deterministic, so a result computed once is valid forever
*for that exact input*. The store therefore addresses each result by a
SHA-256 over everything that determines it:

* the full :class:`~repro.common.config.ProcessorConfig` (which nests the
  issue-scheme config — Table 1 knobs and queue geometry alike),
* the :class:`~repro.workloads.profiles.WorkloadProfile` of the benchmark
  (so editing a profile invalidates its cached runs),
* the :class:`~repro.experiments.runner.RunScale` (instructions, warm-up,
  seed),
* a simulator version tag, bumped whenever the simulator's behaviour
  changes (it tracks the package version).

Results live under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-abella04``) as ``<key[:2]>/<key>.json``. Files are
written atomically (temp file + ``os.replace``), and any unreadable,
corrupted or version-mismatched file is treated as a miss — the result is
simply recomputed and rewritten, never trusted.

To force a cold run: delete the cache directory, point
``REPRO_CACHE_DIR`` somewhere fresh, or pass ``--no-cache`` to the
campaign CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.common.config import ProcessorConfig, stable_fingerprint
from repro.common.stats import SimulationStats
from repro.workloads.profiles import WorkloadProfile

__all__ = [
    "ResultStore",
    "SIMULATOR_VERSION_TAG",
    "result_key",
    "default_cache_dir",
    "simulator_sources_digest",
]

#: Packages whose sources determine simulated behaviour. Anything that
#: can change a statistic — pipeline timing, the ISA's op classes and
#: latencies, issue schemes, the memory hierarchy, trace generation,
#: even the counter plumbing — lives here. (The energy and experiments
#: layers post-process cached stats and are deliberately excluded.)
_SIMULATOR_PACKAGES = (
    "common",
    "core",
    "frontend",
    "isa",
    "issue",
    "memory",
    "workloads",
)


def simulator_sources_digest() -> str:
    """SHA-256 over every simulator source file, in a stable order.

    Hashes the relative path and the bytes of each ``*.py`` file under
    ``src/repro/{common,core,frontend,isa,issue,memory,workloads}``, so
    *any* edit to simulated behaviour produces a new digest (renames and
    moves included, since the path is part of the material).
    """
    package_root = Path(__file__).resolve().parent.parent  # src/repro
    digest = hashlib.sha256()
    for package in _SIMULATOR_PACKAGES:
        for path in sorted((package_root / package).rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


#: Stamped into every cache file and hashed into every key. Derived from
#: a hash of the simulator sources, so the disk cache can never serve a
#: result computed by different simulated behaviour — no manual bump to
#: forget. (Experiments-layer refactors that cannot change statistics do
#: not invalidate the cache; that is the point of hashing only the
#: simulator packages.)
SIMULATOR_VERSION_TAG = f"abella04-sim-src-{simulator_sources_digest()[:16]}"

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-abella04``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-abella04"


def result_key(config: ProcessorConfig, profile: WorkloadProfile, scale) -> str:
    """Content address of one simulation result.

    ``scale`` is a :class:`~repro.experiments.runner.RunScale` (taken
    untyped to avoid a circular import). Any field change anywhere in the
    inputs — nested config, profile knob, scale, simulator version —
    produces a different key.
    """
    material = json.dumps(
        {
            "version": SIMULATOR_VERSION_TAG,
            "config": stable_fingerprint(config),
            "profile": stable_fingerprint(profile),
            "scale": stable_fingerprint(scale),
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultStore:
    """Directory of JSON-serialized :class:`SimulationStats`, by key."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @classmethod
    def from_env(cls) -> Optional["ResultStore"]:
        """A store at ``$REPRO_CACHE_DIR``, or ``None`` if unset.

        This is the library default: hermetic unless the user opts in.
        The benchmark harness and the campaign CLI opt in explicitly via
        :func:`default_cache_dir`.
        """
        if os.environ.get(_ENV_VAR):
            return cls()
        return None

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small for big sweeps.
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[SimulationStats]:
        """Cached stats for ``key``, or ``None`` on any kind of miss.

        A missing file, unparsable JSON, a payload with missing/mistyped
        fields, and a simulator version-tag mismatch all read as misses;
        the caller recomputes and overwrites.
        """
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if not isinstance(payload, dict):
                return None
            if payload.get("version") != SIMULATOR_VERSION_TAG:
                return None
            return SimulationStats.from_dict(payload["stats"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None

    def save(self, key: str, stats: SimulationStats) -> Path:
        """Atomically persist ``stats`` under ``key``; returns the path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": SIMULATOR_VERSION_TAG, "key": key, "stats": stats.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        """Number of cached results on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
