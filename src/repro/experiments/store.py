"""Content-addressed on-disk cache for simulation results.

A campaign sweeps the same (benchmark, scheme) matrix over and over —
across pytest invocations, CLI sweeps and figure regenerations — and the
simulator is deterministic, so a result computed once is valid forever
*for that exact input*. The store therefore addresses each result by a
SHA-256 over everything that determines it:

* the full :class:`~repro.common.config.ProcessorConfig` (which nests the
  issue-scheme config — Table 1 knobs and queue geometry alike),
* the :class:`~repro.workloads.profiles.WorkloadProfile` of the benchmark
  (so editing a profile invalidates its cached runs),
* the :class:`~repro.experiments.runner.RunScale` (instructions, warm-up,
  seed),
* a simulator version tag, bumped whenever the simulator's behaviour
  changes (it tracks the package version).

Results live under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-abella04``) as ``<key[:2]>/<key>.json``. Files are
written atomically (temp file + ``os.replace``), and any unreadable,
corrupted or version-mismatched file is treated as a miss — the result is
simply recomputed and rewritten, never trusted.

To force a cold run: delete the cache directory, point
``REPRO_CACHE_DIR`` somewhere fresh, or pass ``--no-cache`` to the
campaign CLI.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.common import faults
from repro.common.config import ProcessorConfig, stable_fingerprint
from repro.common.stats import SimulationStats
from repro.obs import clock, metrics
from repro.workloads.profiles import WorkloadProfile

__all__ = [
    "ResultStore",
    "MAX_SHARDS",
    "SIMULATOR_VERSION_TAG",
    "SAMPLING_VERSION_TAG",
    "STALE_TMP_AGE_SECONDS",
    "result_key",
    "default_cache_dir",
    "simulator_sources_digest",
    "package_sources_digest",
    "atomic_write_json",
    "record_cache_event",
    "sweep_stale_tmp",
]

_CACHE_EVENT_METRICS = {
    "hit": "repro_store_hits_total",
    "miss": "repro_store_misses_total",
    "corrupt": "repro_store_corrupt_reads_total",
    "write": "repro_store_writes_total",
}


def record_cache_event(cache: str, event: str, amount: int = 1) -> None:
    """Count one cache observation in the obs metrics registry.

    ``cache`` labels the series (``results``, ``checkpoints``,
    ``kernels``); ``event`` is one of ``hit``/``miss``/``corrupt``/
    ``write``. This function is the telemetry seam for version-tagged
    callers: the checkpoint store and the kernel cache already import
    this module (it is the one exemption from the version-tag closure)
    but must not import ``repro.obs`` themselves, so they count through
    here. Purely additive — no caller behaviour may depend on it.
    """
    metrics.counter(_CACHE_EVENT_METRICS[event], store=cache).inc(amount)


def atomic_write_json(path: Path, payload: dict) -> Path:
    """Atomically persist ``payload`` as sorted JSON at ``path``.

    Temp file + ``os.replace`` in the destination directory, cleaned up
    on any failure — the single crash-safe write path shared by the
    result store and the sampling checkpoint store, so a future
    hardening (fsync, permissions) lands in one place.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    # The temp name carries the writer's pid on top of mkstemp's random
    # component: two processes racing to save the same key can never
    # collide on the staging file, so a reader only ever observes either
    # the old complete file or the new complete file — never a torn mix.
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{os.getpid()}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


#: A ``*.tmp`` file this old is an orphan, not a live write. Atomic
#: writes hold their temp file for milliseconds; an hour of slack keeps
#: the sweep unable to race even a worker wedged mid-write on a
#: pathologically loaded machine.
STALE_TMP_AGE_SECONDS = 3600.0


def sweep_stale_tmp(root: os.PathLike, max_age: float = STALE_TMP_AGE_SECONDS) -> int:
    """Best-effort removal of orphaned atomic-write temp files.

    Every atomic writer in the tree (results, checkpoints, trace spills,
    artifacts) stages through ``mkstemp(suffix=".tmp")`` + ``os.replace``
    and unlinks its temp file on failure — but a SIGKILLed worker
    unlinks nothing, so orphans accumulate under ``$REPRO_CACHE_DIR``
    forever. This sweep deletes ``*.tmp`` files older than ``max_age``
    seconds anywhere under ``root`` and returns the count removed.

    It cannot race a live writer (young temp files are skipped, and a
    writer that somehow loses its file to the sweep fails loudly at
    ``os.replace`` rather than corrupting anything) and it never raises:
    cache hygiene must not take down the run — every OS error skips the
    file, a failing directory walk just ends the sweep early.
    """
    removed = 0
    try:
        root = Path(root)
        if not root.is_dir():
            return 0
        now = clock.wall_time()
        for path in root.rglob("*.tmp"):
            try:
                if now - path.stat().st_mtime >= max_age:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
    except OSError:
        pass
    return removed


#: Packages whose sources determine simulated behaviour. Anything that
#: can change a statistic — pipeline timing, the ISA's op classes and
#: latencies, issue schemes, the memory hierarchy, trace generation,
#: even the counter plumbing — lives here. (The energy and experiments
#: layers post-process cached stats and are deliberately excluded.)
_SIMULATOR_PACKAGES = (
    "backends",
    "common",
    "core",
    "frontend",
    "isa",
    "issue",
    "memory",
    "workloads",
)


def package_sources_digest(packages) -> str:
    """SHA-256 over the named ``src/repro`` packages' sources.

    Hashes the relative path and the bytes of each ``*.py`` file, in a
    stable order, so *any* edit produces a new digest (renames and moves
    included, since the path is part of the material).
    """
    package_root = Path(__file__).resolve().parent.parent  # src/repro
    digest = hashlib.sha256()
    for package in packages:
        for path in sorted((package_root / package).rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()


def simulator_sources_digest() -> str:
    """SHA-256 over every simulator source file (see module docstring)."""
    return package_sources_digest(_SIMULATOR_PACKAGES)


#: Stamped into every cache file and hashed into every key. Derived from
#: a hash of the simulator sources, so the disk cache can never serve a
#: result computed by different simulated behaviour — no manual bump to
#: forget. (Experiments-layer refactors that cannot change statistics do
#: not invalidate the cache; that is the point of hashing only the
#: simulator packages.)
SIMULATOR_VERSION_TAG = f"abella04-sim-src-{simulator_sources_digest()[:16]}"

#: Hashed into keys of *sampled* results only: slice selection, the
#: functional fast-forward walk and the estimator live in
#: ``repro.sampling``, and the estimator additionally bakes
#: ``repro.energy`` prices into the cached estimate record (full-run
#: results store raw events and re-price at read time, which is why
#: ``energy`` stays out of the simulator tag). Edits to either package
#: must therefore invalidate sampled cache entries — and only those.
SAMPLING_VERSION_TAG = (
    f"abella04-sampling-src-{package_sources_digest(('sampling', 'energy'))[:16]}"
)

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-abella04``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-abella04"


def result_key(
    config: ProcessorConfig,
    profile: WorkloadProfile,
    scale,
    sampling=None,
    salt: Optional[str] = None,
) -> str:
    """Content address of one simulation result.

    ``scale`` is a :class:`~repro.experiments.runner.RunScale` and
    ``sampling`` an optional :class:`~repro.sampling.plan.SamplingPlan`
    (both taken untyped to avoid circular imports). Any field change
    anywhere in the inputs — nested config, profile knob, scale,
    sampling plan, simulator version — produces a different key; in
    particular a sampled result can never alias the full-run result of
    the same pair, and keys without a salt or armed fault are
    byte-for-byte what they were before those inputs existed.

    ``salt`` partitions the key space on purpose. The processor config
    deliberately excludes the simulation kernel from its fingerprint
    (both kernels are bit-identical *by contract*), so a differential
    oracle that re-ran one pair under each kernel through the normal
    cache would hit the first kernel's entry for the second and never
    see a divergence — it must salt each leg into its own namespace.

    Armed faults (:mod:`repro.common.faults`) are *always* part of the
    material: a fault changes simulated behaviour at runtime, invisibly
    to the source-derived version tag, so a faulty result must never be
    stored under — or served for — a clean key.
    """
    material = {
        "version": SIMULATOR_VERSION_TAG,
        "config": stable_fingerprint(config),
        "profile": stable_fingerprint(profile),
        "scale": stable_fingerprint(scale),
    }
    if sampling is not None:
        material["sampling"] = stable_fingerprint(sampling)
        material["sampling_version"] = SAMPLING_VERSION_TAG
    if salt is not None:
        material["salt"] = salt
    active = faults.active_faults()
    if active:
        material["faults"] = list(active)
    return hashlib.sha256(
        json.dumps(material, sort_keys=True).encode("utf-8")
    ).hexdigest()


#: Upper bound on :class:`ResultStore` shard count — enough to spread a
#: fleet of hosts, small enough that ``shard_counts`` stays a cheap scan.
MAX_SHARDS = 4096


class ResultStore:
    """Directory of JSON-serialized :class:`SimulationStats`, by key.

    ``shards`` partitions the key space by prefix: with ``shards > 1``
    every result lives under ``shard-<i>/<key[:2]>/<key>.json`` where
    ``i`` is derived from the leading key bytes. Keys are SHA-256
    digests, so the shards fill uniformly and a fleet of executor
    workers (or hosts) can each own a disjoint directory subtree —
    no shared directory inodes to contend on, and a shard is a complete,
    independently rsync-able unit. ``shards=1`` (the default) keeps the
    original flat ``<key[:2]>/<key>.json`` layout byte-for-byte, and a
    sharded store still *reads* that legacy layout as a fallback, so
    pointing a sharded service at an existing CLI cache stays warm.
    """

    def __init__(
        self, root: Optional[os.PathLike] = None, shards: int = 1
    ) -> None:
        if not 1 <= shards <= MAX_SHARDS:
            raise ValueError(
                f"shards must be in [1, {MAX_SHARDS}], got {shards}"
            )
        self.root = Path(root) if root is not None else default_cache_dir()
        self.shards = shards
        # Cache hygiene: reap temp files orphaned by SIGKILLed writers.
        # The sweep covers the whole tree (results, traces, checkpoints)
        # and only touches files old enough that no live writer can
        # still own them.
        sweep_stale_tmp(self.root)

    @classmethod
    def from_env(cls) -> Optional["ResultStore"]:
        """A store at ``$REPRO_CACHE_DIR``, or ``None`` if unset.

        This is the library default: hermetic unless the user opts in.
        The benchmark harness and the campaign CLI opt in explicitly via
        :func:`default_cache_dir`.
        """
        if os.environ.get(_ENV_VAR):
            return cls()
        return None

    def shard_index(self, key: str) -> int:
        """Shard owning ``key``: its leading bytes modulo ``shards``.

        Keys are uniformly distributed SHA-256 hex digests, so a prefix
        modulus balances shards without any coordination — every process
        (and host) computes the same placement independently.
        """
        return int(key[:8], 16) % self.shards

    def _legacy_path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small for big sweeps.
        return self.root / key[:2] / f"{key}.json"

    def _path(self, key: str) -> Path:
        if self.shards == 1:
            return self._legacy_path(key)
        return (
            self.root
            / f"shard-{self.shard_index(key):03d}"
            / key[:2]
            / f"{key}.json"
        )

    def load(self, key: str) -> Optional[SimulationStats]:
        """Cached stats for ``key``, or ``None`` on any kind of miss.

        A missing file, unparsable JSON, a payload with missing/mistyped
        fields, and a simulator version-tag mismatch all read as misses;
        the caller recomputes and overwrites.
        """
        loaded = self.load_with_extra(key)
        return loaded[0] if loaded is not None else None

    def load_with_extra(self, key: str):
        """``(stats, extra)`` for ``key``, or ``None`` on any miss.

        ``extra`` is the optional side payload :meth:`save` stored (the
        sampled-estimate record), or ``None`` for plain results. Exactly
        like :meth:`load`, *every* failure mode — truncated file, binary
        garbage, wrong JSON shape, mis-typed stats or extra fields,
        version mismatch — reads as a miss, never an exception.
        """
        candidates = [self._path(key)]
        if self.shards > 1:
            # Migration fallback: a sharded store can still serve results
            # an unsharded writer (the CLIs) filed under the flat layout.
            candidates.append(self._legacy_path(key))
        for path in candidates:
            loaded = self._read_payload(path)
            if loaded is not None:
                record_cache_event("results", "hit")
                return loaded
        record_cache_event("results", "miss")
        return None

    @staticmethod
    def _read_payload(path: Path):
        try:
            raw = path.read_bytes()
        except OSError:
            return None  # missing or unreadable file: a plain miss
        try:
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
            if payload.get("version") != SIMULATOR_VERSION_TAG:
                # Expected after a source edit rotates the tag: stale,
                # not damaged — don't count it as a corrupt read.
                return None
            stats = SimulationStats.from_dict(payload["stats"])
            extra = payload.get("sampled")
            if extra is not None and not isinstance(extra, dict):
                raise ValueError("mis-typed sampled record")
            return stats, extra
        except (ValueError, KeyError, TypeError, AttributeError):
            # The file existed but could not be trusted: torn write,
            # binary garbage, wrong shape. Still a miss to the caller.
            record_cache_event("results", "corrupt")
            return None

    def save(self, key: str, stats: SimulationStats, extra: Optional[dict] = None) -> Path:
        """Atomically persist ``stats`` under ``key``; returns the path.

        ``extra`` is an optional JSON-serializable side payload stored
        alongside the stats (sampled runs keep their estimate record
        there) and returned by :meth:`load_with_extra`.
        """
        payload = {"version": SIMULATOR_VERSION_TAG, "key": key, "stats": stats.to_dict()}
        if extra is not None:
            payload["sampled"] = extra
        path = atomic_write_json(self._path(key), payload)
        record_cache_event("results", "write")
        return path

    def shard_counts(self) -> List[int]:
        """Cached-result count per shard, in shard order.

        With ``shards == 1`` this is a one-element list (the flat-layout
        total); a sharded store counts each ``shard-*`` subtree plus any
        legacy flat-layout leftovers folded into their owning shard, so
        the sum always equals ``len(self)``.
        """
        counts = [0] * self.shards
        if not self.root.is_dir():
            return counts
        for path in self.root.glob("*/*.json"):
            try:
                counts[self.shard_index(path.stem)] += 1
            except ValueError:
                # Not a result key (foreign file in the tree): shard 0.
                counts[0] += 1
        if self.shards > 1:
            for index in range(self.shards):
                shard_dir = self.root / f"shard-{index:03d}"
                counts[index] += sum(1 for _ in shard_dir.glob("*/*.json"))
        return counts

    def __len__(self) -> int:
        """Number of cached results on disk (all layouts)."""
        return sum(self.shard_counts())

    def __repr__(self) -> str:
        if self.shards > 1:
            return f"ResultStore({str(self.root)!r}, shards={self.shards})"
        return f"ResultStore({str(self.root)!r})"
