"""Plain-text rendering of figure data (the harness's 'plots')."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

__all__ = ["render_series", "render_table", "render_breakdown", "render_listing"]


def render_series(title: str, series: Mapping[str, float], unit: str = "%") -> str:
    """One label/value pair per line, e.g. the Figure 2–6 loss sweeps."""
    lines = [title]
    width = max((len(name) for name in series), default=0)
    for name, value in series.items():
        lines.append(f"  {name:<{width}}  {value:7.2f}{unit}")
    return "\n".join(lines)


def render_table(
    title: str,
    table: Mapping[str, Mapping[str, float]],
    value_format: str = "{:7.3f}",
) -> str:
    """Render nested mapping {row: {column: value}} as an aligned table."""
    lines = [title]
    columns = list(table)
    rows: list = []
    for column in columns:
        for row in table[column]:
            if row not in rows:
                rows.append(row)
    row_width = max((len(r) for r in rows), default=0)
    col_width = max(max((len(c) for c in columns), default=0), 8)
    header = " " * (row_width + 2) + " ".join(f"{c:>{col_width}}" for c in columns)
    lines.append(header)
    for row in rows:
        cells = []
        for column in columns:
            value = table[column].get(row)
            if value is None:
                cells.append(" " * col_width)
            else:
                cells.append(f"{value_format.format(value):>{col_width}}")
        lines.append(f"  {row:<{row_width}}" + " ".join(cells))
    return "\n".join(lines)


def render_listing(title: str, sections: Mapping[str, Sequence[str]]) -> str:
    """Render named groups of plain strings (the campaign's ``--list``).

    Each section is one labelled group; entries render one per line,
    preserving input order, so the output is deterministic and greppable.
    """
    lines = [title]
    for section, entries in sections.items():
        lines.append(f"  {section}:")
        for entry in entries:
            lines.append(f"    {entry}")
    return "\n".join(lines)


def render_breakdown(title: str, breakdown: Dict[str, Dict[str, float]]) -> str:
    """Render Figure 9–11 style component fractions per suite."""
    lines = [title]
    for suite, components in breakdown.items():
        lines.append(f"  {suite}:")
        ordered = sorted(components.items(), key=lambda kv: -kv[1])
        for component, fraction in ordered:
            lines.append(f"    {component:<12} {100 * fraction:5.1f}%")
    return "\n".join(lines)
