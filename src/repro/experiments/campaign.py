"""Run the full figure campaign and render a text report.

Command line::

    python -m repro.experiments.campaign [--scale N] [--figures 2,3,8]
        [--schemes IQ_64_64,IF_distr] [--workers N]
        [--benchmarks int|fp|all]
        [--kernel naive|skip|vectorized|specialized]
        [--sampling [SPEC]] [--sampling-validate] [--list]
        [--cache-dir DIR] [--no-cache] [--profile [FILE]]
        [--output json|csv] [--output-path FILE] [--trace-out DIR]

This is the batch entry point behind the per-figure benchmarks: it
shares one cached runner across all figures, prefetches the whole
(benchmark, scheme) matrix — across ``--workers`` processes when asked —
and reuses any result already present in the on-disk store, so the whole
campaign costs one simulation per (benchmark, scheme) pair *ever*, not
per invocation. Pass ``--no-cache`` to force every simulation to run
fresh in this process (a cold run that also leaves the store untouched).

``--figures`` recomputes a single figure (or a few) without sweeping the
whole suite; ``--schemes`` narrows further to the named scheme
configurations (paper names, e.g. ``IQ_64_64`` or
``IssueFIFO_8x8_16x16``). Because a figure needs its *full* matrix to
render, a ``--schemes`` run is a warm-only sweep: it simulates (and
caches) exactly the selected pairs and reports what it did instead of
rendering — rerun with ``--figures`` alone afterwards to render from the
warm cache.

``--kernel`` selects the simulation loop: ``skip`` (default) jumps over
provably dead cycles, ``naive`` ticks every cycle (both in
:mod:`repro.core.engine`), and ``vectorized``/``specialized`` are the
:mod:`repro.backends` execution strategies (numpy SoA hot state, or a
per-configuration compiled kernel). Results are bit-identical across
all four; the campaign footer reports how many cycles were actually
executed vs. skipped.

``--profile [FILE]`` wraps the whole run in :mod:`cProfile`: the raw
pstats data lands at ``FILE`` (default ``campaign.prof``) next to the
other artifacts, and the top functions by cumulative time are printed
after the footer.

``--output json|csv`` additionally exports the rendered figures' *data*
(via the exploration subsystem's atomic artifact writers): JSON keeps
each figure's native mapping shape under ``figure_<n>`` keys; CSV
flattens every figure into ``(figure, title, series/column/row, value)``
records. ``--output-path`` overrides the default ``campaign.json`` /
``campaign.csv``.

``--sampling [SPEC]`` switches every simulation to the checkpointed
sampled execution mode (:mod:`repro.sampling`): figures are computed
from error-bounded estimates at a fraction of the detailed cycles. SPEC
is ``key=value,...`` over ``mode, slices, slice, warmup, confidence,
seed, error`` (bare ``--sampling`` = plan defaults). Adding
``--sampling-validate`` instead runs every selected benchmark *both*
full and sampled under the Section 4 baseline and prints the
sampled-vs-full IPC error per benchmark against the plan's error bound
and confidence interval — exiting nonzero if any benchmark violates the
bound, which is the CI gate for the sampling contract.

``--list`` prints the campaign's catalog — benchmarks per suite, figure
numbers with titles, scheme names and simulation kernels — and exits.

``--trace-out DIR`` (or ``REPRO_TRACE=DIR``) turns on the
:mod:`repro.obs` tracing sidecar: Chrome-``trace_event`` JSON, an NDJSON
event log and a Prometheus metrics snapshot land under ``DIR`` (one set
of pid-suffixed files per process, pool workers included). Telemetry is
strictly write-only: cache keys, simulated statistics and every artifact
are byte-identical with tracing on or off.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
from typing import Callable, Dict, List

from repro import obs
from repro.common.config import VALID_KERNELS, scheme_name
from repro.common.errors import ConfigurationError
from repro.core import engine
from repro.experiments import figures as fig_mod
from repro.experiments.configs import IQ_64_64
from repro.experiments.report import (
    render_breakdown,
    render_listing,
    render_series,
    render_table,
)
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.experiments.store import ResultStore, default_cache_dir
from repro.sampling import SamplingPlan
from repro.workloads.suites import FP_BENCHMARKS, INT_BENCHMARKS, STRESS_BENCHMARKS

__all__ = [
    "run_campaign",
    "main",
    "ALL_FIGURES",
    "figures_for_suite",
    "figure_rows",
    "export_campaign",
    "render_catalog",
    "sampling_validation",
    "version_payload",
]

#: How many functions the ``--profile`` cumulative-time table prints.
_PROFILE_TOP_N = 25

_SERIES_FIGURES = {2, 3, 4, 6}
_TABLE_FIGURES = {7, 8, 12, 13, 14, 15}
_BREAKDOWN_FIGURES = {9, 10, 11}
ALL_FIGURES = sorted(_SERIES_FIGURES | _TABLE_FIGURES | _BREAKDOWN_FIGURES)

#: Figures whose matrix touches only one benchmark suite. Everything else
#: (the energy/efficiency figures) aggregates over both suites.
_INT_ONLY_FIGURES = {2, 7}
_FP_ONLY_FIGURES = {3, 4, 6, 8}

_TITLES = {
    2: "% IPC loss, IssueFIFO, SPECINT",
    3: "% IPC loss, IssueFIFO, SPECFP",
    4: "% IPC loss, LatFIFO, SPECFP",
    6: "% IPC loss, MixBUFF, SPECFP",
    7: "IPC SPECINT",
    8: "IPC SPECFP",
    9: "Energy breakdown IQ_64_64",
    10: "Energy breakdown IF_distr",
    11: "Energy breakdown MB_distr",
    12: "Normalized power",
    13: "Normalized energy",
    14: "Normalized energy x delay",
    15: "Normalized energy x delay^2",
}


def figures_for_suite(benchmarks: str) -> List[int]:
    """Figure numbers whose matrix fits the ``--benchmarks`` selection."""
    if benchmarks == "int":
        return sorted(_INT_ONLY_FIGURES)
    if benchmarks == "fp":
        return sorted(_FP_ONLY_FIGURES)
    return ALL_FIGURES


def _generator(number: int) -> Callable[[ExperimentRunner], Dict]:
    return getattr(fig_mod, f"figure{number}")


def figure_rows(number: int, data: Dict) -> List[Dict]:
    """Flatten one figure's data into CSV-friendly records."""
    title = _TITLES[number]
    rows: List[Dict] = []
    if number in _SERIES_FIGURES:
        for series, value in data.items():
            rows.append({"figure": number, "title": title,
                         "series": series, "value": value})
    elif number in _BREAKDOWN_FIGURES:
        for suite, components in data.items():
            for component, value in components.items():
                rows.append({"figure": number, "title": title, "suite": suite,
                             "component": component, "value": value})
    else:
        for column, cells in data.items():
            for row, value in cells.items():
                rows.append({"figure": number, "title": title, "column": column,
                             "row": row, "value": value})
    return rows


def export_campaign(
    runner: ExperimentRunner, figure_numbers: List[int], fmt: str, path: str
) -> str:
    """Write the figures' data as a JSON or CSV artifact; returns the path.

    Reuses the exploration subsystem's atomic writers; with a prefetched
    runner the generators replay from the warm memory cache, so the
    export costs no simulations.
    """
    from repro.explore.artifacts import write_csv, write_json

    if fmt == "json":
        payload = {
            f"figure_{number}": {
                "title": _TITLES[number],
                "data": _generator(number)(runner),
            }
            for number in figure_numbers
        }
        return str(write_json(path, payload))
    rows: List[Dict] = []
    for number in figure_numbers:
        rows.extend(figure_rows(number, _generator(number)(runner)))
    return str(write_csv(path, rows))


def version_payload() -> Dict[str, object]:
    """Everything that identifies this simulator build's cache namespace.

    The source-derived version tags are the levers behind every
    "warm rerun = 0 simulations" guarantee, so cache debugging starts
    with comparing them between two processes. This payload is shared
    verbatim by ``campaign --version-tag`` and the service's
    ``GET /v1/version`` endpoint — byte-identical JSON from both, by
    construction, so CLI-vs-service cache mismatches are diagnosable
    with one diff.
    """
    from repro.backends import BACKENDS
    from repro.experiments.store import SAMPLING_VERSION_TAG, SIMULATOR_VERSION_TAG

    return {
        "simulator_version_tag": SIMULATOR_VERSION_TAG,
        "sampling_version_tag": SAMPLING_VERSION_TAG,
        "kernels": list(VALID_KERNELS),
        "backends": {
            name: type(backend).__name__
            for name, backend in sorted(BACKENDS.items())
        },
    }


def render_catalog() -> str:
    """The campaign's discoverable inputs, as a deterministic listing.

    Scheme names are collected from the full figure matrix, so the list
    is exactly what ``--schemes`` accepts; the stress benchmarks are
    listed too because the shared profile registry (and the exploration
    CLI) accepts them even though no paper figure uses them.
    """
    schemes = sorted(
        {scheme_name(scheme) for __, scheme in fig_mod.required_runs(ALL_FIGURES)}
    )
    return render_listing(
        "Campaign catalog",
        {
            "benchmarks (int)": INT_BENCHMARKS,
            "benchmarks (fp)": FP_BENCHMARKS,
            "benchmarks (stress, exploration-only)": STRESS_BENCHMARKS,
            "figures": [f"{number}: {_TITLES[number]}" for number in ALL_FIGURES],
            "schemes": schemes,
            "kernels": list(VALID_KERNELS),
            "execution modes": ["full (default)", "sampled (--sampling)"],
        },
    )


def sampling_validation(
    scale: RunScale,
    store,
    plan: SamplingPlan,
    benchmarks: List[str],
    workers: int = 0,
    kernel: str = None,
) -> Dict[str, Dict[str, float]]:
    """Sampled-vs-full error per benchmark under the Section 4 baseline.

    Runs each benchmark twice — full detailed simulation and the sampled
    execution mode — through two runners sharing the same store (the
    plan keeps their keys disjoint), and reports per benchmark: both
    IPCs, the relative error in percent, the reported confidence-
    interval halfwidth in percent, the plan's bound, and the fraction of
    instructions the sampled run simulated in detail.
    """
    full_runner = ExperimentRunner(scale, store=store, workers=workers, kernel=kernel)
    sampled_runner = ExperimentRunner(
        scale, store=store, workers=workers, kernel=kernel, sampling=plan
    )
    pairs = [(benchmark, IQ_64_64) for benchmark in benchmarks]
    full_runner.prefetch(pairs, workers=workers)
    sampled_runner.prefetch(pairs, workers=workers)
    table: Dict[str, Dict[str, float]] = {
        "full_ipc": {},
        "sampled_ipc": {},
        "err_pct": {},
        "ci_pct": {},
        "bound_pct": {},
        "detail_pct": {},
    }
    for benchmark in benchmarks:
        full = full_runner.run(benchmark, IQ_64_64)
        sampled = sampled_runner.sampled_result(benchmark, IQ_64_64)
        estimate = sampled.estimates["ipc"]
        table["full_ipc"][benchmark] = full.ipc
        table["sampled_ipc"][benchmark] = estimate.mean
        table["err_pct"][benchmark] = (
            100.0 * abs(estimate.mean - full.ipc) / full.ipc
        )
        table["ci_pct"][benchmark] = 100.0 * estimate.relative_halfwidth
        table["bound_pct"][benchmark] = 100.0 * plan.target_relative_error
        table["detail_pct"][benchmark] = (
            100.0 * sampled.detailed_instructions / scale.num_instructions
        )
    return table


def run_campaign(
    runner: ExperimentRunner,
    figure_numbers: List[int],
    workers: int = 0,
) -> Dict[int, str]:
    """Generate and render the requested figures; returns text per figure.

    The figures' full (benchmark, scheme) matrix is prefetched first —
    in parallel when ``workers > 1`` — so the generators themselves only
    read the warm cache.
    """
    for number in figure_numbers:
        if number not in _TITLES:
            raise ValueError(f"unknown figure {number}; known: {ALL_FIGURES}")
    runner.prefetch(fig_mod.required_runs(figure_numbers), workers=workers)
    rendered: Dict[int, str] = {}
    for number in figure_numbers:
        data = _generator(number)(runner)
        title = f"Figure {number}. {_TITLES[number]}"
        if number in _SERIES_FIGURES:
            rendered[number] = render_series(title, data)
        elif number in _BREAKDOWN_FIGURES:
            rendered[number] = render_breakdown(title, data)
        else:
            rendered[number] = render_table(title, data)
    return rendered


def main(argv: List[str] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=4000,
                        help="dynamic instructions per run (half is warm-up)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--figures", type=str, default=None,
                        help="comma-separated figure numbers (default: all "
                             "compatible with --benchmarks)")
    parser.add_argument("--schemes", type=str, default=None,
                        help="comma-separated scheme names (paper naming, "
                             "e.g. IQ_64_64,IF_distr): simulate only those "
                             "pairs of the selected figures and skip "
                             "rendering (a warm-only sweep)")
    parser.add_argument("--workers", type=int, default=0,
                        help="simulation worker processes (0 = serial)")
    parser.add_argument("--benchmarks", choices=("int", "fp", "all"),
                        default="all",
                        help="restrict the sweep to one SPEC suite "
                             "(int: figures 2,7; fp: figures 3,4,6,8)")
    parser.add_argument("--kernel", choices=tuple(VALID_KERNELS),
                        default="skip",
                        help="simulation kernel: event-driven cycle "
                             "skipping (default), the naive per-cycle "
                             "loop, or the vectorized/specialized "
                             "backends; results are bit-identical")
    parser.add_argument("--profile", type=str, nargs="?", const="campaign.prof",
                        default=None, metavar="FILE",
                        help="run the campaign under cProfile: dump pstats "
                             "data to FILE (default campaign.prof, next to "
                             "the other artifacts) and print the top "
                             "functions by cumulative time")
    parser.add_argument("--sampling", type=str, nargs="?", const="",
                        default=None, metavar="SPEC",
                        help="sampled execution mode: statistics become "
                             "error-bounded estimates from detailed slices "
                             "+ functional fast-forward. SPEC is "
                             "key=value,... over mode,slices,slice,warmup,"
                             "confidence,seed,error (bare --sampling = "
                             "plan defaults)")
    parser.add_argument("--sampling-validate", action="store_true",
                        help="with --sampling: simulate every selected "
                             "benchmark full AND sampled under the "
                             "baseline scheme, print the per-benchmark "
                             "sampled-vs-full IPC error table, and exit "
                             "nonzero if any benchmark violates the "
                             "plan's relative-error bound")
    parser.add_argument("--list", action="store_true",
                        help="print available benchmarks, figures, schemes "
                             "and kernels, then exit")
    parser.add_argument("--version-tag", action="store_true",
                        help="print the simulator/sampling version tags and "
                             "the kernel/backend registry as JSON, then exit "
                             "(byte-identical to the service's GET "
                             "/v1/version — the cache-debugging parity "
                             "check between CLI and service)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result-store directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-abella04)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result store entirely "
                             "(forces a cold, non-persisting run)")
    parser.add_argument("--output", choices=("json", "csv"), default=None,
                        help="also export the rendered figures' data as an "
                             "artifact (JSON keeps figure shapes, CSV "
                             "flattens to records)")
    parser.add_argument("--output-path", type=str, default=None,
                        help="artifact path for --output (default "
                             "campaign.json / campaign.csv)")
    parser.add_argument("--trace-out", type=str, default=None, metavar="DIR",
                        help="write observability sidecar files under DIR: "
                             "Chrome trace_event JSON (Perfetto-loadable), "
                             "an NDJSON event log and a Prometheus metrics "
                             "snapshot, pid-suffixed per process. Purely "
                             "additive: results and artifacts are "
                             "byte-identical with or without it "
                             "(equivalent: REPRO_TRACE=DIR)")
    args = parser.parse_args(argv)

    if args.list or args.version_tag:
        # --list and --version-tag are pure catalog queries; accepting
        # other flags next to them would silently ignore those flags (the
        # early return below never reaches the run path), so any other
        # non-default flag is an error.
        query = "--version-tag" if args.version_tag else "--list"
        other = (
            "scale", "seed", "figures", "schemes", "workers", "benchmarks",
            "kernel", "sampling", "sampling_validate", "cache_dir",
            "no_cache", "output", "output_path", "profile", "trace_out",
            "list" if args.version_tag else "version_tag",
        )
        ignored = [
            "--" + name.replace("_", "-")
            for name in other
            if getattr(args, name) != parser.get_default(name)
        ]
        if ignored:
            parser.error(
                f"{query} prints and exits; it cannot be combined "
                f"with other flags ({', '.join(ignored)})"
            )
        if args.version_tag:
            print(json.dumps(version_payload(), indent=2, sort_keys=True))
        else:
            print(render_catalog())
        return

    if args.output_path and not args.output:
        parser.error("--output-path requires --output json|csv")

    plan = None
    if args.sampling is not None:
        try:
            plan = SamplingPlan.from_spec(args.sampling)
        except ConfigurationError as exc:
            parser.error(f"--sampling: {exc}")
    if args.sampling_validate:
        if plan is None:
            parser.error("--sampling-validate requires --sampling")
        if args.schemes or args.output or args.figures:
            parser.error(
                "--sampling-validate is a standalone mode; it cannot be "
                "combined with --figures, --schemes or --output"
            )

    if args.figures:
        try:
            numbers = [int(x) for x in args.figures.split(",")]
        except ValueError:
            parser.error(
                f"--figures must be comma-separated numbers, got {args.figures!r}"
            )
        unknown = [n for n in numbers if n not in _TITLES]
        if unknown:
            parser.error(f"unknown figures {unknown}; known: {ALL_FIGURES}")
        allowed = set(figures_for_suite(args.benchmarks))
        bad = [n for n in numbers if n not in allowed]
        if bad:
            parser.error(
                f"figures {bad} need benchmarks outside --benchmarks={args.benchmarks}"
            )
    else:
        numbers = figures_for_suite(args.benchmarks)

    if args.no_cache:
        store = False
    else:
        store = ResultStore(args.cache_dir) if args.cache_dir else ResultStore(default_cache_dir())
    scale = RunScale(num_instructions=args.scale,
                     warmup_instructions=args.scale // 2,
                     seed=args.seed)
    try:
        scale.validate()
    except ValueError as exc:
        parser.error(f"--scale {args.scale}: {exc}")
    if plan is not None:
        try:
            # Fail fast if the plan does not fit the actual run scale's
            # measured region (everything past the scale's warm-up).
            plan.slice_windows(scale.warmup_instructions, scale.num_instructions)
        except ConfigurationError as exc:
            parser.error(f"--sampling: {exc}")
    if args.trace_out:
        obs.configure(args.trace_out)
    try:
        if args.profile:
            _run_profiled(args.profile, _run_selected,
                          args, parser, scale, store, plan, numbers)
        else:
            _run_selected(args, parser, scale, store, plan, numbers)
    finally:
        obs.flush()


def _run_profiled(path: str, func: Callable, *call_args) -> None:
    """Run ``func`` under :mod:`cProfile`, then report.

    Dumps the raw pstats data to ``path`` (loadable with ``python -m
    pstats`` or snakeviz) and prints the top functions by cumulative
    time. The dump happens even when the run exits nonzero — the
    sampling-validate gate raises ``SystemExit`` — so failing runs can
    still be profiled.
    """
    profiler = cProfile.Profile()
    try:
        profiler.runcall(func, *call_args)
    finally:
        profiler.dump_stats(path)
        print(f"\nprofile: pstats dump at {path}; top {_PROFILE_TOP_N} "
              f"functions by cumulative time:")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(
            _PROFILE_TOP_N
        )


def _run_selected(args, parser, scale, store, plan, numbers) -> None:
    """Execute the selected campaign mode (after all argument vetting)."""
    # Footer telemetry is registry-backed: snapshot the per-kernel cycle
    # totals up front and report the growth, instead of resetting the
    # engine's process-global shim (which other harnesses may be using).
    kernel_before = obs.kernel_totals()
    started = obs.clock.perf_counter()
    if args.sampling_validate:
        if args.benchmarks == "int":
            benchmarks = list(INT_BENCHMARKS)
        elif args.benchmarks == "fp":
            benchmarks = list(FP_BENCHMARKS)
        else:
            benchmarks = list(INT_BENCHMARKS) + list(FP_BENCHMARKS)
        table = sampling_validation(
            scale, store, plan, benchmarks,
            workers=args.workers, kernel=args.kernel,
        )
        print(render_table(
            "Sampled vs full IPC (baseline IQ_64_64)", table
        ))
        violations = [
            benchmark
            for benchmark in benchmarks
            if table["err_pct"][benchmark] > table["bound_pct"][benchmark]
        ]
        elapsed = obs.clock.perf_counter() - started
        print()
        if violations:
            print(
                f"error-bound VIOLATED on {len(violations)}/{len(benchmarks)} "
                f"benchmarks ({','.join(violations)}) in {elapsed:.1f}s"
            )
            raise SystemExit(1)
        print(
            f"error-bound OK: all {len(benchmarks)} benchmarks within "
            f"{100.0 * plan.target_relative_error:.1f}% in {elapsed:.1f}s"
        )
        return
    runner = ExperimentRunner(scale, store=store, workers=args.workers,
                              kernel=args.kernel, sampling=plan)
    if args.schemes and args.no_cache:
        parser.error(
            "--schemes is a warm-only sweep (it renders nothing); combining it "
            "with --no-cache would simulate and then discard every result"
        )
    if args.schemes and args.output:
        parser.error(
            "--schemes is a warm-only sweep (it renders no figures), so there "
            "is no figure data for --output to export"
        )
    if args.schemes:
        wanted = [name.strip() for name in args.schemes.split(",") if name.strip()]
        matrix = fig_mod.required_runs(numbers)
        known = sorted({scheme_name(scheme) for __, scheme in matrix})
        unknown = [name for name in wanted if name not in known]
        if unknown:
            parser.error(
                f"unknown schemes {unknown} for these figures; known: {known}"
            )
        pairs = [
            (benchmark, scheme)
            for benchmark, scheme in matrix
            if scheme_name(scheme) in wanted
        ]
        runner.prefetch(pairs, workers=args.workers)
        print(
            f"warmed {len(pairs)} (benchmark, scheme) pairs for schemes "
            f"{','.join(wanted)} of figures {','.join(map(str, numbers))}"
        )
    else:
        for number in numbers:
            with obs.span("campaign.figure", figure=number):
                print(run_campaign(runner, [number], workers=args.workers)[number])
            print()
        if args.output:
            path = args.output_path or f"campaign.{args.output}"
            written = export_campaign(runner, numbers, args.output, path)
            print(f"exported {len(numbers)} figures to {written}")
    elapsed = obs.clock.perf_counter() - started
    stats = runner.cache_stats()
    kernel_totals = obs.kernel_totals()
    kernel_tel = engine.KernelTelemetry(
        **{name: kernel_totals[name] - kernel_before[name]
           for name in kernel_totals}
    )
    print(
        f"campaign: {len(numbers)} figures in {elapsed:.1f}s — "
        f"{stats['simulations']} simulated, {stats['disk_hits']} disk hits, "
        f"{stats['memory_hits']} memory hits"
        + ("" if args.no_cache else f" (store: {runner.store.root})")
    )
    if kernel_tel.total_cycles:
        skipped_pct = 100.0 * kernel_tel.skipped_cycles / kernel_tel.total_cycles
        print(
            f"kernel [{args.kernel}]: {kernel_tel.executed_cycles} cycles "
            f"executed, {kernel_tel.skipped_cycles} skipped "
            f"({skipped_pct:.1f}%) in {kernel_tel.skip_spans} spans"
            + (
                f", {kernel_tel.drained_broadcasts} broadcasts drained"
                if kernel_tel.drained_broadcasts
                else ""
            )
        )
    if plan is not None:
        detailed = sum(
            window.detail_end - window.detail_start
            for window in plan.slice_windows(
                scale.warmup_instructions, scale.num_instructions
            )
        )
        print(
            f"sampling [{plan.mode}]: {plan.num_slices} slices x "
            f"{plan.slice_instructions} (+{plan.warmup_instructions} warm-up) "
            f"per run — {detailed} of {args.scale} "
            f"instructions detailed, confidence {plan.confidence:.2f}, "
            f"target error {100.0 * plan.target_relative_error:.1f}%"
        )


if __name__ == "__main__":
    main()
