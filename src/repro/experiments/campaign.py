"""Run the full figure campaign and render a text report.

Command line::

    python -m repro.experiments.campaign [--scale N] [--figures 2,3,8]

This is the batch entry point behind the per-figure benchmarks: it
shares one cached runner across all figures, so the whole campaign
costs one simulation per (benchmark, scheme) pair.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List

from repro.experiments import figures as fig_mod
from repro.experiments.report import render_breakdown, render_series, render_table
from repro.experiments.runner import ExperimentRunner, RunScale

__all__ = ["run_campaign", "main"]

_SERIES_FIGURES = {2, 3, 4, 6}
_TABLE_FIGURES = {7, 8, 12, 13, 14, 15}
_BREAKDOWN_FIGURES = {9, 10, 11}
ALL_FIGURES = sorted(_SERIES_FIGURES | _TABLE_FIGURES | _BREAKDOWN_FIGURES)

_TITLES = {
    2: "% IPC loss, IssueFIFO, SPECINT",
    3: "% IPC loss, IssueFIFO, SPECFP",
    4: "% IPC loss, LatFIFO, SPECFP",
    6: "% IPC loss, MixBUFF, SPECFP",
    7: "IPC SPECINT",
    8: "IPC SPECFP",
    9: "Energy breakdown IQ_64_64",
    10: "Energy breakdown IF_distr",
    11: "Energy breakdown MB_distr",
    12: "Normalized power",
    13: "Normalized energy",
    14: "Normalized energy x delay",
    15: "Normalized energy x delay^2",
}


def _generator(number: int) -> Callable[[ExperimentRunner], Dict]:
    return getattr(fig_mod, f"figure{number}")


def run_campaign(
    runner: ExperimentRunner, figure_numbers: List[int]
) -> Dict[int, str]:
    """Generate and render the requested figures; returns text per figure."""
    rendered: Dict[int, str] = {}
    for number in figure_numbers:
        if number not in _TITLES:
            raise ValueError(f"unknown figure {number}; known: {ALL_FIGURES}")
        data = _generator(number)(runner)
        title = f"Figure {number}. {_TITLES[number]}"
        if number in _SERIES_FIGURES:
            rendered[number] = render_series(title, data)
        elif number in _BREAKDOWN_FIGURES:
            rendered[number] = render_breakdown(title, data)
        else:
            rendered[number] = render_table(title, data)
    return rendered


def main(argv: List[str] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=4000,
                        help="dynamic instructions per run (half is warm-up)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--figures", type=str, default=None,
                        help="comma-separated figure numbers (default: all)")
    args = parser.parse_args(argv)

    numbers = (
        [int(x) for x in args.figures.split(",")] if args.figures else ALL_FIGURES
    )
    runner = ExperimentRunner(
        RunScale(num_instructions=args.scale,
                 warmup_instructions=args.scale // 2,
                 seed=args.seed)
    )
    for number in numbers:
        print(run_campaign(runner, [number])[number])
        print()


if __name__ == "__main__":
    main()
