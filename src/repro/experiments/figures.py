"""One generator per table/figure of the paper's evaluation.

Each ``figureN`` function returns plain dictionaries with the same series
the paper plots; :mod:`repro.experiments.report` renders them as text.
All functions take an :class:`~repro.experiments.runner.ExperimentRunner`
so callers control the scale and share the run cache across figures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.common.config import IssueSchemeConfig, default_config
from repro.common.stats import harmonic_mean
from repro.energy.breakdown import breakdown_fractions, energy_breakdown
from repro.energy.metrics import (
    EfficiencyMetrics,
    calibrate_rest_of_chip,
    compute_metrics,
)
from repro.energy.model import EnergyModel
from repro.experiments.configs import (
    BASELINE_UNBOUNDED,
    IF_DISTR,
    IQ_64_64,
    MB_DISTR,
    fig2_configs,
    fig3_configs,
    fig4_configs,
    fig6_configs,
)
from repro.experiments.runner import ExperimentRunner
from repro.workloads.suites import FP_BENCHMARKS, INT_BENCHMARKS

__all__ = [
    "figure2",
    "figure3",
    "figure4",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "required_runs",
    "SCHEMES_SECTION4",
]

#: The three schemes Section 4 compares, in the paper's legend order.
SCHEMES_SECTION4: Mapping[str, IssueSchemeConfig] = {
    "IQ_64_64": IQ_64_64,
    "IF_distr": IF_DISTR,
    "MB_distr": MB_DISTR,
}


def _loss_sweep(
    runner: ExperimentRunner,
    configs: Mapping[str, IssueSchemeConfig],
    benchmarks: List[str],
) -> Dict[str, float]:
    """Average IPC loss (%) w.r.t. the unbounded baseline per config."""
    return {
        name: runner.average_loss_pct(benchmarks, scheme, BASELINE_UNBOUNDED)
        for name, scheme in configs.items()
    }


def figure2(runner: ExperimentRunner) -> Dict[str, float]:
    """IPC loss of IssueFIFO vs unbounded baseline, SPECINT."""
    return _loss_sweep(runner, fig2_configs(), INT_BENCHMARKS)


def figure3(runner: ExperimentRunner) -> Dict[str, float]:
    """IPC loss of IssueFIFO vs unbounded baseline, SPECFP."""
    return _loss_sweep(runner, fig3_configs(), FP_BENCHMARKS)


def figure4(runner: ExperimentRunner) -> Dict[str, float]:
    """IPC loss of LatFIFO vs unbounded baseline, SPECFP."""
    return _loss_sweep(runner, fig4_configs(), FP_BENCHMARKS)


def figure6(runner: ExperimentRunner) -> Dict[str, float]:
    """IPC loss of MixBUFF vs unbounded baseline, SPECFP."""
    return _loss_sweep(runner, fig6_configs(), FP_BENCHMARKS)


def _ipc_bars(runner: ExperimentRunner, benchmarks: List[str]) -> Dict[str, Dict[str, float]]:
    """Per-benchmark IPC for the three Section 4 schemes + HARMEAN."""
    result: Dict[str, Dict[str, float]] = {}
    for scheme_name, scheme in SCHEMES_SECTION4.items():
        per_bench = {b: runner.ipc(b, scheme) for b in benchmarks}
        per_bench["HARMEAN"] = harmonic_mean(per_bench.values())
        result[scheme_name] = per_bench
    return result


def figure7(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """IPC per integer benchmark: IQ_64_64 vs IF_distr vs MB_distr."""
    return _ipc_bars(runner, INT_BENCHMARKS)


def figure8(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """IPC per FP benchmark: IQ_64_64 vs IF_distr vs MB_distr."""
    return _ipc_bars(runner, FP_BENCHMARKS)


def _suite_breakdown(
    runner: ExperimentRunner, scheme: IssueSchemeConfig, benchmarks: List[str]
) -> Dict[str, float]:
    """Suite-aggregated issue-logic energy fractions per component."""
    model = EnergyModel(default_config(scheme))
    totals: Dict[str, float] = {}
    for benchmark in benchmarks:
        stats = runner.run(benchmark, scheme)
        for component, energy in energy_breakdown(model, stats.events.as_dict()).items():
            totals[component] = totals.get(component, 0.0) + energy
    return breakdown_fractions(totals)


def _breakdown_figure(
    runner: ExperimentRunner, scheme: IssueSchemeConfig
) -> Dict[str, Dict[str, float]]:
    return {
        "SPECINT": _suite_breakdown(runner, scheme, INT_BENCHMARKS),
        "SPECFP": _suite_breakdown(runner, scheme, FP_BENCHMARKS),
    }


def figure9(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """Energy breakdown for the IQ_64_64 baseline."""
    return _breakdown_figure(runner, IQ_64_64)


def figure10(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """Energy breakdown for IF_distr."""
    return _breakdown_figure(runner, IF_DISTR)


def figure11(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """Energy breakdown for MB_distr."""
    return _breakdown_figure(runner, MB_DISTR)


def _efficiency(
    runner: ExperimentRunner, benchmark: str
) -> Dict[str, EfficiencyMetrics]:
    """Efficiency metrics for the three schemes on one benchmark.

    The rest-of-chip model is calibrated per benchmark on the IQ_64_64
    baseline so that the issue queue is 23% of chip energy there.
    """
    baseline_stats = runner.run(benchmark, IQ_64_64)
    baseline_model = EnergyModel(default_config(IQ_64_64))
    rest = calibrate_rest_of_chip(
        baseline_model.energy_pj(baseline_stats.events.as_dict()),
        baseline_stats.cycles,
        baseline_stats.committed_instructions,
    )
    out: Dict[str, EfficiencyMetrics] = {}
    for scheme_name, scheme in SCHEMES_SECTION4.items():
        stats = runner.run(benchmark, scheme)
        model = EnergyModel(default_config(scheme))
        out[scheme_name] = compute_metrics(model, stats, rest)
    return out


def _normalized_metric(runner: ExperimentRunner, metric: str) -> Dict[str, Dict[str, float]]:
    """Suite-averaged normalized metric per scheme (baseline = 1.0)."""
    result: Dict[str, Dict[str, float]] = {}
    for suite_name, benchmarks in (("SPECINT", INT_BENCHMARKS), ("SPECFP", FP_BENCHMARKS)):
        sums = {name: 0.0 for name in SCHEMES_SECTION4}
        for benchmark in benchmarks:
            metrics = _efficiency(runner, benchmark)
            baseline = metrics["IQ_64_64"]
            for scheme_name, m in metrics.items():
                sums[scheme_name] += m.normalized_to(baseline)[metric]
        result[suite_name] = {
            name: total / len(benchmarks) for name, total in sums.items()
        }
    return result


def figure12(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """Normalized issue-queue power dissipation."""
    return _normalized_metric(runner, "power")


def figure13(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """Normalized issue-queue energy consumption."""
    return _normalized_metric(runner, "energy")


def figure14(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """Normalized whole-chip energy·delay (IQ = 23% of chip power)."""
    return _normalized_metric(runner, "energy_delay")


def figure15(runner: ExperimentRunner) -> Dict[str, Dict[str, float]]:
    """Normalized whole-chip energy·delay²."""
    return _normalized_metric(runner, "energy_delay2")


def _figure_matrix(number: int) -> tuple:
    """(scheme configs, suites) one figure's generator will simulate."""
    section4 = list(SCHEMES_SECTION4.values())
    if number == 2:
        return [BASELINE_UNBOUNDED] + list(fig2_configs().values()), (INT_BENCHMARKS,)
    if number == 3:
        return [BASELINE_UNBOUNDED] + list(fig3_configs().values()), (FP_BENCHMARKS,)
    if number == 4:
        return [BASELINE_UNBOUNDED] + list(fig4_configs().values()), (FP_BENCHMARKS,)
    if number == 6:
        return [BASELINE_UNBOUNDED] + list(fig6_configs().values()), (FP_BENCHMARKS,)
    if number == 7:
        return section4, (INT_BENCHMARKS,)
    if number == 8:
        return section4, (FP_BENCHMARKS,)
    if number == 9:
        return [IQ_64_64], (INT_BENCHMARKS, FP_BENCHMARKS)
    if number == 10:
        return [IF_DISTR], (INT_BENCHMARKS, FP_BENCHMARKS)
    if number == 11:
        return [MB_DISTR], (INT_BENCHMARKS, FP_BENCHMARKS)
    if number in (12, 13, 14, 15):
        return section4, (INT_BENCHMARKS, FP_BENCHMARKS)
    raise ValueError(f"no simulation matrix for figure {number}")


def required_runs(figure_numbers) -> List:
    """Deduplicated (benchmark, scheme) pairs the given figures simulate.

    This is the fan-out frontier for a parallel campaign: prefetching
    these pairs (``ExperimentRunner.prefetch``) warms the memory cache so
    the figure generators themselves never trigger a simulation. The
    order is deterministic — figures in the given order, suites in paper
    order, schemes in legend order.
    """
    pairs: List = []
    seen = set()
    for number in figure_numbers:
        schemes, suites = _figure_matrix(number)
        for suite in suites:
            for benchmark in suite:
                for scheme in schemes:
                    pair = (benchmark, scheme)
                    if pair not in seen:
                        seen.add(pair)
                        pairs.append(pair)
    return pairs
