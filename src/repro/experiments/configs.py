"""The named scheme configurations the paper evaluates."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.config import IssueSchemeConfig

__all__ = [
    "BASELINE_UNBOUNDED",
    "IQ_64_64",
    "IF_DISTR",
    "MB_DISTR",
    "fig2_configs",
    "fig3_configs",
    "fig4_configs",
    "fig6_configs",
]

#: Section 3 reference: issue queue as large as the reorder buffer.
BASELINE_UNBOUNDED = IssueSchemeConfig(kind="conventional", unbounded=True)

#: Section 4 baseline: 64-entry integer + 64-entry FP conventional queues.
IQ_64_64 = IssueSchemeConfig(
    kind="conventional", int_queue_entries=64, fp_queue_entries=64
)

#: IssueFIFO_8x8_8x16 with distributed functional units (Section 4.2).
IF_DISTR = IssueSchemeConfig(
    kind="issuefifo",
    int_queues=8,
    int_queue_entries=8,
    fp_queues=8,
    fp_queue_entries=16,
    distributed_fus=True,
)

#: MixBUFF_8x8_8x16, distributed FUs, at most 8 chains per queue.
MB_DISTR = IssueSchemeConfig(
    kind="mixbuff",
    int_queues=8,
    int_queue_entries=8,
    fp_queues=8,
    fp_queue_entries=16,
    distributed_fus=True,
    max_chains_per_queue=8,
)

_SWEEP: List[Tuple[int, int]] = [(8, 8), (8, 16), (10, 8), (10, 16), (12, 8), (12, 16)]


def fig2_configs() -> Dict[str, IssueSchemeConfig]:
    """IssueFIFO sweeping the *integer* queues (FP fixed at 16x16)."""
    return {
        f"IssueFIFO_{q}x{e}_16x16": IssueSchemeConfig(
            kind="issuefifo",
            int_queues=q,
            int_queue_entries=e,
            fp_queues=16,
            fp_queue_entries=16,
        )
        for q, e in _SWEEP
    }


def _fp_sweep(kind: str) -> Dict[str, IssueSchemeConfig]:
    """A scheme sweeping the *FP* queues (integer fixed at 16x16)."""
    pretty = {"issuefifo": "IssueFIFO", "latfifo": "LatFIFO", "mixbuff": "MixBUFF"}[kind]
    return {
        f"{pretty}_16x16_{q}x{e}": IssueSchemeConfig(
            kind=kind,
            int_queues=16,
            int_queue_entries=16,
            fp_queues=q,
            fp_queue_entries=e,
        )
        for q, e in _SWEEP
    }


def fig3_configs() -> Dict[str, IssueSchemeConfig]:
    """IssueFIFO sweeping the FP queues (Figure 3)."""
    return _fp_sweep("issuefifo")


def fig4_configs() -> Dict[str, IssueSchemeConfig]:
    """LatFIFO sweeping the FP queues (Figure 4)."""
    return _fp_sweep("latfifo")


def fig6_configs() -> Dict[str, IssueSchemeConfig]:
    """MixBUFF sweeping the FP queues (Figure 6)."""
    return _fp_sweep("mixbuff")
