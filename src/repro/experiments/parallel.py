"""Fan a campaign's (benchmark, scheme) matrix across worker processes.

The simulator is pure Python and single-threaded, so a campaign's only
free speedup is process-level parallelism: each (benchmark, scheme) pair
is an independent simulation. :func:`simulate_matrix` maps the matrix
over a ``multiprocessing`` pool with ``chunksize=1`` (pairs have very
uneven cost — *mcf* at 2 MB working set vs *sixtrack* cache-resident)
and returns results **in input order**, so parallel and serial campaigns
produce identical result sequences.

Traces are shared, not regenerated: when a spill directory is available
(see :mod:`repro.workloads.spill`) the parent materializes each unique
trace to disk once and workers deserialize it; without one, workers fall
back to a per-process trace cache keyed on (benchmark, length, seed).
Traces are deterministic in those inputs, so every path yields the same
stream.

Results cross the process boundary as ``SimulationStats.to_dict()``
payloads — the same representation the disk store persists — so the
parallel path exercises exactly the serialization the cache relies on.
Each payload also carries the worker's kernel telemetry (cycles executed
vs. skipped), which the parent folds into
:data:`repro.core.engine.GLOBAL_TELEMETRY` so campaign-level reporting
sees the whole fleet.
"""

from __future__ import annotations

import multiprocessing
import signal
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.common.config import IssueSchemeConfig, ProcessorConfig
from repro.common.stats import SimulationStats
from repro.core import engine

#: Mirrors :data:`repro.experiments.runner.SchemeOrConfig` (kept local to
#: avoid importing the runner in the parent before workers fork/spawn).
_SchemeOrConfig = Union[IssueSchemeConfig, ProcessorConfig]

__all__ = ["simulate_matrix", "worker_count"]

#: Per-worker trace cache, keyed by (benchmark, num_instructions, seed).
#: Module-global so it survives across tasks within one worker process.
_WORKER_TRACES: Dict[Tuple[str, int, int], object] = {}


def worker_count(requested: int = 0) -> int:
    """Effective worker count: ``requested``, or all-but-one CPU if 0."""
    if requested > 0:
        return requested
    return max(1, (multiprocessing.cpu_count() or 2) - 1)


def _init_worker() -> None:
    """Pool initializer: workers ignore SIGINT.

    A terminal Ctrl-C delivers SIGINT to the whole process group; if the
    workers also raised ``KeyboardInterrupt`` the pool would die out from
    under the parent mid-drain. Shutdown is the parent's decision alone:
    it either lets the in-flight batch finish or terminates the pool
    explicitly (see :func:`simulate_matrix`).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


#: How often the parent wakes while waiting on a batch. Purely a
#: responsiveness knob for interrupt handling — ``AsyncResult.wait`` with
#: no timeout can block in an uninterruptible C-level wait.
_DRAIN_POLL_SECONDS = 0.25


def _drain_pool(pool, async_result, sweep_roots: Sequence[Optional[str]]):
    """Wait for a batch, draining gracefully on interrupt.

    Normal path: poll until every job is done and return the payload
    list. On ``KeyboardInterrupt`` (SIGINT reached the parent) the pool
    is terminated — the workers ignored the signal and would otherwise
    keep simulating — joined, and any atomic-write temp files the killed
    workers orphaned under ``sweep_roots`` (trace spills, checkpoints)
    are swept immediately before the interrupt propagates, so an
    interrupted campaign leaves no debris behind.
    """
    try:
        while not async_result.ready():
            async_result.wait(_DRAIN_POLL_SECONDS)
        return async_result.get()
    except KeyboardInterrupt:
        pool.terminate()
        pool.join()
        from repro.experiments.store import sweep_stale_tmp

        for root in sweep_roots:
            if root is not None:
                sweep_stale_tmp(root, max_age=0.0)
        raise


def _load_worker_trace(benchmark: str, scale, trace_dir: Optional[str]):
    """Resolve a benchmark's trace: process cache → spill file → None."""
    trace_key = (benchmark, scale.num_instructions, scale.seed)
    trace = _WORKER_TRACES.get(trace_key)
    if trace is None and trace_dir is not None:
        from repro.workloads.spill import load_trace
        from repro.workloads.suites import get_profile

        trace = load_trace(
            trace_dir, get_profile(benchmark), scale.num_instructions, scale.seed
        )
    return trace


def _simulate_to_payload(job: tuple) -> dict:
    """Worker entry point: simulate one pair, return stats + telemetry.

    Sampled jobs (a non-``None`` plan in the job tuple) run the sampled
    execution mode and additionally carry the estimate record — the same
    JSON representation the disk store persists.
    """
    # Imported here (not at module top) so the parent's import of this
    # module stays cheap and spawn-based workers re-import lazily.
    from repro.experiments.runner import (
        resolve_config,
        scheme_label,
        simulate_pair,
        simulate_sampled_pair,
    )

    benchmark, scheme, scale, kernel, trace_dir, sampling, checkpoint_dir = job
    trace = _load_worker_trace(benchmark, scale, trace_dir)
    effective_kernel = kernel or resolve_config(scheme).kernel
    metrics_before = obs.get_registry().snapshot()
    before = engine.GLOBAL_TELEMETRY.as_dict()
    sampled_payload = None
    detailed = None
    with obs.span(
        "worker.simulate",
        benchmark=benchmark,
        scheme=scheme_label(scheme),
        kernel=effective_kernel,
        mode="sampled" if sampling is not None else "full",
    ):
        if sampling is not None:
            sampled, trace = simulate_sampled_pair(
                benchmark,
                scheme,
                scale,
                sampling,
                trace=trace,
                kernel=kernel,
                checkpoint_dir=checkpoint_dir,
            )
            stats = sampled.stats
            sampled_payload = sampled.to_dict()
            detailed = int(sampled.detailed_instructions)
        else:
            stats, trace = simulate_pair(
                benchmark, scheme, scale, trace=trace, kernel=kernel
            )
    after = engine.GLOBAL_TELEMETRY.as_dict()
    _WORKER_TRACES[(benchmark, scale.num_instructions, scale.seed)] = trace
    telemetry = {name: after[name] - before[name] for name in after}
    obs.record_kernel_delta(effective_kernel, telemetry)
    if detailed is not None:
        obs.counter("repro_sampling_detailed_instructions_total").inc(detailed)
        obs.counter("repro_sampling_ffwd_instructions_total").inc(
            max(0, scale.num_instructions - detailed)
        )
    payload = {
        "stats": stats.to_dict(),
        "telemetry": telemetry,
        # Registry growth during this job only: the parent merges it so
        # counters and histograms come out identical to a serial run.
        "metrics": obs.get_registry().delta_since(metrics_before),
    }
    if sampled_payload is not None:
        payload["sampled"] = sampled_payload
    # Pool workers exit via os._exit (no atexit), so persist trace files
    # after every job; a no-op when tracing is off.
    obs.flush()
    return payload


def simulate_matrix(
    pairs: Sequence[Tuple[str, _SchemeOrConfig]],
    scale: "RunScale",
    workers: int,
    kernel: Optional[str] = None,
    trace_dir: Optional[str] = None,
    sampling=None,
    checkpoint_dir: Optional[str] = None,
) -> List:
    """Simulate every (benchmark, scheme) pair; results in input order.

    With ``workers <= 1`` (or a single pair) everything runs in-process
    through the same worker function, so both paths are byte-identical by
    construction. With ``trace_dir`` set, each unique trace is
    materialized there once up front and shared by every worker.

    ``sampling`` (a :class:`~repro.sampling.plan.SamplingPlan`) switches
    every job to the sampled execution mode; the return value is then a
    list of :class:`~repro.sampling.estimator.SampledStats` (estimate
    record plus synthesized stats) instead of plain
    :class:`SimulationStats`, and ``checkpoint_dir`` shares warm-state
    checkpoints across the fleet (atomic writes make concurrent workers
    safe).
    """
    if trace_dir is not None:
        from repro.workloads.spill import materialize_trace
        from repro.workloads.suites import get_profile

        for benchmark in dict.fromkeys(benchmark for benchmark, __ in pairs):
            materialize_trace(
                trace_dir, get_profile(benchmark), scale.num_instructions, scale.seed
            )
    jobs = [
        (benchmark, scheme, scale, kernel, trace_dir, sampling, checkpoint_dir)
        for benchmark, scheme in pairs
    ]
    workers = min(worker_count(workers), len(jobs)) if jobs else 0
    if workers <= 1:
        payloads = [_simulate_to_payload(job) for job in jobs]
        # In-process execution already updated GLOBAL_TELEMETRY and the
        # metrics registry directly — merging would double-count.
        for payload in payloads:
            payload.pop("telemetry", None)
            payload.pop("metrics", None)
    else:
        with multiprocessing.Pool(
            processes=workers, initializer=_init_worker
        ) as pool:
            async_result = pool.map_async(
                _simulate_to_payload, jobs, chunksize=1
            )
            pool.close()
            payloads = _drain_pool(
                pool, async_result, (trace_dir, checkpoint_dir)
            )
        for payload in payloads:
            worker_tel = payload.pop("telemetry", None)
            if worker_tel:
                engine.GLOBAL_TELEMETRY.merge(engine.KernelTelemetry(**worker_tel))
            # Fold each worker's registry delta into the parent: counter
            # and histogram *content* is deterministic (cycle counts,
            # cache events), so the merged totals match a serial run.
            obs.get_registry().merge_delta(payload.pop("metrics", None))
    if sampling is not None:
        from repro.sampling.estimator import SampledStats

        return [
            SampledStats.from_dict(
                payload["sampled"], SimulationStats.from_dict(payload["stats"])
            )
            for payload in payloads
        ]
    return [SimulationStats.from_dict(payload["stats"]) for payload in payloads]
