"""Fan a campaign's (benchmark, scheme) matrix across worker processes.

The simulator is pure Python and single-threaded, so a campaign's only
free speedup is process-level parallelism: each (benchmark, scheme) pair
is an independent simulation. :func:`simulate_matrix` maps the matrix
over a ``multiprocessing`` pool with ``chunksize=1`` (pairs have very
uneven cost — *mcf* at 2 MB working set vs *sixtrack* cache-resident)
and returns results **in input order**, so parallel and serial campaigns
produce identical result sequences.

Workers keep a per-process trace cache: a benchmark's trace is generated
at most once per worker regardless of how many schemes it is simulated
under. Traces are derived deterministically from (profile, length, seed),
so worker-local regeneration cannot diverge from the parent's.

Results cross the process boundary as ``SimulationStats.to_dict()``
payloads — the same representation the disk store persists — so the
parallel path exercises exactly the serialization the cache relies on.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Sequence, Tuple

from repro.common.config import IssueSchemeConfig
from repro.common.stats import SimulationStats

__all__ = ["simulate_matrix", "worker_count"]

#: Per-worker trace cache, keyed by (benchmark, num_instructions, seed).
#: Module-global so it survives across tasks within one worker process.
_WORKER_TRACES: Dict[Tuple[str, int, int], object] = {}


def worker_count(requested: int = 0) -> int:
    """Effective worker count: ``requested``, or all-but-one CPU if 0."""
    if requested > 0:
        return requested
    return max(1, (multiprocessing.cpu_count() or 2) - 1)


def _simulate_to_dict(job: Tuple[str, IssueSchemeConfig, "RunScale"]) -> dict:
    """Worker entry point: simulate one pair, return the stats as a dict."""
    # Imported here (not at module top) so the parent's import of this
    # module stays cheap and spawn-based workers re-import lazily.
    from repro.experiments.runner import simulate_pair

    benchmark, scheme, scale = job
    trace_key = (benchmark, scale.num_instructions, scale.seed)
    trace = _WORKER_TRACES.get(trace_key)
    stats, trace = simulate_pair(benchmark, scheme, scale, trace=trace)
    _WORKER_TRACES[trace_key] = trace
    return stats.to_dict()


def simulate_matrix(
    pairs: Sequence[Tuple[str, IssueSchemeConfig]],
    scale: "RunScale",
    workers: int,
) -> List[SimulationStats]:
    """Simulate every (benchmark, scheme) pair; results in input order.

    With ``workers <= 1`` (or a single pair) everything runs in-process
    through the same worker function, so both paths are byte-identical by
    construction.
    """
    jobs = [(benchmark, scheme, scale) for benchmark, scheme in pairs]
    workers = min(worker_count(workers), len(jobs)) if jobs else 0
    if workers <= 1:
        payloads = [_simulate_to_dict(job) for job in jobs]
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            payloads = pool.map(_simulate_to_dict, jobs, chunksize=1)
    return [SimulationStats.from_dict(payload) for payload in payloads]
