"""Analysis orchestration: discovery, caching, suppression, reporting.

``run_analysis`` walks the target tree once, consults the
content-addressed cache per (file, rule), re-applies suppressions and
the baseline fresh on every run (they are cheap and must reflect the
*current* source), and assembles a deterministic report whose JSON form
is byte-identical between a cold and a warm run over the same tree.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.cache import AnalysisCache, NullCache, entry_key, framework_digest
from repro.analysis.framework import (
    RULE_PARSE_ERROR,
    Finding,
    Project,
    Rule,
    SourceFile,
    apply_suppressions,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID
from repro.experiments.store import atomic_write_json, default_cache_dir

BASELINE_SCHEMA = "repro-analysis-baseline-v1"
REPORT_SCHEMA = "repro-analysis-report-v1"


def default_root() -> Path:
    """The installed ``repro`` package tree (``src/repro`` in-repo)."""
    return Path(__file__).resolve().parent.parent


def default_analysis_cache_dir() -> Path:
    return default_cache_dir() / "analysis"


@dataclass
class AnalysisReport:
    """Everything one run produced, ready to render."""

    findings: List[Finding]  # unsuppressed, post-baseline (the gate)
    suppressed: List[Finding]
    baselined: List[Finding]
    rules: List[str]
    files_analyzed: int
    files_reanalyzed: int
    cache_hits: int
    cache_misses: int
    file_relpaths: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_json_payload(self) -> Dict[str, object]:
        """Deterministic payload: no timestamps, no absolute paths, no
        cold/warm-dependent counters — a warm rerun must reproduce the
        bytes exactly."""
        return {
            "baselined": [f.to_dict() for f in self.baselined],
            "files": self.file_relpaths,
            "files_analyzed": self.files_analyzed,
            "findings": [f.to_dict() for f in self.findings],
            "rules": self.rules,
            "schema": REPORT_SCHEMA,
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_payload(), indent=2, sort_keys=True) + "\n"

    def render_text(self) -> str:
        lines = [
            f"{f.path}:{f.line}:{f.col + 1}: {f.rule}: {f.message}"
            for f in self.findings
        ]
        lines.append(
            f"analysis: {self.files_analyzed} files, "
            f"{self.files_reanalyzed} re-analyzed, "
            f"{self.cache_hits} cached verdicts, "
            f"{len(self.findings)} findings "
            f"({len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined)"
        )
        return "\n".join(lines)


def discover_files(targets: Sequence[Path], base: Path) -> List[SourceFile]:
    seen: Set[Path] = set()
    out: List[SourceFile] = []
    for target in targets:
        target = Path(target)
        paths = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for path in paths:
            path = path.resolve()
            if path in seen or "__pycache__" in path.parts:
                continue
            seen.add(path)
            relpath = Path(os.path.relpath(path, base)).as_posix()
            out.append(
                SourceFile(
                    path=path,
                    relpath=relpath,
                    module=_module_for(path, base),
                    text=path.read_text(encoding="utf-8"),
                )
            )
    return out


def _module_for(path: Path, base: Path) -> Optional[str]:
    """Dotted module for files under ``<base>/repro``; fixture files
    elsewhere fall back to their ``repro-fixture-module`` pragma."""
    try:
        rel = path.resolve().relative_to(Path(base).resolve())
    except ValueError:
        return None
    parts = list(rel.with_suffix("").parts)
    if not parts or parts[0] != "repro":
        return None
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_baseline(path: Path) -> Set[str]:
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"not a {BASELINE_SCHEMA} file: {path}")
    return set(payload["fingerprints"])


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    atomic_write_json(
        Path(path),
        {
            "fingerprints": sorted({f.fingerprint() for f in findings}),
            "schema": BASELINE_SCHEMA,
        },
    )


def run_analysis(
    targets: Optional[Sequence[Path]] = None,
    *,
    base: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional[AnalysisCache] = None,
    baseline: Optional[Set[str]] = None,
) -> AnalysisReport:
    if targets is None:
        targets = [default_root()]
        if base is None:
            base = default_root().parent
    if base is None:
        base = Path.cwd()
    if rules is None:
        rules = ALL_RULES
    if cache is None:
        cache = NullCache()

    project = Project(discover_files(targets, base), base)
    fw_digest = framework_digest()

    raw: List[Finding] = []
    reanalyzed: Set[str] = set()
    for sf in project.files:
        if sf.tree is None:
            raw.append(
                Finding(
                    path=sf.relpath,
                    line=1,
                    col=0,
                    rule=RULE_PARSE_ERROR,
                    message=f"cannot parse: {sf.parse_error}",
                )
            )
            reanalyzed.add(sf.relpath)
            continue
        for rule in rules:
            if not rule.applies(sf, project):
                continue
            key = entry_key(
                rule.id, rule.material(project), sf.digest, sf.relpath, fw_digest
            )
            cached = cache.get(key)
            if cached is None:
                found = rule.check(sf, project)
                cache.put(key, found)
                reanalyzed.add(sf.relpath)
            else:
                found = cached
            raw.extend(found)

    outcome = apply_suppressions(project, raw, RULES_BY_ID.keys())
    active = sorted(outcome.active + outcome.meta)

    baselined: List[Finding] = []
    if baseline:
        still_active: List[Finding] = []
        for finding in active:
            (baselined if finding.fingerprint() in baseline else still_active).append(
                finding
            )
        active = still_active

    return AnalysisReport(
        findings=active,
        suppressed=outcome.suppressed,
        baselined=baselined,
        rules=[rule.id for rule in rules],
        files_analyzed=len(project.files),
        files_reanalyzed=len(reanalyzed),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        file_relpaths=[sf.relpath for sf in project.files],
    )
