"""Core data model for the contract-verification static analysis pass.

The dynamic nets (goldens, differential oracles, fault injection) only
catch an invariant violation when a workload happens to exercise it.
This package checks the same contracts *at the source level*: each
:class:`Rule` walks a file's AST and reports :class:`Finding` objects;
the engine (``repro.analysis.engine``) caches per-(file, rule) results
content-addressed on source digests so warm reruns re-analyze nothing.

Suppressions
------------
A finding is silenced by a ``# repro: allow[<rule-id>]`` comment either on
the offending line or on a comment line directly above it.  Every
suppression must name a known rule id and must match at least one raw
finding — unknown ids and unused suppressions are themselves reported
(as ``unknown-suppression`` / ``unused-suppression``), so stale allows
cannot linger after the code they excused is gone.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

SCHEMA = "repro-analysis-v1"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

# Meta rule ids emitted by the framework itself (never cacheable, never
# suppressible — a suppression that suppressed its own bookkeeping would
# be unsound).
RULE_PARSE_ERROR = "parse-error"
RULE_UNKNOWN_SUPPRESSION = "unknown-suppression"
RULE_UNUSED_SUPPRESSION = "unused-suppression"
META_RULES = (RULE_PARSE_ERROR, RULE_UNKNOWN_SUPPRESSION, RULE_UNUSED_SUPPRESSION)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str  # repo-relative posix path
    line: int
    col: int
    rule: str
    message: str
    symbol: str = ""
    severity: str = SEVERITY_ERROR

    def fingerprint(self) -> str:
        """Stable id for baselines: survives line drift, not rewording."""
        raw = "|".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "col": self.col,
            "fingerprint": self.fingerprint(),
            "line": self.line,
            "message": self.message,
            "path": self.path,
            "rule": self.rule,
            "severity": self.severity,
            "symbol": self.symbol,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            symbol=str(payload.get("symbol", "")),
            severity=str(payload.get("severity", SEVERITY_ERROR)),
        )


_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-, ]+)\]")
_PRAGMA_MODULE_RE = re.compile(r"#\s*repro-fixture-module:\s*([A-Za-z0-9_.]+)")


@dataclass
class Suppression:
    """One parsed ``# repro: allow[<rule-id>]`` comment."""

    comment_line: int
    target_line: int
    rule_id: str
    used: bool = False


def _comment_only(line: str) -> bool:
    stripped = line.strip()
    return stripped.startswith("#")


def _blank_or_comment(line: str) -> bool:
    stripped = line.strip()
    return not stripped or stripped.startswith("#")


def parse_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """Extract suppressions; a comment-only allow binds to the next code line."""
    out: List[Suppression] = []
    for idx, line in enumerate(lines, start=1):
        for match in _ALLOW_RE.finditer(line):
            if _comment_only(line):
                target = idx + 1
                while target <= len(lines) and _blank_or_comment(lines[target - 1]):
                    target += 1
            else:
                target = idx
            for rule_id in match.group(1).split(","):
                rule_id = rule_id.strip()
                if rule_id:
                    out.append(Suppression(idx, target, rule_id))
    return out


class SourceFile:
    """A lazily parsed source file plus its identity inside the project."""

    def __init__(self, path: Path, relpath: str, module: Optional[str], text: str):
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        self.module = module if module is not None else self._pragma_module()
        self.suppressions = parse_suppressions(self.lines)
        self._tree: Optional[ast.AST] = None
        self.parse_error: Optional[str] = None
        self._parsed = False

    def _pragma_module(self) -> Optional[str]:
        """Fixture files impersonate in-scope modules via a pragma comment."""
        for line in self.lines[:10]:
            match = _PRAGMA_MODULE_RE.search(line)
            if match:
                return match.group(1)
        return None

    @property
    def tree(self) -> Optional[ast.AST]:
        if not self._parsed:
            self._parsed = True
            try:
                self._tree = ast.parse(self.text, filename=self.relpath)
            except SyntaxError as exc:  # surfaced as a parse-error finding
                self.parse_error = f"{exc.msg} (line {exc.lineno})"
        return self._tree

    def in_package(self, packages: Iterable[str]) -> bool:
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


@dataclass
class ClassInfo:
    """Cross-file class index entry used to resolve inherited contracts."""

    name: str
    bases: Tuple[str, ...]
    node: ast.ClassDef
    source: "SourceFile"


class Project:
    """All files under analysis plus lazily built cross-file indexes."""

    def __init__(self, files: Sequence[SourceFile], base: Path):
        self.files = sorted(files, key=lambda sf: sf.relpath)
        self.base = base
        self.by_module: Dict[str, SourceFile] = {
            sf.module: sf for sf in self.files if sf.module
        }
        self._class_index: Optional[Dict[str, ClassInfo]] = None
        self._digest: Optional[str] = None

    @property
    def digest(self) -> str:
        """Content digest over every analyzed file (cache material for
        rules that consult cross-file state)."""
        if self._digest is None:
            h = hashlib.sha256()
            for sf in self.files:
                h.update(f"{sf.relpath}:{sf.digest}\n".encode("utf-8"))
            self._digest = h.hexdigest()
        return self._digest

    @property
    def class_index(self) -> Dict[str, ClassInfo]:
        if self._class_index is None:
            index: Dict[str, ClassInfo] = {}
            for sf in self.files:
                tree = sf.tree
                if tree is None:
                    continue
                for node in ast.walk(tree):
                    if isinstance(node, ast.ClassDef) and node.name not in index:
                        index[node.name] = ClassInfo(
                            name=node.name,
                            bases=tuple(
                                base_name
                                for base in node.bases
                                if (base_name := terminal_name(base))
                            ),
                            node=node,
                            source=sf,
                        )
            self._class_index = index
        return self._class_index

    def resolve_mro(self, class_name: str) -> List[ClassInfo]:
        """Breadth-first base resolution by bare name; unknown bases are
        skipped (imported-from-outside classes can't carry contracts we
        can see anyway)."""
        out: List[ClassInfo] = []
        seen = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = self.class_index.get(name)
            if info is None:
                continue
            out.append(info)
            queue.extend(info.bases)
        return out


class Rule:
    """Base class for analysis rules.

    Subclasses set ``id``, ``summary`` and ``rationale``, and implement
    :meth:`check`.  ``material`` feeds extra bytes into the per-file
    cache key: a rule whose verdict depends on cross-file state must
    fold that state's digest in, otherwise stale cached findings survive
    edits to *other* files.
    """

    id: str = ""
    severity: str = SEVERITY_ERROR
    summary: str = ""
    rationale: str = ""

    def material(self, project: Project) -> str:
        return ""

    def applies(self, source: SourceFile, project: Project) -> bool:
        return source.module is not None

    def check(self, source: SourceFile, project: Project) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self,
        source: SourceFile,
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            path=source.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            symbol=symbol,
            severity=self.severity,
        )


def terminal_name(node: ast.AST) -> Optional[str]:
    """`a.b.C` -> `C`; `C` -> `C`; anything else -> None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """`a.b.c()` -> `a`; `a` -> `a`; anything else -> None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """`a.b.c` -> \"a.b.c\" when the chain is pure Name/Attribute."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class SuppressionOutcome:
    active: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    meta: List[Finding] = field(default_factory=list)


def apply_suppressions(
    project: Project,
    findings: Sequence[Finding],
    known_rule_ids: Iterable[str],
) -> SuppressionOutcome:
    """Partition raw findings by the per-line allow comments.

    A suppression silences findings of *its* rule id on *its* target
    line only — one comment, one line, one rule.  Unknown rule ids and
    suppressions that matched nothing become findings themselves.
    """
    known = set(known_rule_ids)
    outcome = SuppressionOutcome()
    by_file: Dict[str, SourceFile] = {sf.relpath: sf for sf in project.files}
    for finding in sorted(findings):
        suppressed = False
        sf = by_file.get(finding.path)
        if sf is not None and finding.rule not in META_RULES:
            for supp in sf.suppressions:
                if supp.rule_id == finding.rule and supp.target_line == finding.line:
                    supp.used = True
                    suppressed = True
        (outcome.suppressed if suppressed else outcome.active).append(finding)
    for sf in project.files:
        for supp in sf.suppressions:
            if supp.rule_id not in known or supp.rule_id in META_RULES:
                outcome.meta.append(
                    Finding(
                        path=sf.relpath,
                        line=supp.comment_line,
                        col=0,
                        rule=RULE_UNKNOWN_SUPPRESSION,
                        message=(
                            f"suppression names unknown rule id "
                            f"'{supp.rule_id}' (see --list-rules)"
                        ),
                    )
                )
            elif not supp.used:
                outcome.meta.append(
                    Finding(
                        path=sf.relpath,
                        line=supp.comment_line,
                        col=0,
                        rule=RULE_UNUSED_SUPPRESSION,
                        message=(
                            f"suppression for '{supp.rule_id}' matched no "
                            f"finding — remove the stale allow comment"
                        ),
                    )
                )
    outcome.meta.sort()
    return outcome
