"""Contract-verification static analysis for the repro tree.

The dynamic nets (goldens, differential oracles, fault injection) catch
an invariant violation only when a workload exercises it; this package
proves the same contracts at the source level — skip-safety,
determinism, fingerprint/version-tag completeness, checkpoint
cycle-freedom, serve async hygiene — with content-addressed result
caching so warm reruns re-analyze nothing.

Entry points: ``python -m repro.analysis`` (CLI) and
:func:`run_analysis` (library).
"""

from __future__ import annotations

from repro.analysis.cache import AnalysisCache, NullCache
from repro.analysis.engine import (
    AnalysisReport,
    default_analysis_cache_dir,
    default_root,
    load_baseline,
    run_analysis,
    write_baseline,
)
from repro.analysis.framework import Finding, Project, Rule, SourceFile
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, resolve_rules

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "AnalysisCache",
    "AnalysisReport",
    "Finding",
    "NullCache",
    "Project",
    "Rule",
    "SourceFile",
    "default_analysis_cache_dir",
    "default_root",
    "load_baseline",
    "resolve_rules",
    "run_analysis",
    "write_baseline",
]
