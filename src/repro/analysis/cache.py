"""Content-addressed cache for per-(file, rule) analysis results.

Mirrors the ``ResultStore`` discipline: the key digests everything the
verdict depends on (schema version, analysis-package sources, the rule's
own extra material, the file's bytes and repo-relative path), entries
are written atomically, and corrupt or unreadable entries read as
misses.  A warm rerun over an unchanged tree therefore re-analyzes
nothing and reproduces the report byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.framework import SCHEMA, Finding
from repro.experiments.store import atomic_write_json, package_sources_digest


def framework_digest() -> str:
    """Digest of the analysis package itself — any rule edit invalidates
    every cached verdict."""
    return package_sources_digest(("analysis",))


def entry_key(
    rule_id: str,
    rule_material: str,
    file_digest: str,
    relpath: str,
    fw_digest: str,
) -> str:
    raw = "|".join((SCHEMA, fw_digest, rule_id, rule_material, relpath, file_digest))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


class AnalysisCache:
    """Sharded JSON entries under ``<root>/<key[:2]>/<key>.json``."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[List[Finding]]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
            self.misses += 1
            return None
        try:
            findings = [Finding.from_dict(f) for f in payload["findings"]]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, key: str, findings: List[Finding]) -> None:
        payload: Dict[str, object] = {
            "findings": [f.to_dict() for f in findings],
            "schema": SCHEMA,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, payload)


class NullCache(AnalysisCache):
    """``--no-cache``: every lookup misses, nothing is written."""

    def __init__(self) -> None:
        super().__init__(Path("/nonexistent"))

    def get(self, key: str) -> Optional[List[Finding]]:
        self.misses += 1
        return None

    def put(self, key: str, findings: List[Finding]) -> None:
        return None
