"""Checkpoint cycle-freedom (ROADMAP "Invariants").

Warm-state checkpoints are functional-only: positions, table contents,
histories — never cycle numbers.  A checkpoint restored into a fresh
``Processor`` replays from cycle 0, so any cycle-number-typed payload
is stale on arrival and, worse, makes checkpoints non-shareable across
issue schemes whose detailed timing differs.  This rule inspects
``state_snapshot`` payloads and warm-state dataclasses for
cycle/tick/timestamp-named fields.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.analysis.framework import Finding, Project, Rule, SourceFile

SCOPE = (
    "repro.backends",
    "repro.common",
    "repro.core",
    "repro.frontend",
    "repro.isa",
    "repro.issue",
    "repro.memory",
    "repro.sampling",
    "repro.workloads",
)

# Names that denote a point on the cycle axis rather than a functional
# position.  Matched against whole underscore-separated words.
CYCLE_WORD_RE = re.compile(
    r"(^|_)(cycle|cycles|tick|ticks|timestamp|wallclock|clock)(_|$)"
)

SNAPSHOT_CLASS_RE = re.compile(r"(State|Snapshot|Checkpoint)$")
SNAPSHOT_METHOD = "state_snapshot"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return True
    return False


class CheckpointCycleFreeRule(Rule):
    id = "checkpoint-cycle-free"
    summary = (
        "state_snapshot payloads and warm-state dataclasses must not "
        "carry cycle-number-typed fields"
    )
    rationale = (
        "Checkpoints restore into a fresh Processor at cycle 0 and are "
        "shared across issue schemes; a smuggled cycle number is stale "
        "on restore and breaks cross-scheme sharing."
    )

    def applies(self, source: SourceFile, project: Project) -> bool:
        return source.in_package(SCOPE)

    def check(self, source: SourceFile, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        tree = source.tree
        if tree is None:
            return findings
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name == SNAPSHOT_METHOD:
                findings.extend(self._check_snapshot(source, node))
            elif isinstance(node, ast.ClassDef) and SNAPSHOT_CLASS_RE.search(node.name):
                if _is_dataclass(node):
                    findings.extend(self._check_state_class(source, node))
        return findings

    def _check_snapshot(
        self, source: SourceFile, func: ast.FunctionDef
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and CYCLE_WORD_RE.search(key.value)
                    ):
                        findings.append(
                            self.finding(
                                source,
                                key,
                                (
                                    f"state_snapshot payload key "
                                    f"'{key.value}' carries a cycle-typed "
                                    f"value — checkpoints must be "
                                    f"functional-only"
                                ),
                                symbol=f"{SNAPSHOT_METHOD}.{key.value}",
                            )
                        )
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if CYCLE_WORD_RE.search(node.attr):
                    findings.append(
                        self.finding(
                            source,
                            node,
                            (
                                f"state_snapshot reads '.{node.attr}' — a "
                                f"cycle-typed value must not flow into a "
                                f"checkpoint payload"
                            ),
                            symbol=f"{SNAPSHOT_METHOD}.{node.attr}",
                        )
                    )
        return findings

    def _check_state_class(
        self, source: SourceFile, node: ast.ClassDef
    ) -> List[Finding]:
        findings: List[Finding] = []
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                if CYCLE_WORD_RE.search(item.target.id):
                    findings.append(
                        self.finding(
                            source,
                            item,
                            (
                                f"warm-state field "
                                f"'{node.name}.{item.target.id}' is "
                                f"cycle-typed — checkpoints restore at "
                                f"cycle 0, so the value is stale on arrival"
                            ),
                            symbol=f"{node.name}.{item.target.id}",
                        )
                    )
        return findings
