"""Async hygiene for the serve layer.

``repro.serve`` multiplexes every request on one event loop; a blocking
simulation or store call executed *directly* inside a coroutine stalls
the whole server (heartbeats, progress streams, shutdown) for its
duration.  Blocking work must route through the thread-pool shims
(``_in_thread`` / ``loop.run_in_executor``) — where the callable is
passed as a value, not called, so this rule only flags *call*
expressions lexically inside ``async def`` bodies.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.framework import Finding, Project, Rule, SourceFile, terminal_name

SCOPE = ("repro.serve",)

# Methods of ExperimentRunner / ResultStore / scheduler facades that
# block on simulation or disk I/O.
BLOCKING_CALLS = frozenset(
    {
        "export_campaign",
        "load",
        "load_with_extra",
        "prefetch",
        "resolve_sync",
        "run",
        "run_exploration",
        "run_many",
        "sampled_result",
        "save",
        "simulate_matrix",
        "simulate_pair",
        "simulate_sampled_pair",
        "sweep_stale_tmp",
    }
)


class ServeAsyncHygieneRule(Rule):
    id = "serve-async-hygiene"
    summary = (
        "no blocking runner/store calls directly inside repro.serve "
        "coroutines — route through the thread-pool shims"
    )
    rationale = (
        "One blocking call on the event loop stalls every job's "
        "heartbeat, stream, and shutdown handling until it returns."
    )

    def applies(self, source: SourceFile, project: Project) -> bool:
        return source.in_package(SCOPE)

    def check(self, source: SourceFile, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        tree = source.tree
        if tree is None:
            return findings
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_coroutine(source, node))
        return findings

    def _check_coroutine(
        self, source: SourceFile, func: ast.AsyncFunctionDef
    ) -> List[Finding]:
        findings: List[Finding] = []

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                # A nested def/lambda is a new execution context — its
                # body runs wherever it is invoked (typically handed to
                # the executor as a value), not on this coroutine.
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, ast.Call):
                    name = terminal_name(child.func)
                    if name in BLOCKING_CALLS:
                        findings.append(
                            self.finding(
                                source,
                                child,
                                (
                                    f"blocking call '{name}()' directly "
                                    f"inside coroutine '{func.name}' stalls "
                                    f"the event loop — route it through "
                                    f"_in_thread()/run_in_executor"
                                ),
                                symbol=f"{func.name}.{name}",
                            )
                        )
                visit(child)

        visit(func)
        return findings
