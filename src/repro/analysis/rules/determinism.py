"""Bit-identical determinism (ROADMAP "Invariants").

Simulated statistics must be a pure function of (config, profile,
scale): wall-clock reads, unseeded module-level randomness, and
iteration in filesystem or set order are the three ways host state
leaks into results — the EnergyModel ordering bug class.  Seeded
``random.Random`` instances (``repro.common.rng``) are the sanctioned
randomness path; ``sorted()`` is the sanctioned way to consume an
unordered source.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.framework import (
    Finding,
    Project,
    Rule,
    SourceFile,
    dotted_name,
    terminal_name,
)

# The deterministic core: everything hashed into the simulator or
# sampling version tags.  experiments/serve/explore orchestration may
# legitimately read clocks for telemetry.
SCOPE = (
    "repro.backends",
    "repro.common",
    "repro.core",
    "repro.energy",
    "repro.frontend",
    "repro.isa",
    "repro.issue",
    "repro.memory",
    "repro.sampling",
    "repro.workloads",
)

WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)
TIME_FUNCS = frozenset(name.split(".", 1)[1] for name in WALL_CLOCK_CALLS if name.startswith("time."))

# Module-level random functions share hidden global state seeded from
# the OS; random.Random(seed) instances are fine, SystemRandom never is.
MODULE_RANDOM = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

FS_ORDER_ATTRS = frozenset({"glob", "iglob", "iterdir", "listdir", "rglob", "scandir"})


class DeterminismRule(Rule):
    id = "determinism"
    summary = (
        "no wall-clock reads, unseeded module-level randomness, or "
        "filesystem/set-order iteration in the deterministic core"
    )
    rationale = (
        "Simulated statistics must be a pure function of (config, "
        "profile, scale); host state leaking in breaks the bit-identity "
        "net and poisons content-addressed caches."
    )

    def applies(self, source: SourceFile, project: Project) -> bool:
        return source.in_package(SCOPE)

    def check(self, source: SourceFile, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        tree = source.tree
        if tree is None:
            return findings

        from_imports = _from_imports(tree)
        parents = _parent_map(tree)

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(source, node, from_imports, parents))
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_node = node.iter
                if _is_set_expr(iter_node) and not _sorted_wrapped(iter_node, parents):
                    findings.append(
                        self.finding(
                            source,
                            iter_node,
                            (
                                "iteration over a set has arbitrary order — "
                                "wrap in sorted() before it can feed stats "
                                "or float accumulation"
                            ),
                        )
                    )
        return findings

    def _check_call(
        self,
        source: SourceFile,
        node: ast.Call,
        from_imports: Dict[str, str],
        parents: Dict[int, ast.AST],
    ) -> List[Finding]:
        findings: List[Finding] = []
        dotted = dotted_name(node.func)
        bare = node.func.id if isinstance(node.func, ast.Name) else None
        origin = from_imports.get(bare or "")

        if dotted in WALL_CLOCK_CALLS or (origin == "time" and bare in TIME_FUNCS):
            findings.append(
                self.finding(
                    source,
                    node,
                    f"wall-clock read '{dotted or bare}()' in the deterministic core",
                )
            )
        elif dotted is not None and dotted.startswith("random."):
            attr = dotted.split(".", 1)[1]
            if attr in MODULE_RANDOM:
                findings.append(
                    self.finding(
                        source,
                        node,
                        (
                            f"module-level '{dotted}()' uses hidden global "
                            f"RNG state — derive a seeded random.Random via "
                            f"repro.common.rng instead"
                        ),
                    )
                )
        elif origin == "random" and bare in MODULE_RANDOM:
            findings.append(
                self.finding(
                    source,
                    node,
                    (
                        f"'from random import {bare}' calls the hidden "
                        f"global RNG — derive a seeded random.Random via "
                        f"repro.common.rng instead"
                    ),
                )
            )
        elif terminal_name(node.func) == "SystemRandom":
            findings.append(
                self.finding(
                    source, node, "SystemRandom is OS-entropy-backed, never reproducible"
                )
            )
        elif dotted is not None and (".random." in dotted or dotted.startswith("random.")):
            # numpy-style module RNG: np.random.shuffle etc.
            tail = dotted.rsplit(".", 1)[1]
            if tail in MODULE_RANDOM:
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"module-level '{dotted}()' uses hidden global RNG state",
                    )
                )
        if (
            terminal_name(node.func) in FS_ORDER_ATTRS
            and not _sorted_wrapped(node, parents)
        ) or (
            bare is not None
            and origin in ("os", "glob")
            and bare in FS_ORDER_ATTRS
            and not _sorted_wrapped(node, parents)
        ):
            name = dotted or bare
            findings.append(
                self.finding(
                    source,
                    node,
                    (
                        f"'{name}()' yields filesystem order — wrap in "
                        f"sorted() before results can depend on it"
                    ),
                )
            )
        return findings


def _from_imports(tree: ast.AST) -> Dict[str, str]:
    """bare name -> source module, for ``from X import name`` bindings."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = node.module
    return out


def _parent_map(tree: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _sorted_wrapped(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    """True when ``node`` sits (within a couple of hops) inside a
    ``sorted(...)`` / ``len(...)`` call — order laundered or irrelevant."""
    current: Optional[ast.AST] = node
    for _ in range(3):
        parent = parents.get(id(current))
        if parent is None:
            return False
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            if parent.func.id in ("sorted", "len") and current in parent.args:
                return True
        current = parent
    return False


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False
