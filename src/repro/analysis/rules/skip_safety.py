"""Skip-safety contracts (ROADMAP "Invariants").

The skip kernel proves quiescence and jumps over idle spans, so any
per-cycle behaviour must either declare its next cycle-number-dependent
boundary through the ``next_activity_cycle()`` contract family, or be a
pure counter accrual that the interval accounting replays — which means
the counter must be registered in ``idle_counters()`` /
``apply_idle_counters()``.  A class that mutates state on the step path
without either contract silently diverges from the naive kernel the
first time a skip span covers its activity.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.framework import (
    Finding,
    Project,
    Rule,
    SourceFile,
    root_name,
)

# Packages whose classes sit on the per-cycle simulation path.
SCOPE = ("repro.core", "repro.issue", "repro.frontend", "repro.memory")

# Methods invoked every detailed cycle by the kernels.
STEP_METHODS = frozenset({"step", "fetch_cycle", "on_cycle_end"})

# The contract family: defining (or inheriting) any of these declares
# the class's cycle-number-dependent boundaries to the skip kernel.
NEXT_FAMILY = frozenset(
    {
        "next_activity_cycle",
        "next_dispatch_activity_cycle",
        "next_wakeup_cycle",
        "next_code_boundary",
        "next_event_cycle",
    }
)

# Methods that accrue per-cycle/per-attempt counters which the idle
# accounting must replay over skipped spans.
COUNTER_METHODS = frozenset(
    {"on_cycle_end", "try_dispatch", "try_place", "place_by_estimate", "_choose_queue"}
)

IDLE_REGISTRY_METHODS = ("idle_counters", "apply_idle_counters")


def _self_mutations(func: ast.AST) -> List[ast.AST]:
    """Statements that write a direct ``self.<attr>`` inside ``func``,
    excluding nested function/class bodies."""
    out: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    child.targets if isinstance(child, ast.Assign) else [child.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and root_name(target) == "self"
                    ):
                        out.append(child)
            visit(child)

    visit(func)
    return out


def _simple_counter_augassigns(func: ast.AST) -> List[ast.AugAssign]:
    """``self.<name> += ...`` with a one-level attribute target.

    Subscripted or chained targets (``self.rev[side] += 1``,
    ``self.side.x += 1``) are structural state resolved by other
    contracts, not interval counters."""
    out: List[ast.AugAssign] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.AugAssign):
                target = child.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out.append(child)
            visit(child)

    visit(func)
    return out


def _is_trivial(func: ast.FunctionDef) -> bool:
    """Docstring-only / ``pass`` / bare-constant-return bodies carry no
    per-cycle behaviour (the no-op base-class hooks)."""
    body = [
        stmt
        for stmt in func.body
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
    ]
    if not body:
        return True
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Return)
            and (stmt.value is None or isinstance(stmt.value, ast.Constant))
        )
        for stmt in body
    )


def _registered_names(project: Project, class_name: str) -> Set[str]:
    """Names mentioned in ``idle_counters``/``apply_idle_counters``
    anywhere in the class's resolvable MRO — as ``self.<name>``
    attributes or as string keys."""
    names: Set[str] = set()
    for info in project.resolve_mro(class_name):
        for item in info.node.body:
            if (
                isinstance(item, ast.FunctionDef)
                and item.name in IDLE_REGISTRY_METHODS
            ):
                for node in ast.walk(item):
                    if isinstance(node, ast.Attribute):
                        names.add(node.attr)
                    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                        names.add(node.value)
    return names


def _mro_defines(project: Project, class_name: str, methods: frozenset) -> bool:
    for info in project.resolve_mro(class_name):
        for item in info.node.body:
            if isinstance(item, ast.FunctionDef) and item.name in methods:
                return True
    return False


class SkipSafetyRule(Rule):
    id = "skip-safety"
    summary = (
        "per-cycle mutation requires a next_activity_cycle()-family "
        "contract; per-cycle counters must be registered for idle accounting"
    )
    rationale = (
        "The skip kernel jumps over proven-idle spans; unreported "
        "cycle-dependent behaviour or unregistered counters silently "
        "diverge from the naive kernel."
    )

    def material(self, project: Project) -> str:
        # Contract resolution crosses files (base classes), so the
        # verdict depends on the whole analyzed set.
        return project.digest

    def applies(self, source: SourceFile, project: Project) -> bool:
        return source.in_package(SCOPE)

    def check(self, source: SourceFile, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        tree = source.tree
        if tree is None:
            return findings
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                symbol = f"{node.name}.{item.name}"
                if (
                    item.name in STEP_METHODS
                    and not _is_trivial(item)
                    and _self_mutations(item)
                    and not _mro_defines(project, node.name, NEXT_FAMILY)
                ):
                    findings.append(
                        self.finding(
                            source,
                            item,
                            (
                                f"{symbol} mutates state on the per-cycle path "
                                f"but the class defines/inherits none of "
                                f"{sorted(NEXT_FAMILY)} — the skip kernel "
                                f"cannot see its activity boundaries"
                            ),
                            symbol=symbol,
                        )
                    )
                if item.name in COUNTER_METHODS:
                    registered = None
                    for aug in _simple_counter_augassigns(item):
                        counter = aug.target.attr  # type: ignore[union-attr]
                        if registered is None:
                            registered = _registered_names(project, node.name)
                        if counter not in registered:
                            findings.append(
                                self.finding(
                                    source,
                                    aug,
                                    (
                                        f"counter 'self.{counter}' accrued in "
                                        f"{symbol} is not registered in "
                                        f"idle_counters()/apply_idle_counters() "
                                        f"— skipped spans drop its increments"
                                    ),
                                    symbol=f"{symbol}.{counter}",
                                )
                            )
        return findings
