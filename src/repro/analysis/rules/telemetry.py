"""Telemetry hygiene: observability must stay a sidecar.

``repro.obs`` (metrics registry, tracer, clock) deliberately lives
*outside* the version-tag closure, so enabling tracing can never rotate
a cache key or perturb an artifact. Two source-level contracts keep it
that way:

1. **No back-edges** — modules hashed into the simulator/sampling
   version tags must never import ``repro.obs``. If they did, an edit
   to the (un-hashed) observability layer could change simulated
   behaviour without invalidating cached results, and telemetry state
   could leak into statistics. Tagged code that wants a counter calls
   the :func:`repro.experiments.store.record_cache_event` seam (the
   store is the one audited exemption from the closure) or keeps plain
   counters (``engine.GLOBAL_TELEMETRY``) for the untagged layer to
   absorb.

2. **Wall-clock quarantine** — ``repro.obs.clock`` is the only place in
   the ``repro`` tree allowed to read wall clocks. The deterministic
   core is already policed by the ``determinism`` rule, so this rule
   checks the complement: the orchestration layers (experiments,
   explore, discover, serve, analysis), where a stray ``time.time()``
   would not corrupt results but *would* scatter unquarantined
   nondeterminism that the next refactor can silently move into
   something cached. Between the two rules, every ``repro`` package
   except ``repro.obs`` is covered exactly once.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.framework import Finding, Project, Rule, SourceFile, dotted_name
from repro.analysis.rules.determinism import (
    TIME_FUNCS,
    WALL_CLOCK_CALLS,
    _from_imports,
)
from repro.analysis.rules.version_tags import FALLBACK_COVERED, _import_edges

OBS_PACKAGE = "repro.obs"


class TelemetryHygieneRule(Rule):
    id = "telemetry-hygiene"
    summary = (
        "version-tagged packages must not import repro.obs, and repro.obs "
        "is the only package allowed to read wall clocks"
    )
    rationale = (
        "Observability is a sidecar: a back-edge from the hashed closure "
        "into repro.obs would let telemetry perturb cached results, and "
        "wall-clock reads outside repro.obs.clock scatter unquarantined "
        "nondeterminism through the orchestration layers."
    )

    def applies(self, source: SourceFile, project: Project) -> bool:
        if source.module is None or not source.module.startswith("repro."):
            return False
        # The quarantine zone itself: obs may read clocks and obviously
        # imports obs.
        return not source.in_package((OBS_PACKAGE,))

    def check(self, source: SourceFile, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        tree = source.tree
        if tree is None:
            return findings

        top = source.module.split(".")[1] if source.module else ""
        if top in FALLBACK_COVERED:
            # Tagged module: the determinism rule already bans its clock
            # reads; this rule adds the telemetry back-edge check.
            for node, target in _import_edges(tree):
                if target == OBS_PACKAGE or target.startswith(OBS_PACKAGE + "."):
                    findings.append(
                        self.finding(
                            source,
                            node,
                            (
                                f"{source.module} is hashed into a version "
                                f"tag but imports '{target}' — telemetry "
                                f"must stay outside the closure so enabling "
                                f"tracing never rotates a cache key"
                            ),
                            symbol=target,
                        )
                    )
            return findings

        from_imports = _from_imports(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            bare = node.func.id if isinstance(node.func, ast.Name) else None
            origin = from_imports.get(bare or "")
            if dotted in WALL_CLOCK_CALLS or (
                origin == "time" and bare in TIME_FUNCS
            ):
                findings.append(
                    self.finding(
                        source,
                        node,
                        (
                            f"wall-clock read '{dotted or bare}()' outside "
                            f"repro.obs — route it through repro.obs.clock "
                            f"so every clock read is quarantined in one "
                            f"audited module"
                        ),
                    )
                )
        return findings
