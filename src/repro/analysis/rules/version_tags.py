"""Version-tag coverage for the content-addressed result store.

Cached results are keyed on ``SIMULATOR_VERSION_TAG`` — a digest of the
packages listed in ``_SIMULATOR_PACKAGES`` — so a behaviour edit
self-invalidates stale entries.  That guarantee breaks the moment a
hashed module imports simulation behaviour from a package *outside* the
digest list: editing the un-hashed module changes simulated statistics
while the tag (and therefore every cache key) stays put, silently
serving stale results.  This rule checks every import edge out of the
hashed closure.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import Finding, Project, Rule, SourceFile

STORE_MODULE = "repro.experiments.store"

# Modules outside the digest that hashed code may import: pure
# persistence/digest helpers whose behaviour cannot change a simulated
# statistic (results flow *into* the store, never out of it into the
# simulation).
EXEMPT_TARGETS = frozenset({STORE_MODULE})

# Mirror of the digest lists in repro.experiments.store, used when the
# store module itself is not part of the analyzed file set (fixture
# runs).  When the store *is* analyzed, the parsed lists are
# authoritative and a mismatch against this mirror is itself reported,
# so the two cannot drift apart silently.
FALLBACK_COVERED = frozenset(
    {
        "backends",
        "common",
        "core",
        "energy",
        "frontend",
        "isa",
        "issue",
        "memory",
        "sampling",
        "workloads",
    }
)


def _parse_covered(store: SourceFile) -> Optional[Tuple[Set[str], ast.AST]]:
    """Union of the package tuples digested into the version tags:
    ``_SIMULATOR_PACKAGES`` plus every ``package_sources_digest((...))``
    literal (the sampling/energy tag)."""
    tree = store.tree
    if tree is None:
        return None
    covered: Set[str] = set()
    anchor: Optional[ast.AST] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "_SIMULATOR_PACKAGES":
                    anchor = node
                    covered |= _string_elements(node.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "package_sources_digest":
                for arg in node.args:
                    covered |= _string_elements(arg)
    if anchor is None:
        return None
    return covered, anchor


def _string_elements(node: ast.AST) -> Set[str]:
    if isinstance(node, (ast.Tuple, ast.List)):
        return {
            el.value
            for el in node.elts
            if isinstance(el, ast.Constant) and isinstance(el.value, str)
        }
    return set()


def _import_edges(tree: ast.AST) -> Iterable[Tuple[ast.AST, str]]:
    """(node, dotted target) for every repro-internal import, at any
    nesting depth — lazy function-level imports count the same."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro."):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "repro":
                for alias in node.names:
                    yield node, f"repro.{alias.name}"
            elif node.module.startswith("repro."):
                # `from repro.pkg import name` may bind a submodule or an
                # attribute; checking the module prefix covers both, and
                # `from repro.experiments import store` resolves to the
                # exempt module through the joined candidate.
                yield node, node.module


class VersionTagCoverageRule(Rule):
    id = "version-tag-coverage"
    summary = (
        "modules hashed into the version tags must not import simulator "
        "behaviour from outside the digest source list"
    )
    rationale = (
        "An import edge out of the hashed closure lets a behaviour edit "
        "change results while SIMULATOR_VERSION_TAG stays put — cached "
        "entries go stale with no invalidation signal."
    )

    def material(self, project: Project) -> str:
        store = project.by_module.get(STORE_MODULE)
        return store.digest if store is not None else "fallback"

    def _covered(self, project: Project) -> Set[str]:
        store = project.by_module.get(STORE_MODULE)
        if store is not None:
            parsed = _parse_covered(store)
            if parsed is not None:
                return parsed[0]
        return set(FALLBACK_COVERED)

    def applies(self, source: SourceFile, project: Project) -> bool:
        if source.module == STORE_MODULE:
            return True
        return self._in_covered(source, project)

    def _in_covered(self, source: SourceFile, project: Project) -> bool:
        if source.module is None or not source.module.startswith("repro."):
            return False
        top = source.module.split(".")[1]
        return top in self._covered(project)

    def check(self, source: SourceFile, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        tree = source.tree
        if tree is None:
            return findings

        if source.module == STORE_MODULE:
            parsed = _parse_covered(source)
            if parsed is None:
                findings.append(
                    self.finding(
                        source,
                        tree,
                        (
                            "_SIMULATOR_PACKAGES tuple not found — the "
                            "version-tag-coverage rule can no longer read "
                            "the digest source list"
                        ),
                    )
                )
            elif parsed[0] != FALLBACK_COVERED:
                findings.append(
                    self.finding(
                        source,
                        parsed[1],
                        (
                            f"digest package list {sorted(parsed[0])} differs "
                            f"from the rule's mirror "
                            f"{sorted(FALLBACK_COVERED)} — update "
                            f"FALLBACK_COVERED in "
                            f"repro.analysis.rules.version_tags and re-audit "
                            f"import edges"
                        ),
                    )
                )
            if not self._in_covered(source, project):
                return findings

        covered = self._covered(project)
        for node, target in _import_edges(tree):
            parts = target.split(".")
            if len(parts) < 2:
                continue
            if parts[1] in covered:
                continue
            if target in EXEMPT_TARGETS or any(
                target.startswith(exempt + ".") for exempt in EXEMPT_TARGETS
            ):
                continue
            if isinstance(node, ast.ImportFrom):
                # Join candidates: exempt when every imported name lands
                # inside an exempt module (`from repro.experiments import
                # store`).
                names = [alias.name for alias in node.names]
                if names and all(
                    f"{target}.{name}" in EXEMPT_TARGETS for name in names
                ):
                    continue
            findings.append(
                self.finding(
                    source,
                    node,
                    (
                        f"{source.module} is hashed into the simulator/"
                        f"sampling version tag but imports '{target}', which "
                        f"is outside the digest source list — edits there "
                        f"would change behaviour without invalidating cached "
                        f"results"
                    ),
                    symbol=target,
                )
            )
        return findings
