"""Rule registry for the contract-verification pass.

Adding a rule: subclass :class:`repro.analysis.framework.Rule` in a new
module here, instantiate it in :data:`ALL_RULES`, add a known-bad
fixture under ``tests/analysis_fixtures/`` named
``bad_<rule_id_with_underscores>.py``, and the sensitivity tests and CI
gate pick it up automatically.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.framework import Rule
from repro.analysis.rules.async_hygiene import ServeAsyncHygieneRule
from repro.analysis.rules.checkpoints import CheckpointCycleFreeRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.fingerprint import FingerprintCompletenessRule
from repro.analysis.rules.skip_safety import SkipSafetyRule
from repro.analysis.rules.telemetry import TelemetryHygieneRule
from repro.analysis.rules.version_tags import VersionTagCoverageRule

ALL_RULES: List[Rule] = [
    SkipSafetyRule(),
    DeterminismRule(),
    FingerprintCompletenessRule(),
    VersionTagCoverageRule(),
    CheckpointCycleFreeRule(),
    ServeAsyncHygieneRule(),
    TelemetryHygieneRule(),
]

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


def resolve_rules(spec: Sequence[str] | None) -> List[Rule]:
    """``None``/empty -> all rules; otherwise validate each id."""
    if not spec:
        return list(ALL_RULES)
    out: List[Rule] = []
    for rule_id in spec:
        if rule_id not in RULES_BY_ID:
            raise KeyError(
                f"unknown rule id '{rule_id}' (known: {', '.join(RULES_BY_ID)})"
            )
        out.append(RULES_BY_ID[rule_id])
    return out


__all__ = ["ALL_RULES", "RULES_BY_ID", "resolve_rules"]
