"""Fingerprint completeness for cache-key dataclasses.

``stable_fingerprint`` canonicalizes a config dataclass to sorted JSON
and drops fields named in ``_FINGERPRINT_EXCLUDE`` via
``payload.pop(name, None)`` — which is *silent* when the name is stale
or misspelled, so a typo quietly re-includes (or never excludes) a
field and either poisons cache keys or aliases distinct configs.  This
rule makes the exclusion list, the dataclass decorator, and the
JSON-stability of every field machine-checked.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.framework import (
    Finding,
    Project,
    Rule,
    SourceFile,
    terminal_name,
)

# Dataclasses fingerprinted by call sites rather than via the
# _Fingerprinted mixin (profile/scale halves of every result key).
FINGERPRINTED_ROOTS = frozenset(
    {
        "BranchBehavior",
        "MemoryBehavior",
        "OperationMix",
        "RunScale",
        "WorkloadProfile",
    }
)

MIXIN = "_Fingerprinted"
EXCLUDE_ATTR = "_FINGERPRINT_EXCLUDE"

# Annotations whose canonical JSON is unstable (unordered, identity-
# based, or unserializable) — they have no business in a cache key.
UNSTABLE_ANNOTATIONS = frozenset(
    {
        "AbstractSet",
        "Any",
        "Callable",
        "FrozenSet",
        "MutableSet",
        "Set",
        "bytearray",
        "bytes",
        "complex",
        "frozenset",
        "object",
        "set",
    }
)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if terminal_name(target) == "dataclass":
            return True
    return False


def _field_names(node: ast.ClassDef) -> Set[str]:
    return {
        item.target.id
        for item in node.body
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
    }


def _exclude_assignment(node: ast.ClassDef) -> Optional[ast.Assign]:
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == EXCLUDE_ATTR:
                    return item
    return None


class FingerprintCompletenessRule(Rule):
    id = "fingerprint-completeness"
    summary = (
        "cache-key dataclasses: every field JSON-stable, every "
        "_FINGERPRINT_EXCLUDE entry a real declared field"
    )
    rationale = (
        "stable_fingerprint drops excluded fields with a silent "
        "dict.pop — a stale name re-includes the field and corrupts "
        "content-addressed cache keys without any runtime signal."
    )

    def material(self, project: Project) -> str:
        # Inheriting from the mixin is resolved through the class index.
        return project.digest

    def check(self, source: SourceFile, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        tree = source.tree
        if tree is None:
            return findings
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name == MIXIN:
                continue
            if not self._is_fingerprinted(node, project):
                continue
            findings.extend(self._check_class(source, node, project))
        return findings

    def _is_fingerprinted(self, node: ast.ClassDef, project: Project) -> bool:
        if node.name in FINGERPRINTED_ROOTS:
            return True
        if _exclude_assignment(node) is not None:
            return True
        return any(
            info.name == MIXIN for info in project.resolve_mro(node.name)
        )

    def _check_class(
        self, source: SourceFile, node: ast.ClassDef, project: Project
    ) -> List[Finding]:
        findings: List[Finding] = []
        if not _is_dataclass_decorated(node):
            findings.append(
                self.finding(
                    source,
                    node,
                    (
                        f"{node.name} is fingerprinted for cache keys but is "
                        f"not a @dataclass — stable_fingerprint only "
                        f"canonicalizes dataclass fields"
                    ),
                    symbol=node.name,
                )
            )
            return findings

        # Fields visible to asdict(): own plus resolvable bases'.
        all_fields = _field_names(node)
        for info in project.resolve_mro(node.name):
            all_fields |= _field_names(info.node)

        exclude = _exclude_assignment(node)
        if exclude is not None:
            value = exclude.value
            if not isinstance(value, (ast.Tuple, ast.List)) or not all(
                isinstance(el, ast.Constant) and isinstance(el.value, str)
                for el in value.elts
            ):
                findings.append(
                    self.finding(
                        source,
                        exclude,
                        (
                            f"{node.name}.{EXCLUDE_ATTR} must be a literal "
                            f"tuple of field-name strings"
                        ),
                        symbol=f"{node.name}.{EXCLUDE_ATTR}",
                    )
                )
            else:
                for el in value.elts:
                    if el.value not in all_fields:
                        findings.append(
                            self.finding(
                                source,
                                el,
                                (
                                    f"{EXCLUDE_ATTR} names '{el.value}' which "
                                    f"is not a declared field of {node.name} — "
                                    f"the silent dict.pop hides the typo and "
                                    f"the field stays in the cache key"
                                ),
                                symbol=f"{node.name}.{EXCLUDE_ATTR}",
                            )
                        )

        for item in node.body:
            if not isinstance(item, ast.AnnAssign) or not isinstance(
                item.target, ast.Name
            ):
                continue
            bad = _unstable_annotation(item.annotation)
            if bad is not None:
                findings.append(
                    self.finding(
                        source,
                        item,
                        (
                            f"field '{node.name}.{item.target.id}' is "
                            f"annotated with '{bad}', whose canonical JSON "
                            f"is not stable — cache keys built from it are "
                            f"not reproducible"
                        ),
                        symbol=f"{node.name}.{item.target.id}",
                    )
                )
        return findings


def _unstable_annotation(annotation: ast.AST) -> Optional[str]:
    for node in ast.walk(annotation):
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotation fragment: match bare forbidden tokens.
            if node.value in UNSTABLE_ANNOTATIONS:
                name = node.value
        if name in UNSTABLE_ANNOTATIONS:
            return name
    return None
