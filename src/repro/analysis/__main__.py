"""CLI for the contract-verification static analysis pass.

Examples::

    python -m repro.analysis                      # whole tree, all rules
    python -m repro.analysis --list-rules
    python -m repro.analysis --rules skip-safety,determinism
    python -m repro.analysis path/to/file.py --no-cache
    python -m repro.analysis --out report.json    # deterministic JSON
    python -m repro.analysis --write-baseline known.json
    python -m repro.analysis --baseline known.json

Exit status: 0 when no unsuppressed (and unbaselined) findings, 1
otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.cache import AnalysisCache, NullCache
from repro.analysis.engine import (
    default_analysis_cache_dir,
    load_baseline,
    run_analysis,
    write_baseline,
)
from repro.analysis.rules import ALL_RULES, resolve_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Contract-verification static analysis over the repro tree.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the installed repro tree)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        help="baseline JSON: matching finding fingerprints don't fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        help="write current unsuppressed findings as a baseline, exit 0",
    )
    parser.add_argument("--out", type=Path, help="write the JSON report here")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        help="analysis result cache root (default: $REPRO_CACHE_DIR/analysis)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        width = max(len(rule.id) for rule in ALL_RULES)
        for rule in ALL_RULES:
            print(f"{rule.id:<{width}}  [{rule.severity}]  {rule.summary}")
        return 0

    try:
        rules = resolve_rules(
            [r.strip() for r in args.rules.split(",") if r.strip()]
            if args.rules
            else None
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.no_cache:
        cache: AnalysisCache = NullCache()
    else:
        cache = AnalysisCache(args.cache_dir or default_analysis_cache_dir())

    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    report = run_analysis(
        args.targets or None,
        base=Path.cwd() if args.targets else None,
        rules=rules,
        cache=cache,
        baseline=baseline,
    )

    if args.write_baseline:
        write_baseline(args.write_baseline, report.findings)
        print(
            f"wrote baseline with {len(report.findings)} fingerprint(s) "
            f"to {args.write_baseline}"
        )
        return 0

    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report.to_json())

    if args.format == "json":
        sys.stdout.write(report.to_json())
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
