"""Host-clock access, quarantined.

Every wall-clock read in the repository goes through this module. That
is not ceremony: the ``telemetry-hygiene`` static-analysis rule forbids
``time.time``/``perf_counter``/``datetime.now`` everywhere else under
``repro``, so a reviewer (and CI) can see at a glance that no simulated
result, cache key or artifact can depend on the host clock — only
telemetry, job timestamps and footer wall-times can.

``repro.obs`` itself stays outside the version-tag closure, so nothing
here can rotate a cache key either.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "perf_counter", "wall_time"]


def wall_time() -> float:
    """Seconds since the epoch — job timestamps, stale-file ages."""
    return time.time()


def perf_counter() -> float:
    """High-resolution monotonic timer — span durations, footers."""
    return time.perf_counter()


def monotonic() -> float:
    """Monotonic clock for deadlines that must survive clock steps."""
    return time.monotonic()
