"""Deterministic-safe observability: metrics registry + span tracer.

``repro.obs`` is the stack's telemetry sidecar. It is stdlib-only,
imports nothing from the rest of ``repro`` (so any layer may import it
without cycles), and deliberately stays **outside the version-tag
closure**: enabling tracing rotates no cache key, invalidates nothing,
and every artifact stays byte-identical with telemetry on or off.

Two enforcement points keep it honest:

* version-tagged packages (the simulator closure) must not import this
  package — the kernel/engine layers expose plain counters instead and
  the untagged experiment/serve layers absorb them into the registry;
* all wall-clock access anywhere under ``repro`` funnels through
  :mod:`repro.obs.clock`.

Both are machine-checked by the ``telemetry-hygiene`` rule in
``repro.analysis``.
"""

from repro.obs import clock
from repro.obs.metrics import (
    CYCLE_BUCKETS,
    SECONDS_BUCKETS,
    SPAN_COUNT_BUCKETS,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    kernel_totals,
    record_kernel_delta,
    set_registry,
)
from repro.obs.runtime import (
    ENV_VAR,
    configure,
    disable,
    flush,
    get_tracer,
    instant,
    span,
    trace_enabled,
)

__all__ = [
    "CYCLE_BUCKETS",
    "ENV_VAR",
    "SECONDS_BUCKETS",
    "SPAN_COUNT_BUCKETS",
    "MetricsRegistry",
    "clock",
    "configure",
    "counter",
    "disable",
    "flush",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "instant",
    "kernel_totals",
    "record_kernel_delta",
    "set_registry",
    "span",
    "trace_enabled",
]
