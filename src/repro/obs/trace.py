"""Span tracer: Chrome ``trace_event`` JSON + an NDJSON event log.

Two files per traced process, both under the configured trace
directory and both suffixed with the pid so pool workers never clobber
the parent or each other:

* ``trace-<pid>.json`` — a ``{"traceEvents": [...]}`` document in the
  Chrome trace-event format (complete ``"X"`` events with microsecond
  ``ts``/``dur``), loadable directly in Perfetto or ``chrome://tracing``.
  Written whole on :meth:`Tracer.flush` (and at interpreter exit).
* ``events-<pid>.ndjson`` — the same events appended one JSON object
  per line *as they happen*, so a worker that is terminated mid-batch
  still leaves its spans behind.

The tracer is a pure sidecar: it observes, never steers. Nothing in it
may feed back into simulation state, cache keys or artifacts.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs import clock

__all__ = ["NULL_TRACER", "NullTracer", "Tracer"]


class Tracer:
    """Collects trace events for one process; thread-safe."""

    enabled = True

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self._epoch = clock.perf_counter()
        self._events: List[Dict] = []
        self._lock = threading.Lock()
        self._ndjson = open(
            self.directory / f"events-{self.pid}.ndjson",
            "a",
            encoding="utf-8",
        )

    # -- emission ------------------------------------------------------

    def _emit(self, event: Dict) -> None:
        line = json.dumps(event, sort_keys=True)
        with self._lock:
            self._events.append(event)
            self._ndjson.write(line + "\n")
            # Flush per event: spans are coarse (one per simulation, job
            # or batch), and an abruptly-killed worker keeps its log.
            self._ndjson.flush()

    def complete(
        self,
        name: str,
        start_perf: float,
        duration: float,
        args: Optional[Dict] = None,
        cat: str = "repro",
    ) -> None:
        """Record a finished span as a Chrome complete ("X") event."""
        self._emit(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": round((start_perf - self._epoch) * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "pid": self.pid,
                "tid": threading.get_ident(),
                "args": dict(args or {}),
            }
        )

    def instant(
        self, name: str, args: Optional[Dict] = None, cat: str = "repro"
    ) -> None:
        """Record a point event ("i", thread scope)."""
        self._emit(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": round((clock.perf_counter() - self._epoch) * 1e6, 3),
                "pid": self.pid,
                "tid": threading.get_ident(),
                "args": dict(args or {}),
            }
        )

    # -- persistence ---------------------------------------------------

    def flush(self) -> Path:
        """Write ``trace-<pid>.json`` atomically; returns its path."""
        with self._lock:
            events = list(self._events)
            self._ndjson.flush()
        path = self.directory / f"trace-{self.pid}.json"
        tmp = path.with_suffix(f".tmp-{self.pid}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {"traceEvents": events, "displayTimeUnit": "ms"},
                fh,
                sort_keys=True,
            )
        os.replace(tmp, path)
        return path

    def close(self) -> None:
        self.flush()
        with self._lock:
            self._ndjson.close()


class NullTracer:
    """Disabled tracer: every operation is a no-op."""

    enabled = False
    pid = None

    def complete(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
