"""Tracing runtime: activation, the ``span()`` context manager, flush.

Activation is a sidecar switch with two equivalent spellings:

* ``--trace-out DIR`` on the campaign/explore/discover CLIs (which call
  :func:`configure`), or
* the environment variable ``REPRO_TRACE=DIR``.

:func:`configure` also *exports* ``REPRO_TRACE``, so multiprocessing
pool workers forked afterwards pick tracing up automatically and write
their own pid-suffixed files into the same directory.
:func:`get_tracer` re-checks the pid on every call, so a forked child
that inherited the parent's tracer object transparently gets a fresh
one instead of appending to the parent's files.

``span()`` always feeds the duration histogram
``repro_span_seconds{span=...}`` in the metrics registry (cheap, and it
makes ``GET /metrics`` useful without tracing); trace *files* are only
written when tracing is configured.
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

from repro.obs import clock, metrics
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ENV_VAR",
    "configure",
    "disable",
    "flush",
    "get_tracer",
    "instant",
    "span",
    "trace_enabled",
]

ENV_VAR = "REPRO_TRACE"

_TRACER: Optional[Tracer] = None
_ATEXIT_REGISTERED = False


def configure(trace_dir: os.PathLike) -> Tracer:
    """Enable tracing into ``trace_dir`` for this process and its workers."""
    global _TRACER, _ATEXIT_REGISTERED
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(trace_dir)
    os.environ[ENV_VAR] = str(trace_dir)
    if not _ATEXIT_REGISTERED:
        _ATEXIT_REGISTERED = True
        atexit.register(flush)
    return _TRACER


def disable() -> None:
    """Flush and turn tracing off (tests; also clears ``REPRO_TRACE``)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None
    os.environ.pop(ENV_VAR, None)


def get_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer, or the shared no-op tracer when disabled."""
    global _TRACER
    if _TRACER is not None and _TRACER.pid == os.getpid():
        return _TRACER
    env = os.environ.get(ENV_VAR)
    if env:
        # Either first use under REPRO_TRACE, or a forked worker whose
        # inherited tracer belongs to the parent pid: (re)configure so
        # this process writes its own pid-suffixed files.
        return configure(env)
    return NULL_TRACER


def trace_enabled() -> bool:
    return get_tracer().enabled


@contextmanager
def span(name: str, **args: object) -> Iterator[Dict[str, object]]:
    """Time a block; yields a dict for provenance added mid-span.

    The duration always lands in ``repro_span_seconds{span=name}``;
    a trace event is emitted only when tracing is active.
    """
    tracer = get_tracer()
    extra: Dict[str, object] = {str(k): v for k, v in args.items()}
    start = clock.perf_counter()
    try:
        yield extra
    finally:
        duration = clock.perf_counter() - start
        metrics.histogram(
            "repro_span_seconds", buckets=metrics.SECONDS_BUCKETS, span=name
        ).observe(duration)
        if tracer.enabled:
            tracer.complete(name, start, duration, extra)


def instant(name: str, **args: object) -> None:
    """Point event in the trace (no-op when tracing is off)."""
    tracer = get_tracer()
    if tracer.enabled:
        tracer.instant(name, dict(args))


def flush() -> None:
    """Persist trace + metrics files for this process (no-op if off)."""
    tracer = get_tracer()
    if not tracer.enabled:
        return
    tracer.flush()
    prom = tracer.directory / f"metrics-{tracer.pid}.prom"
    tmp = prom.with_suffix(f".tmp-{tracer.pid}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(metrics.get_registry().render_prometheus())
    os.replace(tmp, prom)
