"""Process-local metrics registry: counters, gauges, histograms.

The registry is the one sink for every quantitative signal the stack
emits — cache hits, simulated cycles, queue depths, span durations.
Design constraints, in order:

* **Sidecar only.** Nothing here is ever consulted by simulation code;
  values flow *out* of the registry (Prometheus text, snapshots, the
  campaign footer) and never back into a ``result_key``, fingerprint or
  artifact.
* **Mergeable.** Counters and histograms are monotone accumulators, so
  a worker process can snapshot the registry before a job, compute the
  delta afterwards, and ship it to the parent where
  :meth:`MetricsRegistry.merge_delta` folds it in losslessly — the same
  content whether the matrix ran serially or across a pool.
* **Deterministic rendering.** Snapshots and the Prometheus exposition
  sort by series identity, so two registries with equal contents render
  byte-identically.

Gauges are point-in-time readings (queue depth, in-flight batches);
they are deliberately excluded from deltas and merges.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CYCLE_BUCKETS",
    "SECONDS_BUCKETS",
    "SPAN_COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "kernel_totals",
    "record_kernel_delta",
    "set_registry",
]

# Fixed bucket boundaries (upper bounds, exclusive of +Inf). Fixed so
# every process buckets identically and worker deltas merge bucket by
# bucket without resampling.
CYCLE_BUCKETS: Tuple[float, ...] = (
    100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0
)
SPAN_COUNT_BUCKETS: Tuple[float, ...] = (1.0, 10.0, 100.0, 1_000.0, 10_000.0)
SECONDS_BUCKETS: Tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0)

_KERNEL_FIELDS = (
    "executed_cycles", "skipped_cycles", "skip_spans", "drained_broadcasts"
)
_KERNEL_RUN_BUCKETS = {
    "executed_cycles": CYCLE_BUCKETS,
    "skipped_cycles": CYCLE_BUCKETS,
    "skip_spans": SPAN_COUNT_BUCKETS,
    "drained_broadcasts": SPAN_COUNT_BUCKETS,
}


def _series_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical, reversible series identity (used in snapshots)."""
    return json.dumps([name, sorted(labels.items())], separators=(",", ":"))


def _parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    name, items = json.loads(key)
    return name, dict(items)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Dict[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = sorted(labels.items()) + list(extra)
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        value = int(value)
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotone accumulator."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Point-in-time reading; excluded from deltas and merges."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram (per-bucket counts + sum + count)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self, name: str, labels: Dict[str, str], buckets: Tuple[float, ...]
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs sorted, non-empty buckets")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last bin is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def merge_raw(self, counts: Iterable[int], total: float, count: int) -> None:
        counts = list(counts)
        if len(counts) != len(self.counts):
            raise ValueError(f"histogram {self.name}: bucket count mismatch")
        for i, c in enumerate(counts):
            self.counts[i] += c
        self.sum += total
        self.count += count


class MetricsRegistry:
    """Thread-safe registry of named, labelled metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- metric handles ------------------------------------------------

    @staticmethod
    def _labelled(labels: Dict[str, object]) -> Dict[str, str]:
        return {str(k): str(v) for k, v in labels.items()}

    def counter(self, name: str, **labels: object) -> Counter:
        labelled = self._labelled(labels)
        key = _series_key(name, labelled)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, labelled)
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        labelled = self._labelled(labels)
        key = _series_key(name, labelled)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(name, labelled)
        return metric

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = SECONDS_BUCKETS,
        **labels: object,
    ) -> Histogram:
        labelled = self._labelled(labels)
        key = _series_key(name, labelled)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(
                    name, labelled, buckets
                )
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(f"histogram {name}: conflicting bucket bounds")
        return metric

    # -- snapshots, deltas, merges ------------------------------------

    def snapshot(self) -> Dict:
        """Deep, JSON-able copy of the current state (sorted keys)."""
        with self._lock:
            return {
                "counters": {
                    key: metric.value
                    for key, metric in sorted(self._counters.items())
                },
                "gauges": {
                    key: metric.value
                    for key, metric in sorted(self._gauges.items())
                },
                "histograms": {
                    key: {
                        "buckets": list(metric.buckets),
                        "counts": list(metric.counts),
                        "sum": metric.sum,
                        "count": metric.count,
                    }
                    for key, metric in sorted(self._histograms.items())
                },
            }

    def delta_since(self, before: Dict) -> Dict:
        """Counter/histogram growth since ``before`` (a snapshot).

        Gauges are point-in-time and excluded. Zero deltas are dropped,
        so a worker that did nothing ships an empty payload.
        """
        now = self.snapshot()
        prior_counters = before.get("counters", {})
        counters = {
            key: value - prior_counters.get(key, 0)
            for key, value in now["counters"].items()
            if value != prior_counters.get(key, 0)
        }
        prior_hists = before.get("histograms", {})
        histograms = {}
        for key, state in now["histograms"].items():
            prior = prior_hists.get(key)
            if prior is None:
                if state["count"]:
                    histograms[key] = state
                continue
            if state["count"] == prior["count"]:
                continue
            histograms[key] = {
                "buckets": state["buckets"],
                "counts": [
                    a - b for a, b in zip(state["counts"], prior["counts"])
                ],
                "sum": state["sum"] - prior["sum"],
                "count": state["count"] - prior["count"],
            }
        return {"counters": counters, "histograms": histograms}

    def merge_delta(self, delta: Optional[Dict]) -> None:
        """Fold a worker's :meth:`delta_since` payload into this registry."""
        if not delta:
            return
        for key, amount in delta.get("counters", {}).items():
            name, labels = _parse_series_key(key)
            self.counter(name, **labels).inc(amount)
        for key, state in delta.get("histograms", {}).items():
            name, labels = _parse_series_key(key)
            metric = self.histogram(
                name, buckets=tuple(state["buckets"]), **labels
            )
            with self._lock:
                metric.merge_raw(state["counts"], state["sum"], state["count"])

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- rendering -----------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4), sorted and stable."""
        lines: List[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        seen_type: set = set()

        def header(name: str, kind: str) -> None:
            if name not in seen_type:
                seen_type.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for __, metric in counters:
            header(metric.name, "counter")
            lines.append(
                f"{metric.name}{_render_labels(metric.labels)}"
                f" {_format_value(metric.value)}"
            )
        for __, metric in gauges:
            header(metric.name, "gauge")
            lines.append(
                f"{metric.name}{_render_labels(metric.labels)}"
                f" {_format_value(metric.value)}"
            )
        for __, metric in histograms:
            header(metric.name, "histogram")
            cumulative = 0
            for bound, count in zip(metric.buckets, metric.counts):
                cumulative += count
                labels = _render_labels(
                    metric.labels, (("le", _format_value(bound)),)
                )
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            labels = _render_labels(metric.labels, (("le", "+Inf"),))
            lines.append(f"{metric.name}_bucket{labels} {metric.count}")
            bare = _render_labels(metric.labels)
            lines.append(f"{metric.name}_sum{bare} {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count{bare} {metric.count}")
        return "\n".join(lines) + "\n"


# The process-global registry. Call sites go through the module-level
# helpers below (never the bare binding) so tests can swap a fresh
# registry in with :func:`set_registry`.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process registry; returns the old one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def counter(name: str, **labels: object) -> Counter:
    return get_registry().counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge:
    return get_registry().gauge(name, **labels)


def histogram(
    name: str, buckets: Tuple[float, ...] = SECONDS_BUCKETS, **labels: object
) -> Histogram:
    return get_registry().histogram(name, buckets=buckets, **labels)


def record_kernel_delta(kernel: str, delta: Dict[str, int]) -> None:
    """Absorb one run's ``KernelTelemetry`` growth into the registry.

    Feeds both the per-kernel lifetime counters
    (``repro_kernel_<field>_total{kernel=...}``) and the per-run
    distribution histograms (``repro_run_<field>{kernel=...}``).
    """
    registry = get_registry()
    for field in _KERNEL_FIELDS:
        amount = int(delta.get(field, 0))
        if amount:
            registry.counter(
                f"repro_kernel_{field}_total", kernel=kernel
            ).inc(amount)
        registry.histogram(
            f"repro_run_{field}",
            buckets=_KERNEL_RUN_BUCKETS[field],
            kernel=kernel,
        ).observe(amount)


def kernel_totals() -> Dict[str, int]:
    """Kernel-cycle totals summed across kernels, ``KernelTelemetry`` shape."""
    totals = {field: 0 for field in _KERNEL_FIELDS}
    snap = get_registry().snapshot()["counters"]
    for key, value in snap.items():
        name, __ = _parse_series_key(key)
        if name.startswith("repro_kernel_") and name.endswith("_total"):
            field = name[len("repro_kernel_"):-len("_total")]
            if field in totals:
                totals[field] += value
    return totals
