"""repro — reproduction of "Low-Complexity Distributed Issue Queue".

Abella & González, HPCA 2004. The package provides:

* :mod:`repro.core` — a trace-driven cycle-level out-of-order superscalar
  simulator (Table 1 configuration);
* :mod:`repro.issue` — the four issue-queue organizations the paper
  studies (conventional CAM/RAM, IssueFIFO, LatFIFO, MixBUFF);
* :mod:`repro.workloads` — synthetic SPEC2000 stand-in benchmarks;
* :mod:`repro.energy` — CACTI/Wattch-style energy accounting;
* :mod:`repro.experiments` — one generator per figure of the paper.

Quick start::

    from repro import ExperimentRunner, MB_DISTR, IQ_64_64

    runner = ExperimentRunner()
    print(runner.ipc("swim", MB_DISTR), runner.ipc("swim", IQ_64_64))
"""

from repro.common.config import (
    IssueSchemeConfig,
    ProcessorConfig,
    default_config,
    scheme_name,
)
from repro.common.stats import SimulationStats, harmonic_mean
from repro.core.processor import Processor
from repro.energy.model import EnergyModel
from repro.experiments.configs import BASELINE_UNBOUNDED, IF_DISTR, IQ_64_64, MB_DISTR
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.experiments.store import ResultStore
from repro.workloads.generator import generate_trace
from repro.workloads.suites import (
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    get_profile,
    specfp2000,
    specint2000,
)

__version__ = "1.1.0"

__all__ = [
    "BASELINE_UNBOUNDED",
    "EnergyModel",
    "ExperimentRunner",
    "FP_BENCHMARKS",
    "IF_DISTR",
    "INT_BENCHMARKS",
    "IQ_64_64",
    "IssueSchemeConfig",
    "MB_DISTR",
    "Processor",
    "ProcessorConfig",
    "ResultStore",
    "RunScale",
    "SimulationStats",
    "default_config",
    "generate_trace",
    "get_profile",
    "harmonic_mean",
    "scheme_name",
    "specfp2000",
    "specint2000",
    "__version__",
]
