"""Physical-register readiness scoreboard.

This is the "table that stores just one bit per physical register
indicating whether it is available" of the FIFO schemes, generalized: it
stores the *cycle* at which each physical register's value is available,
which lets any scheme answer "ready at cycle t?" exactly. Initial
architectural state is available at cycle 0.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["Scoreboard", "NEVER"]

# Sentinel ready-cycle for a register whose producer has not issued yet.
NEVER = 1 << 60
_NEVER = NEVER


class Scoreboard:
    """Ready cycles for both physical register files.

    The accessors unpack ``(is_fp, index)`` tuples inline and select the
    bank with a conditional expression rather than a helper call — these
    run in the wakeup/select inner loops, where a Python-level call per
    operand is measurable.
    """

    __slots__ = ("_int", "_fp", "_version")

    def __init__(self, num_phys_int: int, num_phys_fp: int, num_arch_int: int, num_arch_fp: int) -> None:
        self._int: List[int] = [_NEVER] * num_phys_int
        self._fp: List[int] = [_NEVER] * num_phys_fp
        # Bumped on every readiness mutation; consumers may cache any
        # quantity derived from ready cycles and revalidate by version.
        self._version = 0
        # Initial architectural mappings (phys i holds arch i) are live-in
        # values, ready from the start.
        for i in range(num_arch_int):
            self._int[i] = 0
        for i in range(num_arch_fp):
            self._fp[i] = 0

    @property
    def version(self) -> int:
        """Monotonic counter of readiness mutations.

        While the version is unchanged, every ``ready_cycle`` answer is
        frozen, so a cached bound like "no operand set in queue Q can be
        fully ready before cycle c" stays exact.
        """
        return self._version

    def mark_pending(self, phys: Tuple[bool, int]) -> None:
        """Destination allocated: value not available until set_ready."""
        is_fp, index = phys
        (self._fp if is_fp else self._int)[index] = _NEVER
        self._version += 1

    def set_ready(self, phys: Tuple[bool, int], cycle: int) -> None:
        """Value of ``phys`` becomes available at ``cycle``."""
        is_fp, index = phys
        (self._fp if is_fp else self._int)[index] = cycle
        self._version += 1

    def ready_cycle(self, phys: Tuple[bool, int]) -> int:
        """Cycle at which ``phys`` is (or will be) available."""
        is_fp, index = phys
        return (self._fp if is_fp else self._int)[index]

    def is_ready(self, phys: Tuple[bool, int], cycle: int) -> bool:
        """True if the value is available to an instruction issuing at ``cycle``."""
        is_fp, index = phys
        return (self._fp if is_fp else self._int)[index] <= cycle

    def all_ready(self, phys_list, cycle: int) -> bool:
        """True if every register in ``phys_list`` is available at ``cycle``."""
        fp, intb = self._fp, self._int
        for is_fp, index in phys_list:
            if (fp if is_fp else intb)[index] > cycle:
                return False
        return True

    def is_scheduled(self, phys: Tuple[bool, int]) -> bool:
        """True once the producer has issued (ready cycle is known)."""
        is_fp, index = phys
        return (self._fp if is_fp else self._int)[index] < _NEVER

    def operands_ready_cycle(self, phys_list) -> int:
        """Earliest cycle at which all operands are available (0 if none)."""
        fp, intb = self._fp, self._int
        latest = 0
        for is_fp, index in phys_list:
            r = (fp if is_fp else intb)[index]
            if r > latest:
                latest = r
        return latest

    def next_activity_cycle(self, cycle: int) -> Optional[int]:
        """Skipping-kernel contract: readiness transitions need no timer.

        Every ``set_ready`` call is paired with a result-broadcast entry
        in the pipeline's event wheel (``Processor._schedule_completion``
        records both under the same completion cycle), so a register
        becoming ready is always covered by the broadcast wake source.
        """
        return None
