"""Reorder buffer: in-order commit and age identifiers.

The ROB is a bounded FIFO of :class:`~repro.core.uop.InFlight` entries.
Ages are monotone dispatch sequence numbers — the paper implements them
as "the reorder buffer position plus one extra wrap bit"; a monotone
integer is the software equivalent (the comparison outcomes are
identical).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.common.errors import SimulationError
from repro.core.uop import InFlight

__all__ = ["ReorderBuffer"]


class ReorderBuffer:
    """Bounded in-order retirement window."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise SimulationError("ROB needs at least one entry")
        self.capacity = entries
        self._entries: Deque[InFlight] = deque()
        self._next_age = 0
        self.committed = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def allocate_age(self) -> int:
        """Next age identifier (call only when actually dispatching)."""
        age = self._next_age
        self._next_age += 1
        return age

    def rollback_age(self) -> None:
        """Un-allocate the most recently allocated age.

        Dispatch allocates an age before asking the issue scheme for a
        placement; when placement fails the instruction retries next
        cycle and must get the *same* age again, or ages stop being dense
        dispatch sequence numbers. Only the latest allocation can be
        rolled back, and only while no instruction holds it — rolling
        back an age already pushed into the ROB would let a younger
        instruction reuse it.
        """
        if self._next_age == 0:
            raise SimulationError("no age allocated yet — nothing to roll back")
        if self._entries and self._entries[-1].age >= self._next_age - 1:
            raise SimulationError("cannot roll back an age already in the ROB")
        self._next_age -= 1

    def push(self, uop: InFlight) -> None:
        """Append a newly dispatched instruction (must be in age order)."""
        if self.full:
            raise SimulationError("ROB overflow — dispatch must check full")
        if self._entries and uop.age <= self._entries[-1].age:
            raise SimulationError("ROB push out of age order")
        self._entries.append(uop)

    def commit_ready(self, cycle: int, width: int) -> List[InFlight]:
        """Retire up to ``width`` completed instructions in order."""
        retired: List[InFlight] = []
        while (
            self._entries
            and len(retired) < width
            and self._entries[0].completed
            and self._entries[0].complete_cycle <= cycle
        ):
            retired.append(self._entries.popleft())
        self.committed += len(retired)
        return retired

    def head_seq(self) -> int:
        """Sequence number of the oldest in-flight instruction (or -1)."""
        return self._entries[0].seq if self._entries else -1

    def next_activity_cycle(self, cycle: int) -> Optional[int]:
        """Skipping-kernel contract: next cycle commit could retire.

        Only the head gates commit. If it has issued, its completion
        cycle is scheduled and is the next commit opportunity; if it has
        not, retirement first needs an issue event, which other wake
        sources (broadcasts, functional units) already cover.
        """
        if self._entries and self._entries[0].completed:
            when = self._entries[0].complete_cycle
            if when >= cycle:
                return when
        return None

    def __iter__(self):
        return iter(self._entries)
