"""Out-of-order core substrate and the top-level processor model."""

from repro.core.engine import (
    GLOBAL_TELEMETRY,
    KERNEL_NAIVE,
    KERNEL_SKIP,
    KernelTelemetry,
)
from repro.core.functional_units import (
    DistributedFuPool,
    FunctionalUnit,
    FuPool,
    PooledFuPool,
)
from repro.core.lsq import LoadStoreQueue
from repro.core.processor import Processor
from repro.core.rename import PhysicalRegister, RenameMap
from repro.core.rob import ReorderBuffer
from repro.core.scoreboard import Scoreboard
from repro.core.uop import InFlight

__all__ = [
    "DistributedFuPool",
    "FuPool",
    "FunctionalUnit",
    "GLOBAL_TELEMETRY",
    "InFlight",
    "KERNEL_NAIVE",
    "KERNEL_SKIP",
    "KernelTelemetry",
    "LoadStoreQueue",
    "PhysicalRegister",
    "PooledFuPool",
    "Processor",
    "RenameMap",
    "ReorderBuffer",
    "Scoreboard",
]
