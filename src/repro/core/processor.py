"""The out-of-order pipeline stages.

Stage order inside one simulated cycle (back to front, the usual trick so
a value produced this cycle is visible next cycle):

1. branch resolutions due this cycle unblock the front end;
2. commit retires completed instructions in order (ROB head);
3. results completing this cycle are broadcast (energy accounting);
4. the issue scheme selects and issues instructions;
5. dispatch renames and places instructions, in order, stalling on the
   first failure (ROB full, no physical register, or the scheme's
   placement rules);
6. decode moves instructions from the fetch queue to the dispatch queue;
7. fetch fills the fetch queue.

Timing convention: an instruction issued at cycle *t* with latency *L*
has its result available to consumers issuing at *t+L* (full bypass).
Loads add the L1D/L2/memory access on top of address computation, subject
to the LSQ's disambiguation constraints; stores complete when their
address is computed (data is written to the cache at commit).

The *loop* that drives :meth:`Processor.step` lives in
:mod:`repro.core.engine`: the naive kernel ticks every cycle, the
event-driven kernel proves quiescence and jumps over dead spans. The
processor supports the skipper through three hooks — :meth:`step`'s
activity flag, :meth:`next_event_cycle` (the union of every component's
``next_activity_cycle`` contract) and
:meth:`idle_accounting_snapshot`/:meth:`advance_idle` (interval-form
per-cycle accounting).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.config import ProcessorConfig
from repro.common.errors import SimulationError
from repro.common.stats import SimulationStats, StatCounters
from repro.core import engine
from repro.core.functional_units import DistributedFuPool, FuPool, PooledFuPool
from repro.core.lsq import LoadStoreQueue
from repro.core.rename import RenameMap
from repro.core.rob import ReorderBuffer
from repro.core.scoreboard import Scoreboard
from repro.core.uop import InFlight
from repro.frontend.branch_predictor import HybridBranchPredictor
from repro.frontend.fetch import FetchEngine
from repro.isa.instructions import Instruction
from repro.isa.opcodes import FuType, latency_for
from repro.issue import build_scheme
from repro.issue.base import IssueContext
from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.trace import Trace

__all__ = ["Processor"]

_MUX_EVENT = {
    FuType.INT_ALU: "mux_int_alu",
    FuType.INT_MULDIV: "mux_int_mul",
    FuType.FP_ALU: "mux_fp_alu",
    FuType.FP_MULDIV: "mux_fp_mul",
}

_DECODE_LATENCY = 1


class Processor:
    """One processor instance simulating one trace under one scheme."""

    def __init__(self, config: ProcessorConfig, trace: Trace) -> None:
        config.validate()
        trace.validate(config.num_arch_int_regs, config.num_arch_fp_regs)
        self.config = config
        self.trace = trace
        self.events = StatCounters()
        self.hierarchy = MemoryHierarchy(config)
        self.predictor = HybridBranchPredictor(config.branch)
        self.fetch = FetchEngine(config, trace, self.hierarchy, self.predictor)
        self.renamer = RenameMap(
            config.num_arch_int_regs,
            config.num_arch_fp_regs,
            config.int_phys_regs,
            config.fp_phys_regs,
        )
        self.scoreboard = Scoreboard(
            config.int_phys_regs,
            config.fp_phys_regs,
            config.num_arch_int_regs,
            config.num_arch_fp_regs,
        )
        self.rob = ReorderBuffer(config.rob_entries)
        self.lsq = LoadStoreQueue()
        self.scheme = build_scheme(config, self.events)
        if hasattr(self.scheme, "bind_scoreboard"):
            self.scheme.bind_scoreboard(self.scoreboard)
        self.fu_pool = self._build_fu_pool()
        self._decode_queue: Deque[Tuple[Instruction, int]] = deque()
        self._broadcasts: Dict[int, int] = {}
        self._branch_resolutions: Dict[int, List[InFlight]] = {}
        self.stats = SimulationStats(events=self.events)
        self._occupancy_accum = 0
        # Instruction the issue scheme refused to place this cycle (None
        # when dispatch was not scheme-stalled); the skipping kernel uses
        # it to ask the scheme for its next placement-relevant cycle.
        self._dispatch_blocked_inst: Optional[Instruction] = None
        self.kernel_telemetry = engine.KernelTelemetry()

    def _build_fu_pool(self) -> FuPool:
        scheme_cfg = self.config.scheme
        if scheme_cfg.distributed_fus:
            return DistributedFuPool(
                scheme_cfg.int_queues, scheme_cfg.fp_queues, self.config.fus
            )
        return PooledFuPool(self.config.fus)

    # ------------------------------------------------------------------
    # Completion scheduling (called by IssueContext when an instruction
    # issues).
    # ------------------------------------------------------------------
    def _schedule_completion(self, uop: InFlight, cycle: int) -> None:
        fus = self.config.fus
        op = uop.op
        if op.is_load:
            addr_ready = cycle + fus.address_latency
            start, forwarding = self.lsq.load_access_constraints(uop, addr_ready)
            if forwarding is not None:
                # Store-to-load forwarding: the data moves once both the
                # load's access may start and the store's data is ready.
                data_ready = (
                    self.scoreboard.ready_cycle(forwarding.src_phys[0])
                    if forwarding.src_phys
                    else start
                )
                complete = max(start, data_ready) + 1
            else:
                complete = start + self.hierarchy.data_access_latency(uop.inst.mem_addr)
        elif op.is_store:
            addr_known = cycle + fus.address_latency
            self.lsq.store_issued(uop, addr_known)
            complete = addr_known
        else:
            complete = cycle + latency_for(op, fus)
        uop.complete_cycle = complete
        self.events.add(_MUX_EVENT[uop.fu_type])
        if uop.dest_phys is not None:
            self.scoreboard.set_ready(uop.dest_phys, complete)
            self._broadcasts[complete] = self._broadcasts.get(complete, 0) + 1
        if op.is_branch:
            self._branch_resolutions.setdefault(complete, []).append(uop)

    # ------------------------------------------------------------------
    # Pipeline stages.
    # ------------------------------------------------------------------
    def _resolve_branches(self, cycle: int) -> int:
        resolved = self._branch_resolutions.pop(cycle, ())
        for uop in resolved:  # resolved now
            was_blocking = self.fetch.blocked_on_branch == uop.seq
            self.fetch.resolve_branch(uop.seq, cycle)
            if was_blocking:
                self.scheme.on_mispredict_resolved()
        return len(resolved)

    def _commit(self, cycle: int) -> int:
        retired = self.rob.commit_ready(cycle, self.config.commit_width)
        for uop in retired:
            self.renamer.release(uop.prev_phys)
            if uop.op.is_store:
                self.lsq.retire_store(uop)
                # The store's data is written to the D-cache at commit.
                self.hierarchy.data_access_latency(uop.inst.mem_addr, is_store=True)
        return len(retired)

    def _issue(self, cycle: int) -> int:
        ctx = IssueContext(
            cycle,
            self.config,
            self.scoreboard,
            self.fu_pool,
            self.lsq,
            self._schedule_completion,
        )
        self.scheme.select_and_issue(ctx)
        self.events.add("instructions_issued", len(ctx.issued))
        return len(ctx.issued)

    def _dispatch(self, cycle: int) -> int:
        dispatched = 0
        stalled = False
        self._dispatch_blocked_inst = None
        while (
            self._decode_queue
            and self._decode_queue[0][1] <= cycle
            and dispatched < self.config.decode_width
        ):
            inst, __ = self._decode_queue[0]
            if self.rob.full or not self.renamer.can_rename(inst.dest):
                stalled = True
                break
            uop = InFlight(
                inst,
                src_phys=[],
                dest_phys=None,
                prev_phys=None,
                rob_index=self.rob.occupancy,
                age=self.rob.allocate_age(),
                dispatch_cycle=cycle,
            )
            if not self.scheme.try_dispatch(uop, cycle):
                # Placement failed: roll the age allocator back so ages
                # stay dense and retry next cycle.
                self.rob.rollback_age()
                stalled = True
                self._dispatch_blocked_inst = inst
                break
            self._decode_queue.popleft()
            renamed = self.renamer.rename(inst.srcs, inst.dest)
            uop.src_phys = renamed["src_phys"]
            uop.dest_phys = renamed["dest_phys"]
            uop.prev_phys = renamed["prev_phys"]
            if uop.dest_phys is not None:
                self.scoreboard.mark_pending(uop.dest_phys)
            self.rob.push(uop)
            if uop.op.is_store:
                self.lsq.add_store(uop)
            dispatched += 1
        if stalled:
            self.stats.dispatch_stall_cycles += 1
        return dispatched

    def _decode(self, cycle: int) -> int:
        room = 2 * self.config.decode_width - len(self._decode_queue)
        if room <= 0:
            return 0
        moved = self.fetch.pop_instructions(min(room, self.config.decode_width))
        for inst in moved:
            self._decode_queue.append((inst, cycle + _DECODE_LATENCY))
        return len(moved)

    # ------------------------------------------------------------------
    # One simulated cycle (driven by a repro.core.engine kernel).
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> Tuple[bool, int]:
        """Execute one simulated cycle; returns ``(activity, retired)``.

        ``activity`` is False only when the machine was fully quiescent:
        no branch resolved, nothing committed, no result broadcast,
        nothing issued, dispatched, decoded or fetched, and the fetch
        engine's internal state (I-cache line tracking and timers) did
        not move. After such a cycle every stage's behaviour is a frozen
        function of state plus the cycle number, which is what lets the
        skipping kernel jump to the next scheduled event.
        """
        resolved = self._resolve_branches(cycle)
        retired = self._commit(cycle)
        broadcasts = self._broadcasts.pop(cycle, 0)
        self.scheme.on_result_broadcast(cycle, broadcasts)
        issued = self._issue(cycle)
        dispatched = self._dispatch(cycle)
        decoded = self._decode(cycle)
        fetch_token = self.fetch.state_token()
        fetched = self.fetch.fetch_cycle(cycle)
        self.scheme.on_cycle_end(cycle)
        self._occupancy_accum += self.scheme.occupancy()
        activity = bool(
            resolved
            or retired
            or broadcasts
            or issued
            or dispatched
            or decoded
            or fetched
            or self.fetch.state_token() != fetch_token
        )
        return activity, retired

    # ------------------------------------------------------------------
    # Event wheel and interval accounting (skipping-kernel support).
    # ------------------------------------------------------------------
    def next_event_cycle(
        self, cycle: int, defer_inert_broadcasts: bool = False
    ) -> Optional[int]:
        """Earliest cycle ``>= cycle`` at which any stage could act again.

        ``cycle`` is the index of the next *unexecuted* cycle; an event
        falling exactly there means there is nothing to skip. Valid only
        immediately after a quiescent :meth:`step`. The union
        of every component's ``next_activity_cycle`` contract: pending
        result broadcasts and branch resolutions, the ROB head's
        completion, the I-cache fill timer, functional-unit busy windows
        and the scheme's own cycle-dependent boundaries (MixBUFF
        chain-latency codes, LatFIFO estimate-driven placement). Returns
        ``None`` when nothing is scheduled — a true deadlock.

        With ``defer_inert_broadcasts`` set, pending result broadcasts
        are taken off the wheel and replaced by the scheme's
        ``next_wakeup_cycle`` contract — the earliest cycle a *waiting*
        instruction's operands become ready. A broadcast before that
        cycle is inert (it can wake nothing; its only effect is wakeup
        accounting that is a pure function of frozen scoreboard state
        and the cycle number), so the caller may jump a span containing
        it and replay the accounting in closed form via
        :meth:`drain_broadcasts` (pure-broadcast drain spans). If
        deferred broadcasts are the *only* scheduled events they are
        still returned, so deferral never manufactures a deadlock.
        """
        candidates = []
        deferred = False
        if self._broadcasts:
            if defer_inert_broadcasts:
                deferred = True
                wake = self.scheme.next_wakeup_cycle(cycle, self.scoreboard)
                if wake is not None:
                    candidates.append(wake)
            else:
                candidates.append(min(self._broadcasts))
        if self._branch_resolutions:
            candidates.append(min(self._branch_resolutions))
        for component in (self.rob, self.fetch, self.fu_pool, self.lsq,
                          self.scoreboard, self.scheme):
            when = component.next_activity_cycle(cycle)
            if when is not None:
                candidates.append(when)
        if self._dispatch_blocked_inst is not None:
            when = self.scheme.next_dispatch_activity_cycle(
                self._dispatch_blocked_inst, cycle
            )
            if when is not None:
                candidates.append(when)
        upcoming = [when for when in candidates if when >= cycle]
        if not upcoming and deferred:
            upcoming = [when for when in self._broadcasts if when >= cycle]
        return min(upcoming) if upcoming else None

    def drain_broadcasts(self, start: int, end: int) -> int:
        """Closed-form replay of inert broadcasts in ``[start, end)``.

        Sound whenever ``end`` does not exceed the scheme's
        ``next_wakeup_cycle`` (no waiting instruction's readiness
        changes inside the span, so the broadcasts wake nothing) and the
        span is otherwise quiescent (queue membership and the scoreboard
        are frozen). Each pending broadcast cycle is popped from the
        wheel and its ``on_result_broadcast`` accounting applied with
        its own cycle number — a pure function of frozen state, so the
        replay is bit-identical to executing the span. Returns the
        number of drained cycles.
        """
        drained = 0
        for when in sorted(self._broadcasts):
            if start <= when < end:
                self.scheme.on_result_broadcast(when, self._broadcasts.pop(when))
                drained += 1
        return drained

    def idle_accounting_snapshot(self) -> dict:
        """Snapshot of every counter a quiescent cycle can move."""
        return {
            "events": self.events.as_dict(),
            "dispatch_stall_cycles": self.stats.dispatch_stall_cycles,
            "fetch_blocked_cycles": self.fetch.blocked_cycles,
            "occupancy_accum": self._occupancy_accum,
            "scheme": self.scheme.idle_counters(),
        }

    def advance_idle(self, before: dict, n_cycles: int) -> None:
        """Account ``n_cycles`` quiescent cycles in closed form.

        ``before`` is an :meth:`idle_accounting_snapshot` taken just
        before one fully executed quiescent cycle; the delta between then
        and now is exactly what each skipped cycle would have accrued
        (selection energy, ready-table polls, stall counters, occupancy
        integration), so it is replayed ``n_cycles`` times.
        """
        before_events = before["events"]
        for name, value in self.events.as_dict().items():
            delta = value - before_events.get(name, 0)
            if delta:
                self.events.add(name, delta * n_cycles)
        self.stats.dispatch_stall_cycles += n_cycles * (
            self.stats.dispatch_stall_cycles - before["dispatch_stall_cycles"]
        )
        self.fetch.blocked_cycles += n_cycles * (
            self.fetch.blocked_cycles - before["fetch_blocked_cycles"]
        )
        self._occupancy_accum += n_cycles * (
            self._occupancy_accum - before["occupancy_accum"]
        )
        self.scheme.apply_idle_counters(before["scheme"], n_cycles)

    # ------------------------------------------------------------------
    # Main entry point.
    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: Optional[int] = None,
        warmup_instructions: int = 0,
        kernel: Optional[str] = None,
        total_instructions: Optional[int] = None,
    ) -> SimulationStats:
        """Simulate until the whole trace commits; returns the stats.

        ``warmup_instructions`` committed instructions are excluded from
        every reported statistic and energy event (caches, predictor and
        queues stay warm across the boundary) — the software analogue of
        the paper's "after skipping the initialization part".

        ``kernel`` selects the simulation loop (``"naive"`` or
        ``"skip"``, default: the config's ``kernel`` field). Both kernels
        produce bit-identical statistics; only wall-clock time differs.

        ``total_instructions`` stops the run *mid-flight* once that many
        instructions have committed, leaving younger trace instructions
        unfetched or in the pipeline. Sampled-simulation slices use this
        so the measurement ends at the same kind of boundary it starts
        at (a full pipeline), keeping per-instruction event rates free
        of drain artefacts; the default (the whole trace) retires
        everything, as before.
        """
        total = len(self.trace)
        if total_instructions is not None:
            if not 0 < total_instructions <= total:
                raise SimulationError(
                    "total_instructions must be within the trace length"
                )
            total = total_instructions
        if warmup_instructions >= total:
            raise SimulationError("warmup must be shorter than the trace")
        if max_cycles is None:
            max_cycles = 400 * total + 100_000
        if kernel is None:
            kernel = self.config.kernel
        return engine.run_kernel(self, kernel, total, max_cycles, warmup_instructions)

    def _snapshot(self, cycle: int, committed: int) -> dict:
        """Record the warm-up boundary so _finalize can report deltas."""
        discard = StatCounters()
        self.hierarchy.collect_events(discard)  # resets cache counters
        return {
            "cycle": cycle,
            "committed": committed,
            "events": self.events.as_dict(),
            "fetched": self.fetch.fetched_instructions,
            "predictions": self.predictor.predictions,
            "mispredictions": self.predictor.mispredictions,
            "dispatch_stalls": self.stats.dispatch_stall_cycles,
            "occupancy": self._occupancy_accum,
            "forwarded": self.lsq.forwarded_loads,
        }

    def _finalize(self, cycles: int, committed: int, snapshot: Optional[dict]) -> None:
        base = snapshot or {
            "cycle": 0,
            "committed": 0,
            "events": {},
            "fetched": 0,
            "predictions": 0,
            "mispredictions": 0,
            "dispatch_stalls": 0,
            "occupancy": 0,
            "forwarded": 0,
        }
        if snapshot is not None:
            warm_events = base["events"]
            trimmed = StatCounters()
            for name, value in self.events.as_dict().items():
                trimmed.add(name, value - warm_events.get(name, 0))
            self.events = trimmed
            self.stats.events = trimmed
        self.stats.cycles = cycles - base["cycle"]
        self.stats.committed_instructions = committed - base["committed"]
        self.stats.fetched_instructions = self.fetch.fetched_instructions - base["fetched"]
        self.stats.branch_predictions = self.predictor.predictions - base["predictions"]
        self.stats.branch_mispredictions = (
            self.predictor.mispredictions - base["mispredictions"]
        )
        self.stats.dispatch_stall_cycles -= base["dispatch_stalls"]
        self.hierarchy.collect_events(self.events)
        self.events.add("cycles", self.stats.cycles)
        self.events.add("committed", self.stats.committed_instructions)
        self.events.add("iq_occupancy_cycles", self._occupancy_accum - base["occupancy"])
        self.events.add("lsq_forwarded_loads", self.lsq.forwarded_loads - base["forwarded"])
