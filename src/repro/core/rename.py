"""Register renaming: architectural → physical mapping with free lists.

The trace-driven pipeline has no wrong path, so the renamer never rolls
back; it still models the *resource* behaviour that matters — dispatch
stalls when the 160-entry physical register files run out, and registers
are recycled only when the next writer of the same architectural register
commits (the standard R10K scheme).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.errors import SimulationError
from repro.isa.instructions import RegisterRef

__all__ = ["PhysicalRegister", "RenameMap"]


class PhysicalRegister:
    """Identity of one physical register: (is_fp, index)."""

    __slots__ = ("is_fp", "index")

    def __init__(self, is_fp: bool, index: int) -> None:
        self.is_fp = is_fp
        self.index = index

    def __repr__(self) -> str:
        return f"{'pf' if self.is_fp else 'pr'}{self.index}"


class _RegisterFile:
    """Free list + mapping for one register class."""

    def __init__(self, num_arch: int, num_phys: int) -> None:
        self.num_arch = num_arch
        self.num_phys = num_phys
        # Architectural register i starts mapped to physical register i.
        self.map: List[int] = list(range(num_arch))
        self.free: Deque[int] = deque(range(num_arch, num_phys))

    @property
    def free_count(self) -> int:
        return len(self.free)


class RenameMap:
    """Renamer for both register classes.

    ``rename`` translates one instruction's registers; the caller must
    check :meth:`can_rename` first (dispatch-stage stall condition).
    """

    def __init__(
        self,
        num_arch_int: int,
        num_arch_fp: int,
        num_phys_int: int,
        num_phys_fp: int,
    ) -> None:
        self._int = _RegisterFile(num_arch_int, num_phys_int)
        self._fp = _RegisterFile(num_arch_fp, num_phys_fp)

    def _file(self, is_fp: bool) -> _RegisterFile:
        return self._fp if is_fp else self._int

    def free_registers(self, is_fp: bool) -> int:
        """Number of free physical registers of one class."""
        return self._file(is_fp).free_count

    def can_rename(self, dest: Optional[RegisterRef]) -> bool:
        """True if a destination register can be allocated (or none needed)."""
        if dest is None:
            return True
        return self._file(dest.is_fp).free_count > 0

    def lookup(self, ref: RegisterRef) -> int:
        """Current physical register holding architectural ``ref``."""
        return self._file(ref.is_fp).map[ref.index]

    def rename(self, srcs, dest: Optional[RegisterRef]) -> Dict[str, object]:
        """Rename one instruction.

        Returns a dict with ``src_phys`` (list of physical indices paired
        with their class), ``dest_phys`` and ``prev_phys`` (the physical
        register previously mapped to the destination, to be freed when
        this instruction commits). Raises :class:`SimulationError` if no
        register is free — callers must stall instead.
        """
        src_phys = [(ref.is_fp, self.lookup(ref)) for ref in srcs]
        dest_phys = None
        prev_phys = None
        if dest is not None:
            regfile = self._file(dest.is_fp)
            if not regfile.free:
                raise SimulationError("rename called with empty free list")
            prev_phys = (dest.is_fp, regfile.map[dest.index])
            new_phys = regfile.free.popleft()
            regfile.map[dest.index] = new_phys
            dest_phys = (dest.is_fp, new_phys)
        return {"src_phys": src_phys, "dest_phys": dest_phys, "prev_phys": prev_phys}

    def release(self, phys: Optional[tuple]) -> None:
        """Return a physical register to the free list (at commit)."""
        if phys is None:
            return
        is_fp, index = phys
        regfile = self._file(is_fp)
        if index in regfile.free:
            raise SimulationError(f"double free of physical register {index}")
        regfile.free.append(index)
