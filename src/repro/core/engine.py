"""Simulation kernels: the per-cycle driver and the event-driven skipper.

The :class:`~repro.core.processor.Processor` owns the pipeline *stages*;
this module owns the *loop* that drives them. Two kernels share the same
stage code and must be bit-identical in every reported statistic:

``naive``
    Tick :meth:`Processor.step` once per simulated cycle — the seed
    behaviour, kept as the reference implementation.

``skip``
    An event-driven kernel. After a cycle in which *nothing* happened
    (no branch resolved, nothing committed, no result broadcast, nothing
    issued, dispatched, decoded or fetched, and the fetch engine's state
    did not move), the machine is quiescent: every stage's decision next
    cycle is a pure function of frozen state plus the cycle number. The
    kernel then asks every stateful component for its
    ``next_activity_cycle()`` — the event wheel over the completion,
    broadcast and branch-resolution schedules, the I-cache fill timer,
    functional-unit busy windows, MixBUFF chain-latency code boundaries
    and LatFIFO estimate-driven placement — and jumps straight to the
    earliest such event instead of spinning.

    Per-cycle accounting (issue-queue selection energy, ready-table
    polling, dispatch-stall counters, occupancy integration) still
    accrues during quiescent cycles, so skipped spans are accounted in
    *interval form*: the kernel executes **one** extra quiescent cycle,
    measures the exact counter delta that cycle produced, and replays it
    ``n`` times in closed form via :meth:`Processor.advance_idle`.
    Because every cycle-dependent decision boundary is a wake event, the
    measured cycle is provably representative of the whole span, and the
    skipping run is bit-identical to the naive one by construction
    (``tests/test_kernel_equivalence.py`` and the golden-stats net
    enforce this).

    Pure-broadcast drain spans extend the wheel: while every issue
    queue is empty a pending result broadcast cannot wake anything — its
    only effect is wakeup-energy accounting that is a pure function of
    the broadcast count — so such broadcasts are *deferred* off the
    wheel, the span jumps over them, and their accounting is replayed in
    closed form (:meth:`Processor.drain_broadcasts`), still bit-identical.

``sampled`` (:func:`run_sampled`)
    Not a kernel but a third *execution mode*: detailed simulation of
    systematically chosen trace slices (driven through ``run_kernel``),
    functional fast-forward between them, statistics as error-bounded
    estimates. See :mod:`repro.sampling`.

Telemetry: each run fills ``processor.kernel_telemetry`` and the
process-wide :data:`GLOBAL_TELEMETRY` accumulator with the number of
cycles actually executed vs. skipped (and broadcast cycles drained in
closed form), so benchmarks can report how much simulated time the
event wheel jumped over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common import faults
from repro.common.config import KERNEL_NAIVE, KERNEL_SKIP, VALID_KERNELS
from repro.common.errors import SimulationError

__all__ = [
    "KernelTelemetry",
    "GLOBAL_TELEMETRY",
    "KERNEL_NAIVE",
    "KERNEL_SKIP",
    "VALID_KERNELS",
    "run_kernel",
    "run_naive",
    "run_skipping",
    "run_sampled",
]


@dataclass
class KernelTelemetry:
    """How a run's simulated cycles were covered.

    ``drained_broadcasts`` counts broadcast cycles accounted in closed
    form inside skipped spans (pure-broadcast drain spans) — cycles the
    naive kernel would have executed solely to accrue wakeup energy.
    """

    executed_cycles: int = 0
    skipped_cycles: int = 0
    skip_spans: int = 0
    drained_broadcasts: int = 0

    @property
    def total_cycles(self) -> int:
        return self.executed_cycles + self.skipped_cycles

    def as_dict(self) -> Dict[str, int]:
        return {
            "executed_cycles": self.executed_cycles,
            "skipped_cycles": self.skipped_cycles,
            "skip_spans": self.skip_spans,
            "drained_broadcasts": self.drained_broadcasts,
        }

    def merge(self, other: "KernelTelemetry") -> None:
        self.executed_cycles += other.executed_cycles
        self.skipped_cycles += other.skipped_cycles
        self.skip_spans += other.skip_spans
        self.drained_broadcasts += other.drained_broadcasts

    def reset(self) -> None:
        self.executed_cycles = 0
        self.skipped_cycles = 0
        self.skip_spans = 0
        self.drained_broadcasts = 0


#: Compatibility shim: a process-wide accumulator of plain counters.
#: The authoritative sink is now the ``repro.obs`` metrics registry —
#: but this module sits inside the version-tag closure, which must not
#: import ``repro.obs`` (telemetry may never rotate a cache key), so the
#: engine keeps counting here and the *untagged* experiments layer
#: measures the growth around each run and absorbs it into the registry
#: (see ``ExperimentRunner._simulate`` / ``parallel._simulate_to_payload``).
#: Kept public for the bench harness and tests that read or reset it.
GLOBAL_TELEMETRY = KernelTelemetry()


def _no_progress(processor, cycle: int, committed: int, total: int) -> SimulationError:
    return SimulationError(
        f"{processor.scheme.name} on {processor.trace.name}: no forward progress "
        f"after {cycle} cycles ({committed}/{total} committed)"
    )


def run_naive(processor, total: int, max_cycles: int, warmup_instructions: int):
    """Reference kernel: execute every simulated cycle."""
    telemetry = processor.kernel_telemetry
    committed = 0
    cycle = 0
    snapshot: Optional[dict] = None
    while committed < total:
        if cycle > max_cycles:
            raise _no_progress(processor, cycle, committed, total)
        _, retired = processor.step(cycle)
        committed += retired
        cycle += 1
        telemetry.executed_cycles += 1
        if snapshot is None and committed >= warmup_instructions:
            snapshot = processor._snapshot(cycle, committed)
    processor._finalize(cycle, committed, snapshot)
    return processor.stats


def run_skipping(processor, total: int, max_cycles: int, warmup_instructions: int):
    """Event-driven kernel: jump over provably quiescent cycle spans."""
    telemetry = processor.kernel_telemetry
    committed = 0
    cycle = 0
    snapshot: Optional[dict] = None
    while committed < total:
        if cycle > max_cycles:
            raise _no_progress(processor, cycle, committed, total)
        active, retired = processor.step(cycle)
        committed += retired
        cycle += 1
        telemetry.executed_cycles += 1
        if snapshot is None and committed >= warmup_instructions:
            snapshot = processor._snapshot(cycle, committed)
        if active or committed >= total:
            continue
        # The cycle just executed was quiescent. Find the next cycle at
        # which any stage's decision could differ from replaying it.
        # Inert result broadcasts (nothing resident in any issue queue
        # to wake) are deferred off the wheel: the span may jump over
        # them and their wakeup accounting replays in closed form below.
        target = processor.next_event_cycle(cycle, defer_inert_broadcasts=True)
        if target is None:
            # Quiescent with nothing scheduled: the naive kernel would
            # spin to max_cycles and raise; fail fast instead.
            raise _no_progress(processor, cycle, committed, total)
        if target <= cycle + 1:
            continue  # nothing to skip — the next cycle is (or may be) live
        # Execute one more quiescent cycle to measure the exact per-cycle
        # accounting pattern of this span (selection energy, ready-table
        # polls, stall counters, occupancy, ...).
        if cycle > max_cycles:
            raise _no_progress(processor, cycle, committed, total)
        before = processor.idle_accounting_snapshot()
        active, retired = processor.step(cycle)
        committed += retired
        cycle += 1
        telemetry.executed_cycles += 1
        if snapshot is None and committed >= warmup_instructions:
            snapshot = processor._snapshot(cycle, committed)
        if active:
            continue  # a wake source was conservative; no skip, no harm
        span = min(target, max_cycles + 1) - cycle
        if span > 0:
            replayed = span
            if span > 8 and faults.is_active(faults.SKIP_IDLE_UNDERCOUNT):
                # Armed contract fault (discovery self-test): replay the
                # measured idle delta one cycle short on long spans.
                replayed = span - 1
            processor.advance_idle(before, replayed)
            # Replay any inert broadcasts inside the span *after* the
            # measured-delta accounting, so their wakeup events accrue
            # once each rather than being multiplied into the interval.
            telemetry.drained_broadcasts += processor.drain_broadcasts(
                cycle, cycle + span
            )
            cycle += span
            telemetry.skipped_cycles += span
            telemetry.skip_spans += 1
    processor._finalize(cycle, committed, snapshot)
    return processor.stats


_KERNELS = {KERNEL_NAIVE: run_naive, KERNEL_SKIP: run_skipping}


def run_sampled(
    config,
    trace,
    plan,
    measure_begin: int,
    measure_end: int,
    profile=None,
    prewarm_seed=None,
    checkpoints=None,
):
    """Sampled execution mode: fast-forward between detailed slices.

    The full-trace kernels above simulate every committed instruction in
    detail; this mode simulates only the plan's measurement slices
    (detailed warm-up included) through :func:`run_kernel` on
    re-sequenced sub-traces, and covers the gaps with *functional*
    fast-forward — caches and branch predictor stay architecturally warm
    via :class:`repro.sampling.ffwd.FunctionalWarmer`, with snapshots
    optionally checkpointed so later runs resume instead of re-warming.

    ``[measure_begin, measure_end)`` is the committed-instruction region
    the estimates must cover (the full run's post-warm-up portion).
    Returns ``(windows, slice_stats, telemetry)``: the detailed windows,
    one :class:`~repro.common.stats.SimulationStats` per slice, and the
    merged :class:`KernelTelemetry` of the detailed windows only — the
    honest count of cycles that were actually simulated.

    Statistics are *estimates*, not bit-identical to a full run — which
    is why this is an execution mode with its own result-cache identity
    (the sampling plan hashes into the key), not a third kernel.
    """
    from repro.core.processor import Processor
    from repro.sampling.ffwd import FunctionalWarmer, slice_trace

    windows = plan.slice_windows(measure_begin, measure_end)
    warmer = FunctionalWarmer(
        config,
        trace,
        profile=profile,
        prewarm_seed=prewarm_seed,
        checkpoints=checkpoints,
    )
    # Each slice trace extends past the measured window by one pipeline's
    # worth of instructions and the run stops mid-flight at the window's
    # committed count, so measurement starts *and* ends against a full
    # pipeline — without the tail, the forced end-of-trace drain starves
    # issue-side event rates by the in-flight backlog, which is huge
    # relative to a short slice.
    tail = config.rob_entries + 2 * config.fetch_queue_entries
    slices = []
    detailed = KernelTelemetry()
    for window in windows:
        state = warmer.state_at(window.detail_start)
        stop = window.detail_end - window.detail_start
        processor = Processor(
            config,
            slice_trace(
                trace,
                window.detail_start,
                min(window.detail_end + tail, len(trace)),
            ),
        )
        processor.hierarchy.restore_state(state.hierarchy)
        processor.predictor.restore_state(state.predictor)
        slices.append(
            processor.run(
                warmup_instructions=window.warmup, total_instructions=stop
            )
        )
        detailed.merge(processor.kernel_telemetry)
    return windows, slices, detailed


def run_kernel(processor, kernel: str, total: int, max_cycles: int,
               warmup_instructions: int):
    """Dispatch to the requested kernel and fold telemetry globally."""
    runner = _KERNELS.get(kernel)
    if runner is None:
        # Backend kernels (vectorized, specialized) live in repro.backends;
        # imported lazily so the core engine stays dependency-light and
        # get_backend keeps the single "unknown simulation kernel" error.
        from repro.backends import get_backend

        runner = get_backend(kernel).run
    try:
        return runner(processor, total, max_cycles, warmup_instructions)
    finally:
        GLOBAL_TELEMETRY.merge(processor.kernel_telemetry)
