"""Simulation kernels: the per-cycle driver and the event-driven skipper.

The :class:`~repro.core.processor.Processor` owns the pipeline *stages*;
this module owns the *loop* that drives them. Two kernels share the same
stage code and must be bit-identical in every reported statistic:

``naive``
    Tick :meth:`Processor.step` once per simulated cycle — the seed
    behaviour, kept as the reference implementation.

``skip``
    An event-driven kernel. After a cycle in which *nothing* happened
    (no branch resolved, nothing committed, no result broadcast, nothing
    issued, dispatched, decoded or fetched, and the fetch engine's state
    did not move), the machine is quiescent: every stage's decision next
    cycle is a pure function of frozen state plus the cycle number. The
    kernel then asks every stateful component for its
    ``next_activity_cycle()`` — the event wheel over the completion,
    broadcast and branch-resolution schedules, the I-cache fill timer,
    functional-unit busy windows, MixBUFF chain-latency code boundaries
    and LatFIFO estimate-driven placement — and jumps straight to the
    earliest such event instead of spinning.

    Per-cycle accounting (issue-queue selection energy, ready-table
    polling, dispatch-stall counters, occupancy integration) still
    accrues during quiescent cycles, so skipped spans are accounted in
    *interval form*: the kernel executes **one** extra quiescent cycle,
    measures the exact counter delta that cycle produced, and replays it
    ``n`` times in closed form via :meth:`Processor.advance_idle`.
    Because every cycle-dependent decision boundary is a wake event, the
    measured cycle is provably representative of the whole span, and the
    skipping run is bit-identical to the naive one by construction
    (``tests/test_kernel_equivalence.py`` and the golden-stats net
    enforce this).

Telemetry: each run fills ``processor.kernel_telemetry`` and the
process-wide :data:`GLOBAL_TELEMETRY` accumulator with the number of
cycles actually executed vs. skipped, so benchmarks can report how much
simulated time the event wheel jumped over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.config import KERNEL_NAIVE, KERNEL_SKIP, VALID_KERNELS
from repro.common.errors import SimulationError

__all__ = [
    "KernelTelemetry",
    "GLOBAL_TELEMETRY",
    "KERNEL_NAIVE",
    "KERNEL_SKIP",
    "VALID_KERNELS",
    "run_kernel",
    "run_naive",
    "run_skipping",
]


@dataclass
class KernelTelemetry:
    """How a run's simulated cycles were covered."""

    executed_cycles: int = 0
    skipped_cycles: int = 0
    skip_spans: int = 0

    @property
    def total_cycles(self) -> int:
        return self.executed_cycles + self.skipped_cycles

    def as_dict(self) -> Dict[str, int]:
        return {
            "executed_cycles": self.executed_cycles,
            "skipped_cycles": self.skipped_cycles,
            "skip_spans": self.skip_spans,
        }

    def merge(self, other: "KernelTelemetry") -> None:
        self.executed_cycles += other.executed_cycles
        self.skipped_cycles += other.skipped_cycles
        self.skip_spans += other.skip_spans

    def reset(self) -> None:
        self.executed_cycles = 0
        self.skipped_cycles = 0
        self.skip_spans = 0


#: Process-wide accumulator across every run in this process (workers
#: fold theirs into the parent's via the parallel result payloads).
GLOBAL_TELEMETRY = KernelTelemetry()


def _no_progress(processor, cycle: int, committed: int, total: int) -> SimulationError:
    return SimulationError(
        f"{processor.scheme.name} on {processor.trace.name}: no forward progress "
        f"after {cycle} cycles ({committed}/{total} committed)"
    )


def run_naive(processor, total: int, max_cycles: int, warmup_instructions: int):
    """Reference kernel: execute every simulated cycle."""
    telemetry = processor.kernel_telemetry
    committed = 0
    cycle = 0
    snapshot: Optional[dict] = None
    while committed < total:
        if cycle > max_cycles:
            raise _no_progress(processor, cycle, committed, total)
        _, retired = processor.step(cycle)
        committed += retired
        cycle += 1
        telemetry.executed_cycles += 1
        if snapshot is None and committed >= warmup_instructions:
            snapshot = processor._snapshot(cycle, committed)
    processor._finalize(cycle, committed, snapshot)
    return processor.stats


def run_skipping(processor, total: int, max_cycles: int, warmup_instructions: int):
    """Event-driven kernel: jump over provably quiescent cycle spans."""
    telemetry = processor.kernel_telemetry
    committed = 0
    cycle = 0
    snapshot: Optional[dict] = None
    while committed < total:
        if cycle > max_cycles:
            raise _no_progress(processor, cycle, committed, total)
        active, retired = processor.step(cycle)
        committed += retired
        cycle += 1
        telemetry.executed_cycles += 1
        if snapshot is None and committed >= warmup_instructions:
            snapshot = processor._snapshot(cycle, committed)
        if active or committed >= total:
            continue
        # The cycle just executed was quiescent. Find the next cycle at
        # which any stage's decision could differ from replaying it.
        target = processor.next_event_cycle(cycle)
        if target is None:
            # Quiescent with nothing scheduled: the naive kernel would
            # spin to max_cycles and raise; fail fast instead.
            raise _no_progress(processor, cycle, committed, total)
        if target <= cycle + 1:
            continue  # nothing to skip — the next cycle is (or may be) live
        # Execute one more quiescent cycle to measure the exact per-cycle
        # accounting pattern of this span (selection energy, ready-table
        # polls, stall counters, occupancy, ...).
        if cycle > max_cycles:
            raise _no_progress(processor, cycle, committed, total)
        before = processor.idle_accounting_snapshot()
        active, retired = processor.step(cycle)
        committed += retired
        cycle += 1
        telemetry.executed_cycles += 1
        if snapshot is None and committed >= warmup_instructions:
            snapshot = processor._snapshot(cycle, committed)
        if active:
            continue  # a wake source was conservative; no skip, no harm
        span = min(target, max_cycles + 1) - cycle
        if span > 0:
            processor.advance_idle(before, span)
            cycle += span
            telemetry.skipped_cycles += span
            telemetry.skip_spans += 1
    processor._finalize(cycle, committed, snapshot)
    return processor.stats


_KERNELS = {KERNEL_NAIVE: run_naive, KERNEL_SKIP: run_skipping}


def run_kernel(processor, kernel: str, total: int, max_cycles: int,
               warmup_instructions: int):
    """Dispatch to the requested kernel and fold telemetry globally."""
    try:
        runner = _KERNELS[kernel]
    except KeyError:
        raise SimulationError(
            f"unknown simulation kernel {kernel!r}; valid: {sorted(_KERNELS)}"
        ) from None
    try:
        return runner(processor, total, max_cycles, warmup_instructions)
    finally:
        GLOBAL_TELEMETRY.merge(processor.kernel_telemetry)
