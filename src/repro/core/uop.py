"""In-flight instruction state.

The trace is immutable; everything the pipeline learns about an
instruction (renamed registers, ROB slot, issue/completion cycles, queue
placement) lives in an :class:`InFlight` wrapper created at dispatch.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.opcodes import FuType, OpClass, fu_type_for

__all__ = ["InFlight"]


class InFlight:
    """One dispatched, not-yet-committed instruction."""

    __slots__ = (
        "inst",
        "src_phys",
        "dest_phys",
        "prev_phys",
        "rob_index",
        "age",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "queue_index",
        "chain_id",
        "delayed",
        "est_issue_cycle",
        "store_addr_known_cycle",
    )

    def __init__(
        self,
        inst: Instruction,
        src_phys: List[Tuple[bool, int]],
        dest_phys: Optional[Tuple[bool, int]],
        prev_phys: Optional[Tuple[bool, int]],
        rob_index: int,
        age: int,
        dispatch_cycle: int,
    ) -> None:
        self.inst = inst
        self.src_phys = src_phys
        self.dest_phys = dest_phys
        self.prev_phys = prev_phys
        self.rob_index = rob_index
        self.age = age
        self.dispatch_cycle = dispatch_cycle
        self.issue_cycle: Optional[int] = None
        self.complete_cycle: Optional[int] = None
        # Multi-queue scheme bookkeeping.
        self.queue_index: Optional[int] = None
        self.chain_id: Optional[int] = None
        self.delayed = False
        self.est_issue_cycle: Optional[int] = None
        # For stores: cycle at which the address is known (set at issue).
        self.store_addr_known_cycle: Optional[int] = None

    @property
    def op(self) -> OpClass:
        return self.inst.op

    @property
    def seq(self) -> int:
        return self.inst.seq

    @property
    def fu_type(self) -> FuType:
        return fu_type_for(self.inst.op)

    @property
    def issue_srcs(self) -> List[Tuple[bool, int]]:
        """Operands that must be ready for the instruction to *issue*.

        Stores are split into address computation and data movement
        (Section 3.1): they issue once the address operands are ready
        — by trace convention ``srcs[0]`` is the data register and the
        rest are address operands — and read their data at commit, which
        in-order retirement guarantees is ready by then.
        """
        if self.inst.op.is_store and len(self.src_phys) > 1:
            return self.src_phys[1:]
        return self.src_phys

    @property
    def issued(self) -> bool:
        return self.issue_cycle is not None

    @property
    def completed(self) -> bool:
        return self.complete_cycle is not None

    def __repr__(self) -> str:
        state = "done" if self.completed else ("issued" if self.issued else "waiting")
        return f"InFlight(#{self.seq} {self.inst.op.value} {state})"
