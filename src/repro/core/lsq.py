"""Load/store queue: memory disambiguation and store forwarding.

The model matches the paper's Section 3.1 description: loads and stores
are split into address computation and memory access, and a load's memory
access may begin only once *every* older store's address is known (no
speculative disambiguation). A load whose address matches an older
in-flight store forwards the store's data.

Issue-order constraint: a load may be issued only when all older stores
have already issued (their address-known cycles are then scheduled).
This is slightly conservative but uniform across all issue schemes, so
it does not bias the comparison.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.errors import SimulationError
from repro.core.uop import InFlight

__all__ = ["LoadStoreQueue"]

_FORWARD_GRANULARITY = 8  # bytes: address match granularity for forwarding


class LoadStoreQueue:
    """Tracks in-flight stores for disambiguation and forwarding."""

    def __init__(self) -> None:
        # Stores indexed by seq, ordered (dict preserves insertion order).
        self._stores: Dict[int, InFlight] = {}
        self._unissued_stores = 0
        self.forwarded_loads = 0
        self.conflict_delay_cycles = 0

    @property
    def in_flight_stores(self) -> int:
        return len(self._stores)

    def add_store(self, uop: InFlight) -> None:
        """Register a dispatched store."""
        if not uop.op.is_store:
            raise SimulationError("add_store on a non-store")
        self._stores[uop.seq] = uop
        self._unissued_stores += 1

    def store_issued(self, uop: InFlight, addr_known_cycle: int) -> None:
        """Record that a store's address computation has issued."""
        if uop.seq not in self._stores:
            raise SimulationError("store_issued for unknown store")
        uop.store_addr_known_cycle = addr_known_cycle
        self._unissued_stores -= 1

    def can_issue_load(self, load_seq: int) -> bool:
        """True if every store older than ``load_seq`` has issued."""
        if self._unissued_stores == 0:
            return True
        for seq, store in self._stores.items():
            if seq >= load_seq:
                break
            if store.store_addr_known_cycle is None:
                return False
        return True

    def load_blocked_on_store_data(self, load: InFlight, scoreboard) -> bool:
        """True if the load would forward from a store whose data is not
        even scheduled yet (its producer has not issued).

        Called after :meth:`can_issue_load` holds, so every older store's
        address is known. A load that forwards must wait until the
        store's data has a known availability cycle; issuing it earlier
        would be a use of an unwritten value.
        """
        load_block = (load.inst.mem_addr or 0) // _FORWARD_GRANULARITY
        blocked = False
        for seq, store in self._stores.items():
            if seq >= load.seq:
                break
            if (store.inst.mem_addr or 0) // _FORWARD_GRANULARITY != load_block:
                continue
            data_phys = store.src_phys[0] if store.src_phys else None
            blocked = data_phys is not None and not scoreboard.is_scheduled(data_phys)
        return blocked

    def load_access_constraints(self, load: InFlight, addr_ready_cycle: int) -> tuple:
        """When may the load's memory access begin, and is it forwarded?

        Returns ``(start_cycle, forwarding_store_or_None)``. The start
        cycle is the max of the load's own address-ready cycle and every
        older store's address-known cycle. Callers must have ensured
        :meth:`can_issue_load` was True at issue.
        """
        start = addr_ready_cycle
        forwarding: Optional[InFlight] = None
        load_block = (load.inst.mem_addr or 0) // _FORWARD_GRANULARITY
        for seq, store in self._stores.items():
            if seq >= load.seq:
                break
            known = store.store_addr_known_cycle
            if known is None:
                raise SimulationError("load issued before older store (gating bug)")
            if known > start:
                self.conflict_delay_cycles += known - start
                start = known
            if (store.inst.mem_addr or 0) // _FORWARD_GRANULARITY == load_block:
                forwarding = store  # youngest older matching store wins
        if forwarding is not None:
            self.forwarded_loads += 1
        return start, forwarding

    def retire_store(self, uop: InFlight) -> None:
        """Remove a store at commit."""
        if self._stores.pop(uop.seq, None) is None:
            raise SimulationError("retiring unknown store")

    def oldest_unissued_store_seq(self) -> int:
        """Sequence of the oldest store still waiting to issue (or -1)."""
        for seq, store in self._stores.items():
            if store.store_addr_known_cycle is None:
                return seq
        return -1

    def next_activity_cycle(self, cycle: int) -> Optional[int]:
        """Skipping-kernel contract: all LSQ transitions are event-driven.

        Load gating changes only when an older store issues or retires —
        both are pipeline activity, never a pure function of the cycle
        number — so the LSQ contributes no timer of its own.
        """
        return None
