"""Functional units: pooled (baseline) and distributed (Section 3.3).

Pipelined units (ALUs, multipliers) accept one instruction per cycle;
divides occupy their mul/div unit for the full latency. In the pooled
organization any instruction may use any unit of the right type. In the
distributed organization of Section 3.3 each *queue* owns specific units:

* one integer ALU per integer queue,
* one integer mul/div unit per pair of integer queues,
* one FP adder and one FP mul/div unit per pair of FP queues.

Loads, stores and branches execute on integer ALUs (address/target
computation), as in SimpleScalar.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.config import FunctionalUnitConfig
from repro.common.errors import ConfigurationError
from repro.isa.opcodes import FuType, OpClass, is_pipelined

__all__ = ["FunctionalUnit", "FuPool", "PooledFuPool", "DistributedFuPool"]


class FunctionalUnit:
    """One execution unit."""

    __slots__ = ("fu_type", "index", "busy_until", "last_issue_cycle")

    def __init__(self, fu_type: FuType, index: int) -> None:
        self.fu_type = fu_type
        self.index = index
        self.busy_until = -1  # unpipelined occupancy (divides)
        self.last_issue_cycle = -1

    def can_accept(self, cycle: int) -> bool:
        """Can a new instruction start on this unit at ``cycle``?"""
        return cycle > self.busy_until and cycle > self.last_issue_cycle

    def accept(self, cycle: int, op: OpClass, latency: int) -> None:
        """Occupy the unit for ``op`` starting at ``cycle``."""
        self.last_issue_cycle = cycle
        if not is_pipelined(op):
            self.busy_until = cycle + latency - 1


class FuPool:
    """Interface: allocate a unit for an op at a cycle, maybe per-queue."""

    def try_allocate(
        self, fu_type: FuType, op: OpClass, latency: int, cycle: int, queue_index: Optional[int]
    ) -> bool:
        raise NotImplementedError

    def units_of(self, fu_type: FuType) -> List[FunctionalUnit]:
        raise NotImplementedError

    def can_allocate(
        self, fu_type: FuType, cycle: int, queue_index: Optional[int] = None
    ) -> bool:
        """Non-destructive probe: could an op of this type start now?

        Distributed selection logic is physically next to its own
        functional units, so letting it see their busy state costs no
        wiring — MixBUFF's per-queue selector uses this to avoid picking
        an instruction whose unit cannot accept it this cycle.
        """
        raise NotImplementedError

    def all_units(self) -> List[FunctionalUnit]:
        """Every unit in the pool, for generic sweeps."""
        units: List[FunctionalUnit] = []
        for fu_type in FuType:
            units.extend(self.units_of(fu_type))
        return units

    def next_activity_cycle(self, cycle: int) -> Optional[int]:
        """Skipping-kernel contract: next cycle a busy unit frees up.

        An unpipelined op (a divide) occupies its unit through
        ``busy_until``; an instruction whose operands are ready may be
        waiting solely on that unit, so the cycle after it frees is a
        wake event. ``last_issue_cycle`` needs no timer: it only blocks
        the issue cycle itself, and a cycle in which something issued is
        never quiescent.
        """
        upcoming = [
            unit.busy_until + 1
            for unit in self.all_units()
            if unit.busy_until + 1 >= cycle
        ]
        return min(upcoming) if upcoming else None


class PooledFuPool(FuPool):
    """Baseline organization: any unit of the right type."""

    def __init__(self, config: FunctionalUnitConfig) -> None:
        config.validate()
        self._units: Dict[FuType, List[FunctionalUnit]] = {
            FuType.INT_ALU: [FunctionalUnit(FuType.INT_ALU, i) for i in range(config.int_alu_count)],
            FuType.INT_MULDIV: [
                FunctionalUnit(FuType.INT_MULDIV, i) for i in range(config.int_muldiv_count)
            ],
            FuType.FP_ALU: [FunctionalUnit(FuType.FP_ALU, i) for i in range(config.fp_alu_count)],
            FuType.FP_MULDIV: [
                FunctionalUnit(FuType.FP_MULDIV, i) for i in range(config.fp_muldiv_count)
            ],
        }

    def units_of(self, fu_type: FuType) -> List[FunctionalUnit]:
        return self._units[fu_type]

    def try_allocate(self, fu_type, op, latency, cycle, queue_index=None) -> bool:
        for unit in self._units[fu_type]:
            if unit.can_accept(cycle):
                unit.accept(cycle, op, latency)
                return True
        return False

    def can_allocate(self, fu_type, cycle, queue_index=None) -> bool:
        return any(unit.can_accept(cycle) for unit in self._units[fu_type])


class DistributedFuPool(FuPool):
    """Section 3.3 organization: units bound to queues.

    ``int_queues`` and ``fp_queues`` give the queue counts; the binding
    is: integer queue *q* → its own ALU; integer queues *2k, 2k+1* →
    integer mul/div *k*; FP queues *2k, 2k+1* → FP adder *k* and FP
    mul/div *k*. FP-side ops must come from FP queues and integer-side
    ops from integer queues; allocation requires the queue index.
    """

    def __init__(self, int_queues: int, fp_queues: int, config: FunctionalUnitConfig) -> None:
        config.validate()
        if int_queues < 1 or fp_queues < 1:
            raise ConfigurationError("distributed FU pool needs queues on both sides")
        self.int_queues = int_queues
        self.fp_queues = fp_queues
        self._int_alu = [FunctionalUnit(FuType.INT_ALU, i) for i in range(int_queues)]
        self._int_muldiv = [
            FunctionalUnit(FuType.INT_MULDIV, i) for i in range((int_queues + 1) // 2)
        ]
        self._fp_alu = [FunctionalUnit(FuType.FP_ALU, i) for i in range((fp_queues + 1) // 2)]
        self._fp_muldiv = [
            FunctionalUnit(FuType.FP_MULDIV, i) for i in range((fp_queues + 1) // 2)
        ]

    def units_of(self, fu_type: FuType) -> List[FunctionalUnit]:
        return {
            FuType.INT_ALU: self._int_alu,
            FuType.INT_MULDIV: self._int_muldiv,
            FuType.FP_ALU: self._fp_alu,
            FuType.FP_MULDIV: self._fp_muldiv,
        }[fu_type]

    def _unit_for(self, fu_type: FuType, queue_index: int) -> FunctionalUnit:
        if fu_type is FuType.INT_ALU:
            return self._int_alu[queue_index]
        if fu_type is FuType.INT_MULDIV:
            return self._int_muldiv[queue_index // 2]
        if fu_type is FuType.FP_ALU:
            return self._fp_alu[queue_index // 2]
        return self._fp_muldiv[queue_index // 2]

    def try_allocate(self, fu_type, op, latency, cycle, queue_index=None) -> bool:
        if queue_index is None:
            raise ConfigurationError("distributed FU pool requires a queue index")
        unit = self._unit_for(fu_type, queue_index)
        if unit.can_accept(cycle):
            unit.accept(cycle, op, latency)
            return True
        return False

    def can_allocate(self, fu_type, cycle, queue_index=None) -> bool:
        if queue_index is None:
            raise ConfigurationError("distributed FU pool requires a queue index")
        return self._unit_for(fu_type, queue_index).can_accept(cycle)
